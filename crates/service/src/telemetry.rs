//! Service-wide telemetry: job lifecycle spans, cache/worker metrics
//! and Chrome trace export.
//!
//! The recorder stamps every job with a lifecycle of monotonic spans —
//! submitted → queued → (expand) → compile → predecode → simulate →
//! respond — plus per-worker busy timelines and cache-access instants.
//! All timestamps are microseconds since the recorder's epoch (service
//! start), taken from one shared [`Instant`] so spans from different
//! threads are mutually ordered.
//!
//! The design is lock-cheap rather than lock-free: every record is an
//! O(1) append or field write under one mutex held for nanoseconds,
//! which is noise next to the milliseconds a compile or simulation
//! takes (the `serve-throughput-mixed64` bench scenario keeps this
//! honest). Memory is bounded: after [`MAX_JOB_RECORDS`] /
//! [`MAX_CACHE_EVENTS`] detailed records, further jobs are counted in
//! exact aggregate totals but drop their per-span detail.
//!
//! Telemetry must never influence responses: it observes job execution
//! but holds no job data, so a service with telemetry disabled returns
//! byte-identical payloads (pinned by `tests/service_telemetry.rs`).

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;
use crate::sync::lock_unpoisoned;
use crate::trace::TraceWriter;

/// Detailed per-job records kept before falling back to aggregate-only
/// counting (bounds recorder memory on unbounded interactive sessions).
pub const MAX_JOB_RECORDS: usize = 65_536;

/// Detailed cache-access events kept before aggregate-only counting.
pub const MAX_CACHE_EVENTS: usize = 262_144;

/// A lifecycle phase within one job's execution span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tune/graph fan-out: expanding a parent request into leaves.
    Expand,
    /// Running the compiler pipeline (artifact-cache miss).
    Compile,
    /// Predecoding assembly into an executable program (predecode miss).
    Predecode,
    /// Running the simulator (including difftest and profiling runs).
    Simulate,
    /// Reducing leaf responses into a parent tune/graph response.
    Reduce,
}

impl Phase {
    /// The wire/trace name of the phase.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Expand => "expand",
            Phase::Compile => "compile",
            Phase::Predecode => "predecode",
            Phase::Simulate => "simulate",
            Phase::Reduce => "reduce",
        }
    }
}

/// The cache layer a lookup touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLayer {
    /// Compiled assembly keyed by compile key.
    Artifact,
    /// Predecoded executable programs keyed by artifact key.
    Predecode,
    /// Final response payloads keyed by result key.
    Result,
}

impl CacheLayer {
    /// The wire/trace name of the layer.
    pub fn name(self) -> &'static str {
        match self {
            CacheLayer::Artifact => "artifact",
            CacheLayer::Predecode => "predecode",
            CacheLayer::Result => "result",
        }
    }
}

/// One job's recorded lifecycle.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Client-assigned job id.
    pub id: u64,
    /// Wire name of the job kind.
    pub kind: &'static str,
    /// When the job entered the service (µs since epoch).
    pub submitted_us: u64,
    /// When a thread began executing it (µs); `None` while queued.
    pub started_us: Option<u64>,
    /// When its response was ready (µs); `None` while in flight.
    pub finished_us: Option<u64>,
    /// Executing worker index; `None` for the caller thread
    /// (tune/graph reduction, `run_one`).
    pub worker: Option<usize>,
    /// Whether the response came from the result cache.
    pub cached: bool,
    /// Whether the job succeeded.
    pub ok: bool,
    /// Phase spans `(phase, start_us, end_us)` nested in the exec span.
    pub phases: Vec<(Phase, u64, u64)>,
}

impl JobRecord {
    /// Time spent waiting in the queue, once started.
    pub fn queue_wait_us(&self) -> Option<u64> {
        self.started_us.map(|s| s.saturating_sub(self.submitted_us))
    }

    /// Submit-to-respond service latency, once finished.
    pub fn latency_us(&self) -> Option<u64> {
        self.finished_us.map(|f| f.saturating_sub(self.submitted_us))
    }
}

/// One recorded cache access.
#[derive(Debug, Clone, Copy)]
pub struct CacheEvent {
    /// The layer looked up.
    pub layer: CacheLayer,
    /// Whether the lookup hit.
    pub hit: bool,
    /// When (µs since epoch).
    pub at_us: u64,
    /// The worker performing the lookup (`None`: caller thread).
    pub worker: Option<usize>,
}

/// Handle identifying one job's record inside the recorder.
///
/// Copyable and inert: every operation through a token is a no-op when
/// the recorder hit its record cap at submission time.
#[derive(Debug, Clone, Copy)]
pub struct JobToken(u32);

const DROPPED: u32 = u32::MAX;

#[derive(Debug, Default)]
struct Totals {
    submitted: u64,
    finished: u64,
    failed: u64,
    cached_responses: u64,
}

#[derive(Debug, Default)]
struct Inner {
    jobs: Vec<JobRecord>,
    dropped_jobs: u64,
    cache_events: Vec<CacheEvent>,
    dropped_cache_events: u64,
    worker_busy: Vec<Vec<(u64, u64)>>,
    totals: Totals,
}

/// The service-wide telemetry recorder.
#[derive(Debug)]
pub struct Telemetry {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Telemetry {
    /// Creates a recorder for a pool of `workers` threads, with the
    /// epoch set to now.
    pub fn new(workers: usize) -> Telemetry {
        let inner = Inner { worker_busy: vec![Vec::new(); workers.max(1)], ..Inner::default() };
        Telemetry { epoch: Instant::now(), inner: Mutex::new(inner) }
    }

    /// Microseconds elapsed since the recorder's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records a job entering the service; the returned token threads
    /// through the job's later lifecycle events.
    pub fn job_submitted(&self, id: u64, kind: &'static str) -> JobToken {
        let submitted_us = self.now_us();
        let mut inner = lock_unpoisoned(&self.inner);
        inner.totals.submitted += 1;
        if inner.jobs.len() >= MAX_JOB_RECORDS {
            inner.dropped_jobs += 1;
            return JobToken(DROPPED);
        }
        let index = inner.jobs.len() as u32;
        inner.jobs.push(JobRecord {
            id,
            kind,
            submitted_us,
            started_us: None,
            finished_us: None,
            worker: None,
            cached: false,
            ok: false,
            phases: Vec::new(),
        });
        JobToken(index)
    }

    /// Marks the job as dequeued and executing on `worker` (`None` for
    /// the caller thread). Idempotent: the first call wins, so a
    /// fan-out parent whose exec span opened at planning time is not
    /// restarted when its reduce phase re-enters the job path.
    pub fn job_started(&self, token: JobToken, worker: Option<usize>) {
        if token.0 == DROPPED {
            return;
        }
        let now = self.now_us();
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(record) = inner.jobs.get_mut(token.0 as usize) {
            if record.started_us.is_none() {
                record.started_us = Some(now);
                record.worker = worker;
            }
        }
    }

    /// Marks the job's response as ready.
    pub fn job_finished(&self, token: JobToken, cached: bool, ok: bool) {
        let now = self.now_us();
        let mut inner = lock_unpoisoned(&self.inner);
        inner.totals.finished += 1;
        if !ok {
            inner.totals.failed += 1;
        }
        if cached {
            inner.totals.cached_responses += 1;
        }
        if token.0 == DROPPED {
            return;
        }
        if let Some(record) = inner.jobs.get_mut(token.0 as usize) {
            if record.started_us.is_none() {
                // Cache-served jobs answered at planning time never ran
                // on a thread; their exec span is empty at finish time.
                record.started_us = Some(now);
            }
            record.finished_us = Some(now);
            record.cached = cached;
            record.ok = ok;
        }
    }

    /// Records a completed phase span inside the job's exec span.
    pub fn phase_span(&self, token: JobToken, phase: Phase, start_us: u64, end_us: u64) {
        if token.0 == DROPPED {
            return;
        }
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(record) = inner.jobs.get_mut(token.0 as usize) {
            record.phases.push((phase, start_us, end_us.max(start_us)));
        }
    }

    /// Records one cache lookup outcome.
    pub fn cache_access(&self, layer: CacheLayer, hit: bool, worker: Option<usize>) {
        let at_us = self.now_us();
        let mut inner = lock_unpoisoned(&self.inner);
        if inner.cache_events.len() >= MAX_CACHE_EVENTS {
            inner.dropped_cache_events += 1;
            return;
        }
        inner.cache_events.push(CacheEvent { layer, hit, at_us, worker });
    }

    /// Records a closed busy interval for `worker` (span hooks in the
    /// pool's dequeue/complete path).
    pub fn worker_busy_span(&self, worker: usize, start_us: u64, end_us: u64) {
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(spans) = inner.worker_busy.get_mut(worker) {
            spans.push((start_us, end_us.max(start_us)));
        }
    }

    /// Snapshot of all job records.
    pub fn jobs(&self) -> Vec<JobRecord> {
        lock_unpoisoned(&self.inner).jobs.clone()
    }

    /// Snapshot of all cache-access events.
    pub fn cache_events(&self) -> Vec<CacheEvent> {
        lock_unpoisoned(&self.inner).cache_events.clone()
    }

    /// Snapshot of per-worker closed busy intervals.
    pub fn worker_busy(&self) -> Vec<Vec<(u64, u64)>> {
        lock_unpoisoned(&self.inner).worker_busy.clone()
    }

    /// Jobs whose detail records were dropped at the record cap.
    pub fn dropped_jobs(&self) -> u64 {
        lock_unpoisoned(&self.inner).dropped_jobs
    }

    /// The machine-readable summary: totals, per-kind queue-wait and
    /// latency percentiles, and per-worker busy time.
    pub fn summary_json(&self) -> Json {
        let inner = lock_unpoisoned(&self.inner);
        let uptime_us = self.now_us();

        let mut by_kind: BTreeMap<&'static str, Vec<&JobRecord>> = BTreeMap::new();
        for record in &inner.jobs {
            by_kind.entry(record.kind).or_default().push(record);
        }
        let mut kinds = Vec::new();
        for (kind, records) in &by_kind {
            let mut queue: Vec<u64> = records.iter().filter_map(|r| r.queue_wait_us()).collect();
            let mut latency: Vec<u64> = records.iter().filter_map(|r| r.latency_us()).collect();
            queue.sort_unstable();
            latency.sort_unstable();
            kinds.push((
                (*kind).to_string(),
                Json::Obj(vec![
                    ("count".to_string(), Json::Num(records.len() as f64)),
                    ("queue_wait_us".to_string(), histogram_json(&queue)),
                    ("latency_us".to_string(), histogram_json(&latency)),
                ]),
            ));
        }

        let workers = inner
            .worker_busy
            .iter()
            .enumerate()
            .map(|(index, spans)| {
                let busy: u64 = spans.iter().map(|(s, e)| e - s).sum();
                let jobs = inner.jobs.iter().filter(|r| r.worker == Some(index)).count();
                Json::Obj(vec![
                    ("worker".to_string(), Json::Num(index as f64)),
                    ("busy_us".to_string(), Json::Num(busy as f64)),
                    ("jobs".to_string(), Json::Num(jobs as f64)),
                ])
            })
            .collect();

        Json::Obj(vec![
            ("uptime_us".to_string(), Json::Num(uptime_us as f64)),
            (
                "jobs".to_string(),
                Json::Obj(vec![
                    ("submitted".to_string(), Json::Num(inner.totals.submitted as f64)),
                    ("finished".to_string(), Json::Num(inner.totals.finished as f64)),
                    ("failed".to_string(), Json::Num(inner.totals.failed as f64)),
                    (
                        "cached_responses".to_string(),
                        Json::Num(inner.totals.cached_responses as f64),
                    ),
                    ("recorded".to_string(), Json::Num(inner.jobs.len() as f64)),
                    ("dropped_records".to_string(), Json::Num(inner.dropped_jobs as f64)),
                ]),
            ),
            ("kinds".to_string(), Json::Obj(kinds)),
            ("workers".to_string(), Json::Arr(workers)),
            (
                "cache_events".to_string(),
                Json::Obj(vec![
                    ("recorded".to_string(), Json::Num(inner.cache_events.len() as f64)),
                    ("dropped_records".to_string(), Json::Num(inner.dropped_cache_events as f64)),
                ]),
            ),
        ])
    }

    /// Renders the recorded run as Chrome trace events: one track per
    /// worker (plus the caller thread and a queue track), job exec
    /// spans nested inside worker busy spans with their phase spans,
    /// and cache hits as instant events.
    pub fn chrome_trace(&self) -> TraceWriter {
        let inner = lock_unpoisoned(&self.inner);
        let pid = 1u64;
        let workers = inner.worker_busy.len();
        // Track layout: tid 0 = caller thread, 1..=W = workers,
        // W+1 = queue-wait track.
        let queue_tid = workers as u64 + 1;
        let mut writer = TraceWriter::new();
        writer.process_name(pid, "mlbc serve");
        writer.thread_name(pid, 0, "caller");
        for index in 0..workers {
            writer.thread_name(pid, index as u64 + 1, &format!("worker {index}"));
        }
        writer.thread_name(pid, queue_tid, "queue");
        for (index, spans) in inner.worker_busy.iter().enumerate() {
            for (start, end) in spans {
                writer.span(pid, index as u64 + 1, "busy", "worker", *start, end - start);
            }
        }
        for record in &inner.jobs {
            let (Some(started), Some(finished)) = (record.started_us, record.finished_us) else {
                continue; // still queued or in flight at export time
            };
            let tid = record.worker.map_or(0, |w| w as u64 + 1);
            let name = format!("{} #{}", record.kind, record.id);
            let args = Json::Obj(vec![
                ("id".to_string(), Json::Num(record.id as f64)),
                ("cached".to_string(), Json::Bool(record.cached)),
                ("ok".to_string(), Json::Bool(record.ok)),
                (
                    "queue_wait_us".to_string(),
                    Json::Num(record.queue_wait_us().unwrap_or(0) as f64),
                ),
            ]);
            writer.span_with_args(pid, tid, &name, "job", started, finished - started, args);
            for (phase, start, end) in &record.phases {
                writer.span(pid, tid, phase.name(), "phase", *start, end - start);
            }
            let wait = started.saturating_sub(record.submitted_us);
            if wait > 0 {
                writer.span(pid, queue_tid, &name, "queue", record.submitted_us, wait);
            }
        }
        for event in &inner.cache_events {
            if event.hit {
                let tid = event.worker.map_or(0, |w| w as u64 + 1);
                let name = format!("{} hit", event.layer.name());
                writer.instant(pid, tid, &name, "cache", event.at_us);
            }
        }
        writer
    }
}

/// Builds the `{"p50": .., "p95": .., "max": .., "count": ..}` summary
/// of one sorted sample vector.
fn histogram_json(sorted: &[u64]) -> Json {
    Json::Obj(vec![
        ("count".to_string(), Json::Num(sorted.len() as f64)),
        ("p50".to_string(), Json::Num(percentile(sorted, 50) as f64)),
        ("p95".to_string(), Json::Num(percentile(sorted, 95) as f64)),
        ("max".to_string(), Json::Num(sorted.last().copied().unwrap_or(0) as f64)),
    ])
}

/// Exact nearest-rank percentile of an ascending-sorted sample (0 for
/// an empty sample). `percentile(v, 50)` is the median's lower
/// nearest-rank, `percentile(v, 100)` the maximum.
pub fn percentile(sorted: &[u64], percent: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = ((n * percent).div_ceil(100)).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// A job's telemetry context: the recorder handle threaded through
/// compute paths, inert when telemetry is disabled.
#[derive(Debug, Clone, Copy)]
pub struct JobCtx<'a> {
    slot: Option<(&'a Telemetry, JobToken)>,
}

impl<'a> JobCtx<'a> {
    /// A context that records nothing (telemetry disabled).
    pub fn disabled() -> JobCtx<'static> {
        JobCtx { slot: None }
    }

    /// A context recording against `telemetry` under `token`.
    pub fn new(telemetry: &'a Telemetry, token: JobToken) -> JobCtx<'a> {
        JobCtx { slot: Some((telemetry, token)) }
    }

    /// Opens a phase span closed when the guard drops.
    pub fn phase(&self, phase: Phase) -> PhaseGuard<'a> {
        PhaseGuard {
            slot: self.slot.map(|(telemetry, token)| (telemetry, token, phase, telemetry.now_us())),
        }
    }

    /// Records one cache lookup outcome attributed to this thread.
    pub fn cache_access(&self, layer: CacheLayer, hit: bool, worker: Option<usize>) {
        if let Some((telemetry, _)) = self.slot {
            telemetry.cache_access(layer, hit, worker);
        }
    }
}

/// RAII guard recording a [`Phase`] span on drop.
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    slot: Option<(&'a Telemetry, JobToken, Phase, u64)>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some((telemetry, token, phase, start_us)) = self.slot.take() {
            telemetry.phase_span(token, phase, start_us, telemetry.now_us());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_exact_nearest_rank() {
        assert_eq!(percentile(&[], 95), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 100), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&v, 1), 1);
        assert_eq!(percentile(&v, 0), 1); // clamp to the first rank
        let v: Vec<u64> = vec![10, 20, 30];
        assert_eq!(percentile(&v, 50), 20);
        assert_eq!(percentile(&v, 95), 30);
    }

    #[test]
    fn lifecycle_spans_are_monotone() {
        let telemetry = Telemetry::new(2);
        let token = telemetry.job_submitted(7, "compile");
        telemetry.job_started(token, Some(1));
        {
            let ctx = JobCtx::new(&telemetry, token);
            let _guard = ctx.phase(Phase::Compile);
        }
        telemetry.job_finished(token, false, true);
        let jobs = telemetry.jobs();
        assert_eq!(jobs.len(), 1);
        let record = &jobs[0];
        assert_eq!(record.id, 7);
        assert_eq!(record.worker, Some(1));
        let started = record.started_us.unwrap();
        let finished = record.finished_us.unwrap();
        assert!(record.submitted_us <= started);
        assert!(started <= finished);
        assert_eq!(record.phases.len(), 1);
        let (phase, start, end) = record.phases[0];
        assert_eq!(phase, Phase::Compile);
        assert!(started <= start && end <= finished + 1);
        assert!(record.ok && !record.cached);
    }

    #[test]
    fn disabled_ctx_records_nothing() {
        let ctx = JobCtx::disabled();
        let _guard = ctx.phase(Phase::Simulate);
        ctx.cache_access(CacheLayer::Result, true, None);
        // Nothing to assert against: the point is that this compiles
        // and runs without a recorder.
    }

    #[test]
    fn summary_and_trace_parse_round_trip() {
        let telemetry = Telemetry::new(1);
        let token = telemetry.job_submitted(1, "simulate");
        telemetry.job_started(token, Some(0));
        telemetry.cache_access(CacheLayer::Artifact, true, Some(0));
        telemetry.job_finished(token, false, true);
        telemetry.worker_busy_span(0, 0, telemetry.now_us());
        let summary = telemetry.summary_json().to_string();
        let parsed = Json::parse(&summary).expect("summary parses");
        assert_eq!(
            parsed.get("jobs").and_then(|j| j.get("submitted")).and_then(Json::as_u64),
            Some(1)
        );
        let trace = telemetry.chrome_trace().into_json().to_string();
        let parsed = Json::parse(&trace).expect("trace parses");
        let events = parsed.get("traceEvents").and_then(Json::as_array).unwrap();
        assert!(events.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("i")));
    }
}
