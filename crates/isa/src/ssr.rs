//! Constants of the Snitch stream semantic register (SSR) and FREP
//! extensions.
//!
//! An SSR *data mover* is a hardware address generator bound to one of the
//! registers `ft0`–`ft2`. While streaming is enabled, reads of a read-stream
//! register pop the next element of an affine access pattern from memory and
//! writes to a write-stream register push to one. The access pattern is a
//! nested loop of up to [`SSR_MAX_DIMS`] dimensions, programmed through a
//! small configuration register file per data mover via the `scfgwi`
//! instruction.

/// Number of SSR data movers (and thus streamable registers `ft0..ft2`).
pub const NUM_SSR_DATA_MOVERS: usize = 3;

/// Maximum number of nested loop dimensions an SSR can generate.
pub const SSR_MAX_DIMS: usize = 4;

/// Maximum number of instructions an FREP hardware loop can buffer.
pub const FREP_MAX_SEQUENCE: usize = 16;

/// Identifies one of the three SSR data movers.
///
/// Data movers 0 and 1 are conventionally used for read streams (mapped to
/// `ft0` and `ft1`), data mover 2 for the write stream (mapped to `ft2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SsrDataMover(u8);

impl SsrDataMover {
    /// Creates a data-mover id.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_SSR_DATA_MOVERS`.
    pub fn new(index: u8) -> SsrDataMover {
        assert!((index as usize) < NUM_SSR_DATA_MOVERS, "SSR data mover {index} out of range");
        SsrDataMover(index)
    }

    /// The data-mover index (0–2).
    pub fn index(self) -> u8 {
        self.0
    }
}

impl std::fmt::Display for SsrDataMover {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dm{}", self.0)
    }
}

/// The per-data-mover configuration register file addressed by `scfgwi`.
///
/// The `scfgwi rs1, imm` instruction writes `rs1` to the configuration word
/// selected by `imm = reg << 5 | dm`. Writing a read pointer (`RPtr*`) or
/// write pointer (`WPtr*`) register arms the stream with the corresponding
/// number of dimensions and sets its base address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SsrCfgReg {
    /// Status word (also used to reset the job).
    Status,
    /// Innermost-element repetition count minus one: each streamed element
    /// is delivered `repeat + 1` times. This implements the paper's
    /// "stride of 0 in the last dimension" optimization without re-reading
    /// memory (Section 3.2).
    Repeat,
    /// Loop bound (iterations minus one) for dimension `d` (0 = innermost).
    Bound(u8),
    /// Address stride in bytes applied when dimension `d` increments.
    ///
    /// Hardware strides are *deltas*: the stride of dimension `d` must
    /// compensate for the wrap-around of all inner dimensions. The backend
    /// performs that compensation when lowering `snitch_stream` patterns.
    Stride(u8),
    /// Read-stream base pointer; writing arms a read job with `d + 1` dims.
    RPtr(u8),
    /// Write-stream base pointer; writing arms a write job with `d + 1` dims.
    WPtr(u8),
}

impl SsrCfgReg {
    /// Encodes the register as the word index used in the `scfgwi` immediate.
    pub fn encode(self) -> u16 {
        match self {
            SsrCfgReg::Status => 0,
            SsrCfgReg::Repeat => 1,
            SsrCfgReg::Bound(d) => {
                assert!((d as usize) < SSR_MAX_DIMS);
                2 + d as u16
            }
            SsrCfgReg::Stride(d) => {
                assert!((d as usize) < SSR_MAX_DIMS);
                6 + d as u16
            }
            SsrCfgReg::RPtr(d) => {
                assert!((d as usize) < SSR_MAX_DIMS);
                24 + d as u16
            }
            SsrCfgReg::WPtr(d) => {
                assert!((d as usize) < SSR_MAX_DIMS);
                28 + d as u16
            }
        }
    }

    /// Decodes a word index back into a configuration register.
    pub fn decode(word: u16) -> Option<SsrCfgReg> {
        match word {
            0 => Some(SsrCfgReg::Status),
            1 => Some(SsrCfgReg::Repeat),
            2..=5 => Some(SsrCfgReg::Bound((word - 2) as u8)),
            6..=9 => Some(SsrCfgReg::Stride((word - 6) as u8)),
            24..=27 => Some(SsrCfgReg::RPtr((word - 24) as u8)),
            28..=31 => Some(SsrCfgReg::WPtr((word - 28) as u8)),
            _ => None,
        }
    }

    /// Builds the full `scfgwi` immediate for this register and data mover.
    pub fn scfg_imm(self, dm: SsrDataMover) -> u16 {
        (self.encode() << 5) | dm.index() as u16
    }

    /// Splits an `scfgwi` immediate into the register and data mover.
    pub fn from_scfg_imm(imm: u16) -> Option<(SsrCfgReg, SsrDataMover)> {
        let dm = (imm & 0x1F) as u8;
        if dm as usize >= NUM_SSR_DATA_MOVERS {
            return None;
        }
        Some((SsrCfgReg::decode(imm >> 5)?, SsrDataMover::new(dm)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_reg_encoding_round_trips() {
        let regs = [
            SsrCfgReg::Status,
            SsrCfgReg::Repeat,
            SsrCfgReg::Bound(0),
            SsrCfgReg::Bound(3),
            SsrCfgReg::Stride(0),
            SsrCfgReg::Stride(3),
            SsrCfgReg::RPtr(0),
            SsrCfgReg::RPtr(3),
            SsrCfgReg::WPtr(0),
            SsrCfgReg::WPtr(3),
        ];
        for r in regs {
            assert_eq!(SsrCfgReg::decode(r.encode()), Some(r));
            for dm in 0..NUM_SSR_DATA_MOVERS as u8 {
                let dm = SsrDataMover::new(dm);
                assert_eq!(SsrCfgReg::from_scfg_imm(r.scfg_imm(dm)), Some((r, dm)));
            }
        }
    }

    #[test]
    fn bad_immediates_rejected() {
        // Data mover 5 does not exist.
        assert_eq!(SsrCfgReg::from_scfg_imm((2 << 5) | 5), None);
        // Word 12 is not a defined configuration register.
        assert_eq!(SsrCfgReg::decode(12), None);
    }

    #[test]
    #[should_panic]
    fn oversized_dim_panics() {
        let _ = SsrCfgReg::Bound(4).encode();
    }
}
