//! The RISC-V integer and floating-point register files.
//!
//! Registers are identified by their hardware index (`x0`–`x31`,
//! `f0`–`f31`) but printed and parsed using their standard ABI names
//! (`zero`, `ra`, `sp`, …, `a0`, `t0`, `fa0`, `ft0`, …), which is what the
//! assembly emitter produces and the simulator's assembler consumes.

use std::fmt;
use std::str::FromStr;

/// ABI names of the 32 integer registers, indexed by hardware number.
const INT_ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

/// ABI names of the 32 floating-point registers, indexed by hardware number.
const FP_ABI_NAMES: [&str; 32] = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1", "fa2",
    "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9",
    "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
];

/// Error returned when parsing a register from an unknown name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegParseError {
    name: String,
}

impl fmt::Display for RegParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.name)
    }
}

impl std::error::Error for RegParseError {}

/// An integer (`x`) register, identified by hardware index.
///
/// ```
/// use mlb_isa::IntReg;
/// let a0: IntReg = "a0".parse()?;
/// assert_eq!(a0.index(), 10);
/// assert_eq!(a0.to_string(), "a0");
/// # Ok::<(), mlb_isa::RegParseError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(u8);

impl IntReg {
    /// The hard-wired zero register `x0`.
    pub const ZERO: IntReg = IntReg(0);
    /// The return-address register `x1`.
    pub const RA: IntReg = IntReg(1);
    /// The stack pointer `x2`.
    pub const SP: IntReg = IntReg(2);

    /// Creates a register from its hardware index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> IntReg {
        assert!(index < 32, "integer register index {index} out of range");
        IntReg(index)
    }

    /// The argument register `a<n>` (`a0`–`a7`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    pub fn a(n: u8) -> IntReg {
        assert!(n < 8, "argument register a{n} does not exist");
        IntReg(10 + n)
    }

    /// The temporary register `t<n>` (`t0`–`t6`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 7`.
    pub fn t(n: u8) -> IntReg {
        assert!(n < 7, "temporary register t{n} does not exist");
        if n < 3 {
            IntReg(5 + n)
        } else {
            IntReg(28 + n - 3)
        }
    }

    /// The hardware index (0–31).
    pub fn index(self) -> u8 {
        self.0
    }

    /// The standard ABI name, e.g. `"a0"`.
    pub fn abi_name(self) -> &'static str {
        INT_ABI_NAMES[self.0 as usize]
    }

    /// The 15 caller-saved registers available to the spill-free allocator:
    /// `a0`–`a7` and `t0`–`t6` (Section 3.3 of the paper).
    ///
    /// Argument registers come last so that temporaries are preferred and
    /// incoming argument registers stay untouched for as long as possible.
    pub fn allocatable() -> Vec<IntReg> {
        let mut pool: Vec<IntReg> = (0..7).map(IntReg::t).collect();
        pool.extend((0..8).map(IntReg::a));
        pool
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl FromStr for IntReg {
    type Err = RegParseError;

    fn from_str(s: &str) -> Result<IntReg, RegParseError> {
        if let Some(pos) = INT_ABI_NAMES.iter().position(|&n| n == s) {
            return Ok(IntReg(pos as u8));
        }
        // Also accept the raw x<n> spelling.
        if let Some(num) = s.strip_prefix('x') {
            if let Ok(n) = num.parse::<u8>() {
                if n < 32 {
                    return Ok(IntReg(n));
                }
            }
        }
        // `fp` is an alias for `s0`.
        if s == "fp" {
            return Ok(IntReg(8));
        }
        Err(RegParseError { name: s.to_string() })
    }
}

/// A floating-point (`f`) register, identified by hardware index.
///
/// ```
/// use mlb_isa::FpReg;
/// let ft3: FpReg = "ft3".parse()?;
/// assert_eq!(ft3.index(), 3);
/// assert!(!ft3.is_ssr());
/// assert!(FpReg::ft(0).is_ssr());
/// # Ok::<(), mlb_isa::RegParseError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(u8);

impl FpReg {
    /// Creates a register from its hardware index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> FpReg {
        assert!(index < 32, "fp register index {index} out of range");
        FpReg(index)
    }

    /// The argument register `fa<n>` (`fa0`–`fa7`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    pub fn fa(n: u8) -> FpReg {
        assert!(n < 8, "argument register fa{n} does not exist");
        FpReg(10 + n)
    }

    /// The temporary register `ft<n>` (`ft0`–`ft11`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 12`.
    pub fn ft(n: u8) -> FpReg {
        assert!(n < 12, "temporary register ft{n} does not exist");
        if n < 8 {
            FpReg(n)
        } else {
            FpReg(28 + n - 8)
        }
    }

    /// The hardware index (0–31).
    pub fn index(self) -> u8 {
        self.0
    }

    /// The standard ABI name, e.g. `"ft0"`.
    pub fn abi_name(self) -> &'static str {
        FP_ABI_NAMES[self.0 as usize]
    }

    /// Whether this register is claimed by a stream data mover while
    /// streaming is enabled (`ft0`, `ft1`, `ft2`).
    pub fn is_ssr(self) -> bool {
        self.0 < super::ssr::NUM_SSR_DATA_MOVERS as u8
    }

    /// The 20 caller-saved registers available to the spill-free allocator:
    /// `fa0`–`fa7` and `ft0`–`ft11` (Section 3.3 of the paper).
    ///
    /// Higher `ft` temporaries come first; the SSR data registers
    /// `ft0`–`ft2` come last so that code inside streaming regions (which
    /// must exclude them) and code outside behave as uniformly as possible.
    pub fn allocatable() -> Vec<FpReg> {
        let mut pool: Vec<FpReg> = (3..12).rev().map(FpReg::ft).collect();
        pool.extend((0..8).map(FpReg::fa));
        pool.extend((0..3).map(FpReg::ft));
        pool
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl FromStr for FpReg {
    type Err = RegParseError;

    fn from_str(s: &str) -> Result<FpReg, RegParseError> {
        if let Some(pos) = FP_ABI_NAMES.iter().position(|&n| n == s) {
            return Ok(FpReg(pos as u8));
        }
        if let Some(num) = s.strip_prefix('f') {
            if let Ok(n) = num.parse::<u8>() {
                if n < 32 {
                    return Ok(FpReg(n));
                }
            }
        }
        Err(RegParseError { name: s.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_abi_names_round_trip() {
        for i in 0..32 {
            let r = IntReg::new(i);
            assert_eq!(r.abi_name().parse::<IntReg>().unwrap(), r);
        }
    }

    #[test]
    fn fp_abi_names_round_trip() {
        for i in 0..32 {
            let r = FpReg::new(i);
            assert_eq!(r.abi_name().parse::<FpReg>().unwrap(), r);
        }
    }

    #[test]
    fn x_spelling_parses() {
        assert_eq!("x10".parse::<IntReg>().unwrap(), IntReg::a(0));
        assert_eq!("x0".parse::<IntReg>().unwrap(), IntReg::ZERO);
        assert_eq!("f0".parse::<FpReg>().unwrap(), FpReg::ft(0));
    }

    #[test]
    fn unknown_names_rejected() {
        assert!("q7".parse::<IntReg>().is_err());
        assert!("x32".parse::<IntReg>().is_err());
        assert!("f32".parse::<FpReg>().is_err());
        assert!("fq1".parse::<FpReg>().is_err());
    }

    #[test]
    fn t_registers_are_split() {
        assert_eq!(IntReg::t(0).index(), 5);
        assert_eq!(IntReg::t(2).index(), 7);
        assert_eq!(IntReg::t(3).index(), 28);
        assert_eq!(IntReg::t(6).index(), 31);
    }

    #[test]
    fn ft_registers_are_split() {
        assert_eq!(FpReg::ft(0).index(), 0);
        assert_eq!(FpReg::ft(7).index(), 7);
        assert_eq!(FpReg::ft(8).index(), 28);
        assert_eq!(FpReg::ft(11).index(), 31);
    }

    #[test]
    fn allocatable_pool_sizes_match_paper() {
        // "15 integer (a and t) and 20 FP registers (fa and ft)"
        assert_eq!(IntReg::allocatable().len(), 15);
        assert_eq!(FpReg::allocatable().len(), 20);
    }

    #[test]
    fn allocatable_pools_have_no_duplicates() {
        let ints = IntReg::allocatable();
        let mut dedup = ints.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ints.len());

        let fps = FpReg::allocatable();
        let mut dedup = fps.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), fps.len());
    }

    #[test]
    fn ssr_registers_are_ft0_to_ft2() {
        let ssrs: Vec<FpReg> = (0..32).map(FpReg::new).filter(|r| r.is_ssr()).collect();
        assert_eq!(ssrs, vec![FpReg::ft(0), FpReg::ft(1), FpReg::ft(2)]);
    }

    #[test]
    fn display_uses_abi_name() {
        assert_eq!(IntReg::a(3).to_string(), "a3");
        assert_eq!(FpReg::fa(1).to_string(), "fa1");
        assert_eq!(IntReg::ZERO.to_string(), "zero");
    }
}
