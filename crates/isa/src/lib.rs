#![warn(missing_docs)]

//! RISC-V ISA and Snitch extension definitions shared across the backend.
//!
//! This crate is the lowest layer of the workspace: it defines the integer
//! and floating-point register files with their ABI names, the allocatable
//! (caller-saved) register pools used by the spill-free register allocator,
//! and the constants of the Snitch stream semantic register (SSR) and
//! floating-point repetition (FREP) ISA extensions.
//!
//! Everything else — the IR register types, the `rv` dialects, the assembly
//! emitter and the simulator — agrees on these definitions, so a register
//! allocated by the backend is, by construction, the register the simulator
//! reads and writes.

pub mod regs;
pub mod ssr;

pub use regs::{FpReg, IntReg, RegParseError};
pub use ssr::{SsrCfgReg, SsrDataMover, FREP_MAX_SEQUENCE, NUM_SSR_DATA_MOVERS, SSR_MAX_DIMS};

/// The control and status register (CSR) that gates stream semantics.
///
/// Setting bit 0 turns SSR mode on: reads of `ft0`/`ft1` pop from the read
/// streams and writes to `ft2` push to the write stream.
pub const CSR_SSR: u16 = 0x7C0;

/// Machine cycle counter CSR, used by kernels and the harness for timing.
pub const CSR_MCYCLE: u16 = 0xB00;

/// Machine hart-id CSR (`mhartid`): reads the core index within the
/// cluster. Standard RISC-V machine-mode CSR number.
pub const CSR_MHARTID: u16 = 0xF14;

/// Snitch cluster hardware-barrier CSR: reading it stalls the core until
/// every core of the cluster has performed the read, then releases all of
/// them in the same cycle.
pub const CSR_BARRIER: u16 = 0x7C2;

/// Size of the tightly-coupled data memory (TCDM) in bytes (128 KiB).
///
/// The paper selects kernel shapes so that all operands fit in the TCDM;
/// the simulator models it as single-cycle scratchpad memory.
pub const TCDM_SIZE: usize = 128 * 1024;

/// Base address of the TCDM in the simulated address space.
pub const TCDM_BASE: u32 = 0x1000_0000;

/// Depth of the floating-point unit pipeline in stages.
///
/// All FPU operations on Snitch have a three-stage pipeline; a dependent
/// instruction issued back-to-back therefore stalls. The unroll-and-jam
/// factor is chosen so at least [`FPU_PIPELINE_DEPTH`] + 1 independent
/// instructions are in flight (Section 3.4 of the paper).
pub const FPU_PIPELINE_DEPTH: u32 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcdm_is_128_kib() {
        assert_eq!(TCDM_SIZE, 131072);
    }

    #[test]
    fn fpu_depth_matches_paper() {
        // "the FPU has three stages for all operations"
        assert_eq!(FPU_PIPELINE_DEPTH, 3);
    }
}
