//! Interval-liveness buffer placement for layer graphs.
//!
//! A layer graph threads intermediate buffers between stages; since a
//! stage-`s` intermediate dies as soon as stage `s+1` has consumed it,
//! its TCDM bytes can be recycled for a later intermediate. The placer
//! here works over abstract *offsets* (the caller adds `TCDM_BASE` and
//! checks the capacity), assigning each request the lowest 8-byte-
//! aligned offset that does not overlap any live-interval-conflicting
//! earlier assignment — first-fit interval graph coloring, which is
//! optimal for the chain-shaped graphs the layer presets produce.

/// One buffer to place: a size in bytes and the half-open interval of
/// graph steps during which it is live. Buffers whose intervals do not
/// overlap may share bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufRequest {
    /// Required bytes (rounded up to 8-byte alignment internally).
    pub bytes: u64,
    /// First step (inclusive) at which the buffer holds live data.
    pub start: u32,
    /// Last step (exclusive); `start..end` empty means never live, and
    /// such buffers still get a distinct non-overlapping slot.
    pub end: u32,
}

impl BufRequest {
    /// A buffer live over `start..end` holding `bytes` bytes.
    pub fn new(bytes: u64, start: u32, end: u32) -> BufRequest {
        BufRequest { bytes, start, end }
    }

    /// Whether two requests are simultaneously live.
    fn overlaps(&self, other: &BufRequest) -> bool {
        // Degenerate (empty) intervals are treated as always-live so
        // they never silently alias real data.
        let a = (self.start, self.end.max(self.start + 1));
        let b = (other.start, other.end.max(other.start + 1));
        a.0 < b.1 && b.0 < a.1
    }
}

/// The result of placing a set of requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Byte offset of each request, in input order (8-byte aligned).
    pub offsets: Vec<u64>,
    /// Total bytes the placement spans (high-water mark).
    pub total_bytes: u64,
}

/// Places `requests` with interval-based reuse: requests whose live
/// intervals are disjoint may receive overlapping offsets. Offsets are
/// 8-byte aligned; first-fit in input order.
pub fn place(requests: &[BufRequest]) -> Placement {
    let mut offsets = Vec::with_capacity(requests.len());
    let mut total = 0u64;
    // Already-placed requests as (offset, aligned size, request).
    let mut placed: Vec<(u64, u64, BufRequest)> = Vec::new();
    for req in requests {
        let size = req.bytes.next_multiple_of(8).max(8);
        // Gather the occupied ranges that conflict in time, then scan
        // for the first aligned gap large enough.
        let mut conflicts: Vec<(u64, u64)> = placed
            .iter()
            .filter(|(_, _, other)| req.overlaps(other))
            .map(|&(off, sz, _)| (off, off + sz))
            .collect();
        conflicts.sort_unstable();
        let mut offset = 0u64;
        for &(lo, hi) in &conflicts {
            if offset + size <= lo {
                break;
            }
            offset = offset.max(hi);
        }
        offsets.push(offset);
        total = total.max(offset + size);
        placed.push((offset, size, *req));
    }
    Placement { offsets, total_bytes: total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_intervals_share_bytes() {
        // A chain: in(0..1), t1(0..2), t2(1..3), out(2..3).
        // t1 dies when t2 is produced... here t1 lives 0..2 and t2
        // lives 1..3, so they overlap; but in(0..1) and t2(1..3) don't.
        let reqs = [
            BufRequest::new(64, 0, 1),
            BufRequest::new(64, 0, 2),
            BufRequest::new(64, 1, 3),
            BufRequest::new(64, 2, 3),
        ];
        let p = place(&reqs);
        assert_eq!(p.offsets[2], p.offsets[0], "t2 reuses the dead input's bytes");
        assert_eq!(p.offsets[3], p.offsets[1], "out reuses t1's bytes");
        assert_eq!(p.total_bytes, 128, "two live slots at any step");
    }

    #[test]
    fn overlapping_intervals_never_alias() {
        let reqs = [BufRequest::new(24, 0, 3), BufRequest::new(40, 1, 2), BufRequest::new(8, 2, 4)];
        let p = place(&reqs);
        for i in 0..reqs.len() {
            for j in i + 1..reqs.len() {
                if reqs[i].overlaps(&reqs[j]) {
                    let (ai, bi) = (p.offsets[i], p.offsets[i] + reqs[i].bytes.next_multiple_of(8));
                    let (aj, bj) = (p.offsets[j], p.offsets[j] + reqs[j].bytes.next_multiple_of(8));
                    assert!(bi <= aj || bj <= ai, "requests {i} and {j} alias");
                }
            }
        }
    }

    #[test]
    fn offsets_are_aligned_and_gaps_filled() {
        let reqs = [
            BufRequest::new(12, 0, 2), // rounds to 16
            BufRequest::new(100, 0, 2),
            BufRequest::new(16, 2, 3), // fits in the first slot after death
        ];
        let p = place(&reqs);
        for &o in &p.offsets {
            assert_eq!(o % 8, 0);
        }
        assert_eq!(p.offsets[1], 16);
        assert_eq!(p.offsets[2], 0);
    }

    #[test]
    fn empty_interval_is_kept_exclusive() {
        let reqs = [BufRequest::new(8, 1, 1), BufRequest::new(8, 1, 1)];
        let p = place(&reqs);
        assert_ne!(p.offsets[0], p.offsets[1]);
    }
}
