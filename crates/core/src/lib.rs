#![warn(missing_docs)]

//! The multi-level compiler backend for Snitch (the paper's primary
//! contribution).
//!
//! - [`passes`] — the progressive lowering and scheduling passes
//!   (Sections 3.2 and 3.4).
//! - [`regalloc`] — the spill-free multi-level register allocator
//!   (Section 3.3).
//! - [`pipeline`] — assembled compiler flows: the multi-level backend
//!   with the Table 3 ablation knobs, plus the MLIR-like and Clang-like
//!   comparison flows of the evaluation (Section 4.1).
//! - [`bufplace`] — interval-liveness buffer placement for layer
//!   graphs (TCDM reuse across graph stages).

pub mod bufplace;
pub mod passes;
pub mod pipeline;
pub mod regalloc;

pub use bufplace::{place, BufRequest, Placement};
pub use pipeline::{
    build_pipeline, compile, compile_with_observer, compile_with_stages,
    compile_with_stages_tweaked, full_registry, Compilation, Flow, PipelineOptions, Stage,
};
pub use regalloc::{allocate_function, RegAllocError, RegStats};
