//! The micro-kernel compiler: pass pipelines from `linalg` input to
//! Snitch assembly.
//!
//! [`PipelineOptions`] exposes exactly the knobs of the paper's ablation
//! study (Table 3): streams, scalar replacement, FREP, fuse-fill and
//! unroll-and-jam. [`Flow`] selects between the multi-level backend and
//! the two comparison flows of Section 4.1 — an "MLIR-like" lowering of
//! the same `linalg` input through plain loops, and a "Clang-like" naive
//! loop compilation — both restricted to the base RISC-V ISA (no
//! compiler targets the Snitch extensions, Section 4.1).

use mlb_ir::{
    Context, DialectRegistry, NoopObserver, OpId, Pass, PassError, PassEvent, PassManager,
    PipelineObserver,
};
use mlb_riscv::rv_func;

use crate::passes::canonicalize::Canonicalize;
use crate::passes::convert_linalg::ConvertLinalgToMemrefStream;
use crate::passes::convert_to_rv::ConvertToRv;
use crate::passes::dce::DeadCodeElimination;
use crate::passes::distribute_to_cores::DistributeToCores;
use crate::passes::fuse_elementwise::MemrefStreamFuseElementwise;
use crate::passes::fuse_fill::MemrefStreamFuseFill;
use crate::passes::lower_streaming::LowerSnitchStream;
use crate::passes::lower_to_loops::ConvertMemrefStreamToLoops;
use crate::passes::peephole::RvPeephole;
use crate::passes::rv_scf_to_cf::RvScfToCf;
use crate::passes::rv_scf_to_frep::RvScfToFrep;
use crate::passes::scalar_replacement::MemrefStreamScalarReplacement;
use crate::passes::unroll_and_jam::MemrefStreamUnrollAndJam;
use crate::regalloc::{allocate_function, RegStats};

/// Optimization toggles of the multi-level backend (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Use stream semantic registers for affine accesses ("Streams").
    pub streams: bool,
    /// Accumulate reduction results in registers ("Scalar Replacement").
    pub scalar_replacement: bool,
    /// Convert eligible loops to hardware loops ("FRep").
    pub frep: bool,
    /// Fuse output initialization into reductions ("Fuse Fill").
    pub fuse_fill: bool,
    /// Fuse adjacent element-wise generics writing through scratch
    /// temporaries into one generic (the layer-graph fusion; off by
    /// default — single-kernel modules have nothing to fuse).
    pub fuse_elementwise: bool,
    /// Interleave iterations to hide FPU latency ("Unroll-and-Jam").
    pub unroll_and_jam: bool,
    /// Forced unroll factor (`None` = automatic, from the FPU depth).
    pub unroll_factor: Option<i64>,
    /// Apply the stream access-pattern optimizations of Section 3.2
    /// (contiguous-dimension collapse, zero-stride repeat counter).
    pub stream_pattern_opts: bool,
    /// Number of cluster cores to shard kernels across (1 = no
    /// distribution; the paper's cluster has 8).
    pub cores: usize,
    /// Forced shard dimension for `distribute-to-cores` (`None` =
    /// automatic: the first parallel dimension whose bound divides the
    /// core count and that every output map depends on). A forced
    /// dimension that fails those conditions falls back to the
    /// automatic choice, so the option can never make sharding unsound.
    pub shard_dim: Option<usize>,
}

impl PipelineOptions {
    /// The full pipeline (all optimizations).
    pub fn full() -> PipelineOptions {
        PipelineOptions {
            streams: true,
            scalar_replacement: true,
            frep: true,
            fuse_fill: true,
            fuse_elementwise: false,
            unroll_and_jam: true,
            unroll_factor: None,
            stream_pattern_opts: true,
            cores: 1,
            shard_dim: None,
        }
    }

    /// The Table 3 baseline: direct lowering, standard RISC-V ISA only.
    pub fn baseline() -> PipelineOptions {
        PipelineOptions {
            streams: false,
            scalar_replacement: false,
            frep: false,
            fuse_fill: false,
            fuse_elementwise: false,
            unroll_and_jam: false,
            unroll_factor: None,
            stream_pattern_opts: true,
            cores: 1,
            shard_dim: None,
        }
    }

    /// The cumulative option sets of Table 3, with their row labels.
    pub fn ablation_ladder() -> Vec<(&'static str, PipelineOptions)> {
        let mut opts = PipelineOptions::baseline();
        let mut ladder = vec![("Baseline", opts)];
        opts.streams = true;
        ladder.push(("+ Streams", opts));
        opts.scalar_replacement = true;
        ladder.push(("+ Scalar Replacement", opts));
        opts.frep = true;
        ladder.push(("+ FRep", opts));
        opts.fuse_fill = true;
        ladder.push(("+ Fuse Fill", opts));
        opts.unroll_and_jam = true;
        ladder.push(("+ Unroll-and-Jam", opts));
        ladder
    }
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions::full()
    }
}

/// Compilation flows compared in the evaluation (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// The multi-level backend with the given options.
    Ours(PipelineOptions),
    /// MLIR-style lowering of the same `linalg` input through plain
    /// loops to the base ISA, with LLVM-like instruction selection.
    MlirLike,
    /// A naive C-style loop nest compiled for the base ISA, with
    /// LLVM-like instruction selection and simple loop unrolling.
    ClangLike,
}

/// The result of compiling a module.
#[derive(Debug, Clone)]
pub struct Compilation {
    /// The final assembly text.
    pub assembly: String,
    /// Per-function register usage (Table 2).
    pub functions: Vec<(String, RegStats)>,
    /// The pass pipeline that ran, in order.
    pub passes: Vec<&'static str>,
    /// Source provenance of each emitted instruction, indexed by the
    /// instruction index the simulator's assembler assigns (see
    /// [`mlb_riscv::emit_module_with_source_map`]). All
    /// [`mlb_ir::Location::Unknown`] unless the module was parsed with
    /// locations or built from located IR.
    pub source_map: Vec<mlb_ir::Location>,
}

/// A module-level adapter that runs the spill-free allocator on every
/// function.
#[derive(Debug, Default)]
struct AllocateRegisters;

impl Pass for AllocateRegisters {
    fn name(&self) -> &'static str {
        "allocate-registers"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        for func in ctx.walk_named(root, rv_func::FUNC) {
            allocate_function(ctx, func).map_err(|e| PassError::new(self.name(), e.to_string()))?;
        }
        Ok(())
    }
}

/// Creates a registry with every dialect of the project.
pub fn full_registry() -> DialectRegistry {
    let mut registry = DialectRegistry::new();
    mlb_dialects::register_all(&mut registry);
    mlb_riscv::register_all(&mut registry);
    registry
}

/// A snapshot of the module after one pipeline stage.
///
/// Produced by [`compile_with_stages`]: the whole [`Context`] is cloned
/// after each pass, so the stage can later be re-executed by the IR
/// interpreter with the exact operand layout of the simulated kernel.
#[derive(Debug, Clone)]
pub struct Stage {
    /// The pass whose output this is (`"input"` for the initial module).
    pub pass: &'static str,
    /// The cloned IR state after the pass.
    pub ctx: Context,
    /// The module root inside [`Stage::ctx`].
    pub module: OpId,
}

/// Observer that clones the live IR after every pass.
struct StageCollector {
    stages: Vec<Stage>,
}

impl StageCollector {
    /// Starts a collection with the pre-pipeline module as stage
    /// `"input"`.
    fn new(ctx: &Context, module: OpId) -> StageCollector {
        StageCollector { stages: vec![Stage { pass: "input", ctx: ctx.clone(), module }] }
    }
}

impl PipelineObserver for StageCollector {
    fn on_pass(&mut self, _event: PassEvent) {}

    fn on_ir(&mut self, ctx: &Context, root: OpId, pass: &'static str, _index: usize) {
        self.stages.push(Stage { pass, ctx: ctx.clone(), module: root });
    }
}

/// Builds the pass pipeline of `flow` (including register allocation,
/// excluding the final control-flow lowering tail).
///
/// Exposed so harnesses can inspect or splice into the exact pipeline a
/// flow runs — e.g. the differential tester's self-test inserts a
/// deliberately miscompiling pass here and checks the bisection blames
/// it. `clang_unroll` selects the Clang-like flow's aggressive unrolling
/// attempt (ignored by the other flows).
pub fn build_pipeline(flow: Flow, clang_unroll: bool) -> PassManager {
    let mut pm = PassManager::new();
    match flow {
        Flow::Ours(opts) => {
            pm.add(ConvertLinalgToMemrefStream);
            if opts.fuse_fill {
                pm.add(MemrefStreamFuseFill);
            }
            if opts.fuse_elementwise {
                pm.add(MemrefStreamFuseElementwise);
            }
            if opts.cores > 1 {
                pm.add(DistributeToCores { cores: opts.cores, dim_override: opts.shard_dim });
            }
            if opts.scalar_replacement {
                pm.add(MemrefStreamScalarReplacement);
            }
            if opts.unroll_and_jam {
                pm.add(MemrefStreamUnrollAndJam { factor_override: opts.unroll_factor });
            }
            pm.add(ConvertMemrefStreamToLoops { streams: opts.streams });
            pm.add(Canonicalize);
            pm.add(ConvertToRv { pattern_opts: opts.stream_pattern_opts });
            pm.add(RvPeephole);
            if opts.frep {
                pm.add(RvScfToFrep);
            }
            pm.add(LowerSnitchStream);
            pm.add(DeadCodeElimination);
        }
        Flow::MlirLike | Flow::ClangLike => {
            // Both comparison flows lower through plain loops with
            // explicit memory operations on the base ISA. The Clang-like
            // flow additionally unrolls inner loops sequentially, which
            // is the main loop optimization LLVM applies here
            // (Section 4.4 observes the two perform similarly).
            pm.add(ConvertLinalgToMemrefStream);
            pm.add(ConvertMemrefStreamToLoops { streams: false });
            if flow == Flow::ClangLike && clang_unroll {
                // Two rounds: fully unrolling an inner fixed-trip loop
                // exposes the next level to unrolling after cleanup.
                pm.add(crate::passes::seq_unroll::SequentialUnroll::default());
                pm.add(Canonicalize);
                pm.add(crate::passes::seq_unroll::SequentialUnroll::default());
            }
            pm.add(Canonicalize);
            pm.add(ConvertToRv::default());
            pm.add(RvPeephole);
            pm.add(crate::passes::loop_opt::RvLoopOptimize);
            pm.add(crate::passes::mem_forward::RvMemForward);
            pm.add(RvPeephole);
            pm.add(DeadCodeElimination);
        }
    }
    pm.add(AllocateRegisters);
    pm
}

/// Compiles `module` (in `ctx`) to assembly with the chosen flow.
///
/// The input module holds `func.func` kernels over `linalg` (or already
/// `memref_stream`) operations; afterwards the module holds the
/// corresponding `rv_func.func` functions and the returned
/// [`Compilation`] carries the printed assembly.
///
/// # Errors
///
/// Returns the failing pass and reason (verification failures included).
pub fn compile(ctx: &mut Context, module: OpId, flow: Flow) -> Result<Compilation, PassError> {
    compile_with_observer(ctx, module, flow, &mut NoopObserver)
}

/// [`compile`], reporting a [`mlb_ir::PassEvent`] per executed pass to
/// `observer` (timing, op/block deltas, rewrite counters, optional IR
/// snapshots) — the hook behind `mlbc --pass-timing` and
/// `--print-ir-after-all`.
///
/// The Clang-like flow may retry without unrolling when register
/// allocation fails; the observer then sees the abandoned attempt's
/// events followed by the retry's (`PassEvent::index` restarts at 0).
/// The control-flow lowering tail pipeline likewise restarts the index.
///
/// # Errors
///
/// Same conditions as [`compile`].
pub fn compile_with_observer(
    ctx: &mut Context,
    module: OpId,
    flow: Flow,
    observer: &mut dyn PipelineObserver,
) -> Result<Compilation, PassError> {
    // The Clang-like flow unrolls aggressively; where LLVM would spill,
    // the spill-free allocator refuses, and the flow falls back to the
    // non-unrolled schedule (what -O2 does under pressure).
    if flow == Flow::ClangLike {
        let backup = ctx.clone();
        match compile_once(ctx, module, flow, true, observer, &|_| {}) {
            Err(e) if e.pass == "allocate-registers" => {
                *ctx = backup;
                return compile_once(ctx, module, flow, false, observer, &|_| {});
            }
            other => return other,
        }
    }
    compile_once(ctx, module, flow, false, observer, &|_| {})
}

/// [`compile`], additionally returning a [`Stage`] snapshot of the
/// module before the pipeline and after every executed pass — the input
/// of the stage-level differential tester.
///
/// When the Clang-like flow retries without unrolling, only the
/// successful attempt's stages are returned (the abandoned attempt never
/// produced a module).
///
/// # Errors
///
/// Same conditions as [`compile`].
pub fn compile_with_stages(
    ctx: &mut Context,
    module: OpId,
    flow: Flow,
) -> Result<(Compilation, Vec<Stage>), PassError> {
    compile_with_stages_tweaked(ctx, module, flow, &|_| {})
}

/// [`compile_with_stages`] with a hook that may alter the pipeline
/// before it runs (e.g. [`PassManager::insert`] a fault-injection pass).
///
/// The hook runs once per compilation attempt, after [`build_pipeline`];
/// it does not see the control-flow lowering tail.
///
/// # Errors
///
/// Same conditions as [`compile`].
pub fn compile_with_stages_tweaked(
    ctx: &mut Context,
    module: OpId,
    flow: Flow,
    tweak: &dyn Fn(&mut PassManager),
) -> Result<(Compilation, Vec<Stage>), PassError> {
    let mut collector = StageCollector::new(ctx, module);
    if flow == Flow::ClangLike {
        let backup = ctx.clone();
        match compile_once(ctx, module, flow, true, &mut collector, tweak) {
            Err(e) if e.pass == "allocate-registers" => {
                *ctx = backup;
                collector = StageCollector::new(ctx, module);
                let compilation = compile_once(ctx, module, flow, false, &mut collector, tweak)?;
                return Ok((compilation, collector.stages));
            }
            Ok(compilation) => return Ok((compilation, collector.stages)),
            Err(e) => return Err(e),
        }
    }
    let compilation = compile_once(ctx, module, flow, false, &mut collector, tweak)?;
    Ok((compilation, collector.stages))
}

fn compile_once(
    ctx: &mut Context,
    module: OpId,
    flow: Flow,
    clang_unroll: bool,
    observer: &mut dyn PipelineObserver,
    tweak: &dyn Fn(&mut PassManager),
) -> Result<Compilation, PassError> {
    let registry = full_registry();
    let mut pm = build_pipeline(flow, clang_unroll);
    tweak(&mut pm);
    let passes_head = pm.pass_names();
    pm.run_observed(ctx, &registry, module, observer)?;

    // Register statistics are gathered on the structured, allocated IR
    // (before control-flow lowering), as in Table 2.
    let mut functions = Vec::new();
    for func in ctx.walk_named(module, rv_func::FUNC) {
        let name = rv_func::symbol_name(ctx, func).unwrap_or("?").to_string();
        functions.push((name, crate::regalloc::collect_stats(ctx, func)));
    }

    let mut pm_tail = PassManager::new();
    pm_tail.add(RvScfToCf);
    let mut passes = passes_head;
    passes.extend(pm_tail.pass_names());
    pm_tail.run_observed(ctx, &registry, module, observer)?;

    let (assembly, source_map) = mlb_riscv::emit_module_with_source_map(ctx, module)
        .map_err(|e| PassError::new("emit-assembly", e.to_string()))?;
    Ok(Compilation { assembly, functions, passes, source_map })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_dialects::{arith, builtin, func, linalg};
    use mlb_ir::{AffineMap, IteratorType, Type};
    use mlb_isa::TCDM_BASE;
    use mlb_sim::Machine;

    /// Z = X + Y elementwise over `n` doubles.
    fn build_sum_module(ctx: &mut Context, n: i64) -> OpId {
        let (m, top) = builtin::build_module(ctx);
        let buf = Type::memref(vec![n], Type::F64);
        let (_f, entry) =
            func::build_func(ctx, top, "vecsum", vec![buf.clone(), buf.clone(), buf], vec![]);
        let x = ctx.block_args(entry)[0];
        let y = ctx.block_args(entry)[1];
        let z = ctx.block_args(entry)[2];
        let id = AffineMap::identity(1);
        linalg::build_generic(
            ctx,
            entry,
            vec![x, y],
            vec![z],
            vec![id.clone(), id.clone(), id],
            vec![IteratorType::Parallel],
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[1])],
        );
        func::build_return(ctx, entry, vec![]);
        m
    }

    fn run_sum(flow: Flow, n: i64) -> (Vec<f64>, mlb_sim::PerfCounters, Compilation) {
        let mut ctx = Context::new();
        let m = build_sum_module(&mut ctx, n);
        let compiled = compile(&mut ctx, m, flow).expect("compilation");
        let prog = mlb_sim::assemble(&compiled.assembly).expect("assembles");
        let mut machine = Machine::new();
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| (i * 10) as f64).collect();
        let xa = TCDM_BASE;
        let ya = TCDM_BASE + (n as u32) * 8;
        let za = TCDM_BASE + 2 * (n as u32) * 8;
        machine.write_f64_slice(xa, &x).unwrap();
        machine.write_f64_slice(ya, &y).unwrap();
        let counters = machine.call(&prog, "vecsum", &[xa, ya, za]).expect("runs");
        (machine.read_f64_slice(za, n as usize).unwrap(), counters, compiled)
    }

    #[test]
    fn sum_full_pipeline_is_correct_and_streams() {
        let (z, counters, compiled) = run_sum(Flow::Ours(PipelineOptions::full()), 32);
        let expect: Vec<f64> = (0..32).map(|i| (i + i * 10) as f64).collect();
        assert_eq!(z, expect);
        // Streams carry all data: no explicit FP loads or stores.
        assert_eq!(counters.fp_loads, 0, "asm:\n{}", compiled.assembly);
        assert_eq!(counters.fp_stores, 0);
        assert_eq!(counters.ssr_reads, 64);
        assert_eq!(counters.ssr_writes, 32);
        assert_eq!(counters.flops, 32);
        // One fadd per element under frep: high FPU utilization.
        assert!(
            counters.fpu_utilization() > 0.5,
            "util = {} over {} cycles\n{}",
            counters.fpu_utilization(),
            counters.cycles,
            compiled.assembly
        );
        assert!(compiled.assembly.contains("frep.o"), "{}", compiled.assembly);
    }

    #[test]
    fn sum_baseline_is_correct_but_slow() {
        let (z, counters, compiled) = run_sum(Flow::Ours(PipelineOptions::baseline()), 16);
        let expect: Vec<f64> = (0..16).map(|i| (i + i * 10) as f64).collect();
        assert_eq!(z, expect);
        assert_eq!(counters.fp_loads, 32, "asm:\n{}", compiled.assembly);
        assert_eq!(counters.fp_stores, 16);
        assert_eq!(counters.ssr_reads, 0);
        assert!(!compiled.assembly.contains("frep.o"));
        assert!(!compiled.assembly.contains("scfgwi"));
    }

    #[test]
    fn sum_mlir_like_flow_is_correct() {
        let (z, counters, _) = run_sum(Flow::MlirLike, 16);
        let expect: Vec<f64> = (0..16).map(|i| (i + i * 10) as f64).collect();
        assert_eq!(z, expect);
        assert_eq!(counters.ssr_reads, 0);
    }

    #[test]
    fn sum_clang_like_flow_is_correct() {
        let (z, _counters, _) = run_sum(Flow::ClangLike, 16);
        let expect: Vec<f64> = (0..16).map(|i| (i + i * 10) as f64).collect();
        assert_eq!(z, expect);
    }

    #[test]
    fn sum_distributes_bit_identically_across_cores() {
        let (reference, _, _) = run_sum(Flow::Ours(PipelineOptions::full()), 32);
        for cores in [2usize, 4] {
            let mut opts = PipelineOptions::full();
            opts.cores = cores;
            let mut ctx = Context::new();
            let m = build_sum_module(&mut ctx, 32);
            let compiled = compile(&mut ctx, m, Flow::Ours(opts)).expect("compilation");
            assert!(compiled.assembly.contains("mhartid"), "{}", compiled.assembly);
            let prog = mlb_sim::assemble(&compiled.assembly).expect("assembles");
            let mut cluster = mlb_sim::Cluster::new(cores);
            let x: Vec<f64> = (0..32).map(|i| i as f64).collect();
            let y: Vec<f64> = (0..32).map(|i| (i * 10) as f64).collect();
            let (xa, ya, za) = (TCDM_BASE, TCDM_BASE + 256, TCDM_BASE + 512);
            cluster.write_f64_slice(xa, &x).unwrap();
            cluster.write_f64_slice(ya, &y).unwrap();
            let counters = cluster.call(&prog, "vecsum", &[xa, ya, za]).expect("runs");
            assert_eq!(cluster.read_f64_slice(za, 32).unwrap(), reference);
            assert_eq!(counters.per_core.len(), cores);
            assert_eq!(counters.barriers, 1);
        }
    }

    #[test]
    fn full_pipeline_beats_baseline() {
        let (_z, full, _) = run_sum(Flow::Ours(PipelineOptions::full()), 64);
        let (_z, base, _) = run_sum(Flow::Ours(PipelineOptions::baseline()), 64);
        assert!(full.cycles * 2 < base.cycles, "full {} vs baseline {}", full.cycles, base.cycles);
    }
}
