//! `rv-scf-to-cf`: lowers structured `rv_scf.for` loops to basic blocks
//! and `rv_cf` branches. Runs *after* register allocation — structure is
//! kept as long as it is useful (Section 3.3) and discarded only for
//! final assembly emission.
//!
//! The allocator guarantees that an iteration chain (init operand, block
//! argument, yielded value, loop result) shares one register, so the
//! lowering needs no parallel-copy sequences: entering the loop is a
//! register move of the induction variable, the back edge is an `add`
//! plus branch, and the loop results are simply the iteration registers.

use mlb_ir::{Attribute, Context, DialectRegistry, OpId, Pass, PassError};
use mlb_riscv::{rv, rv_cf, rv_func, rv_scf};

/// The pass object.
#[derive(Debug, Default)]
pub struct RvScfToCf;

impl Pass for RvScfToCf {
    fn name(&self) -> &'static str {
        "rv-scf-to-cf"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        for func in ctx.walk_named(root, rv_func::FUNC) {
            loop {
                // Repeatedly flatten a loop whose parent block lives
                // directly in the function region (outermost first).
                let region = ctx.op(func).regions[0];
                let candidate = ctx
                    .region_blocks(region)
                    .to_vec()
                    .into_iter()
                    .flat_map(|b| ctx.block_ops(b).to_vec())
                    .find(|&o| ctx.op(o).name == rv_scf::FOR);
                match candidate {
                    Some(op) => {
                        let result = flatten(ctx, op);
                        ctx.clear_builder_loc();
                        result.map_err(|m| PassError::new(self.name(), m))?
                    }
                    None => break,
                }
            }
        }
        Ok(())
    }
}

fn li_value(ctx: &Context, v: mlb_ir::ValueId) -> Option<i64> {
    rv::constant_int_value(ctx, v)
}

/// Erases the defining `rv.li`/`rv.get_register` of `v` when it has no
/// remaining uses (bounds folded into the lowered control flow).
fn erase_if_dead_constant(ctx: &mut Context, v: mlb_ir::ValueId) {
    if ctx.has_uses(v) {
        return;
    }
    if let Some(def) = ctx.defining_op(v) {
        let name = &ctx.op(def).name;
        if name == rv::LI || name == rv::GET_REGISTER {
            ctx.erase_op(def);
        }
    }
}

fn flatten(ctx: &mut Context, op: OpId) -> Result<(), String> {
    // Loop-control scaffolding (pre-header moves, increment, branches)
    // is charged to the loop being flattened; body ops keep theirs.
    let loc = ctx.effective_loc(op).clone();
    ctx.set_builder_loc(loc);
    let for_op = rv_scf::RvForOp(op);
    let pre_block = ctx.op(op).parent.ok_or("loop is detached")?;
    let region = ctx.block_parent(pre_block);
    let lb = for_op.lower_bound(ctx);
    let ub = for_op.upper_bound(ctx);
    let step = for_op.step(ctx);
    let iv = for_op.induction_var(ctx);
    let iv_ty = ctx.value_type(iv).clone();
    if !iv_ty.is_allocated_register() {
        return Err("lower loops only after register allocation".to_string());
    }
    let body_block = for_op.body(ctx);
    let iter_args = for_op.iter_args(ctx).to_vec();
    let results = ctx.op(op).results.clone();
    let loop_pos = ctx.op_position(op);

    // Exit block: everything after the loop moves there.
    let exit_block = ctx.create_block(region, vec![]);
    let tail: Vec<OpId> = ctx.block_ops(pre_block)[loop_pos + 1..].to_vec();
    for t in tail {
        ctx.move_op_to_end(t, exit_block);
    }

    // Loop results: re-materialize the iteration registers in the exit
    // block (the chain register holds the final value there).
    for (&result, &arg) in results.iter().zip(&iter_args) {
        if ctx.has_uses(result) {
            let ty = ctx.value_type(arg).clone();
            let pinned =
                ctx.create_detached_op(mlb_ir::OpSpec::new(rv::GET_REGISTER).results(vec![ty]));
            // Insert at the top of the exit block.
            match ctx.block_ops(exit_block).first().copied() {
                Some(first) => ctx.move_op_before(pinned, first),
                None => ctx.move_op_to_end(pinned, exit_block),
            }
            let new = ctx.op(pinned).results[0];
            ctx.replace_all_uses(result, new);
        }
    }

    // Countdown form: an unused induction variable with normalized
    // bounds counts down from the upper bound to zero, so the bound
    // register dies at loop entry (saving one live-through register).
    let iv_dead =
        !ctx.has_uses(iv) && li_value(ctx, lb) == Some(0) && li_value(ctx, step) == Some(1);

    // Pre-header: transfer any iteration value whose init was not
    // unified into the chain register (shared inits), then materialize
    // the induction register from the lower bound (folding constants).
    let inits: Vec<mlb_ir::ValueId> = for_op.iter_inits(ctx).to_vec();
    for (&init, &arg) in inits.iter().zip(&iter_args) {
        let init_ty = ctx.value_type(init).clone();
        let arg_ty = ctx.value_type(arg).clone();
        if init_ty != arg_ty {
            let mv_name =
                if matches!(arg_ty, mlb_ir::Type::FpRegister(_)) { rv::FMV_D } else { rv::MV };
            ctx.append_op(
                pre_block,
                mlb_ir::OpSpec::new(mv_name).operands(vec![init]).results(vec![arg_ty]),
            );
        }
    }
    let iv_entry = if iv_dead {
        // Counter starts at the trip count.
        match li_value(ctx, ub) {
            Some(c) => {
                let li = ctx.append_op(
                    pre_block,
                    mlb_ir::OpSpec::new(rv::LI)
                        .attr("imm", Attribute::Int(c))
                        .results(vec![iv_ty.clone()]),
                );
                ctx.op(li).results[0]
            }
            None => {
                let mv = ctx.append_op(
                    pre_block,
                    mlb_ir::OpSpec::new(rv::MV).operands(vec![ub]).results(vec![iv_ty.clone()]),
                );
                ctx.op(mv).results[0]
            }
        }
    } else {
        match li_value(ctx, lb) {
            Some(c) => {
                let li = ctx.append_op(
                    pre_block,
                    mlb_ir::OpSpec::new(rv::LI)
                        .attr("imm", Attribute::Int(c))
                        .results(vec![iv_ty.clone()]),
                );
                ctx.op(li).results[0]
            }
            None => {
                let mv = ctx.append_op(
                    pre_block,
                    mlb_ir::OpSpec::new(rv::MV).operands(vec![lb]).results(vec![iv_ty.clone()]),
                );
                ctx.op(mv).results[0]
            }
        }
    };
    // Trip guard unless the bounds are provably nonempty constants.
    let needs_guard = match (li_value(ctx, lb), li_value(ctx, ub)) {
        (Some(l), Some(u)) => l >= u,
        _ => true,
    };
    // Move the body block into the function region right after the
    // pre-header.
    ctx.move_block_after(body_block, pre_block);
    ctx.move_block_after(exit_block, body_block);
    if iv_dead {
        if needs_guard {
            // Loop while the counter is positive.
            let zero_reg = ctx.append_op(
                pre_block,
                mlb_ir::OpSpec::new(rv::GET_REGISTER)
                    .results(vec![mlb_ir::Type::IntRegister(Some(mlb_isa::IntReg::ZERO))]),
            );
            let zero_v = ctx.op(zero_reg).results[0];
            rv_cf::build_branch(
                ctx,
                pre_block,
                rv_cf::BGE,
                zero_v,
                iv_entry,
                exit_block,
                body_block,
            );
        } else {
            rv_cf::build_j(ctx, pre_block, body_block);
        }
    } else if needs_guard {
        rv_cf::build_branch(ctx, pre_block, rv_cf::BGE, iv_entry, ub, exit_block, body_block);
    } else {
        rv_cf::build_j(ctx, pre_block, body_block);
    }

    // Latch: replace the yield with the increment (immediate form for
    // constant steps) and the back-edge branch. Countdown loops
    // decrement and compare against the hard-wired zero.
    let yield_op = ctx.terminator(body_block);
    ctx.erase_op(yield_op);
    if iv_dead {
        let next = ctx.append_op(
            body_block,
            mlb_ir::OpSpec::new(rv::ADDI)
                .operands(vec![iv])
                .attr("imm", Attribute::Int(-1))
                .results(vec![iv_ty]),
        );
        let iv_next = ctx.op(next).results[0];
        let zero_reg = ctx.append_op(
            body_block,
            mlb_ir::OpSpec::new(rv::GET_REGISTER)
                .results(vec![mlb_ir::Type::IntRegister(Some(mlb_isa::IntReg::ZERO))]),
        );
        let zero_v = ctx.op(zero_reg).results[0];
        // Keep the get_register ahead of the branch terminator.
        ctx.move_op_before(zero_reg, next);
        rv_cf::build_branch(ctx, body_block, rv_cf::BLT, zero_v, iv_next, body_block, exit_block);
        ctx.erase_op(op);
        erase_if_dead_constant(ctx, lb);
        erase_if_dead_constant(ctx, step);
        erase_if_dead_constant(ctx, ub);
        return Ok(());
    }
    let next = match li_value(ctx, step) {
        Some(c) => ctx.append_op(
            body_block,
            mlb_ir::OpSpec::new(rv::ADDI)
                .operands(vec![iv])
                .attr("imm", Attribute::Int(c))
                .results(vec![iv_ty]),
        ),
        None => ctx.append_op(
            body_block,
            mlb_ir::OpSpec::new(rv::ADD).operands(vec![iv, step]).results(vec![iv_ty]),
        ),
    };
    let iv_next = ctx.op(next).results[0];
    rv_cf::build_branch(ctx, body_block, rv_cf::BLT, iv_next, ub, body_block, exit_block);

    ctx.erase_op(op);
    // Bounds folded away may leave their defining constants dead.
    erase_if_dead_constant(ctx, lb);
    erase_if_dead_constant(ctx, step);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regalloc::allocate_function;
    use mlb_ir::OpSpec;
    use mlb_riscv::emit_module;

    fn setup() -> (Context, DialectRegistry, OpId, mlb_ir::BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        r.register(mlb_ir::OpInfo::new("builtin.module"));
        mlb_riscv::register_all(&mut r);
        let m = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let top = ctx.create_block(ctx.op(m).regions[0], vec![]);
        (ctx, r, m, top)
    }

    #[test]
    fn loop_flattens_and_runs() {
        // Sum the integers 0..10 into a register... via FP: accumulate
        // 1.0 per iteration, then store.
        let (mut ctx, r, m, top) = setup();
        let (func, entry) = rv_func::build_func(&mut ctx, top, "k", &[rv_func::AbiArg::Int]);
        let out = ctx.block_args(entry)[0];
        let lb = rv::li(&mut ctx, entry, 0);
        let ub = rv::li(&mut ctx, entry, 10);
        let step = rv::li(&mut ctx, entry, 1);
        let one_i = rv::li(&mut ctx, entry, 1);
        let one = {
            let o = ctx.append_op(
                entry,
                OpSpec::new(rv::FCVT_D_W).operands(vec![one_i]).results(vec![rv::freg()]),
            );
            ctx.op(o).results[0]
        };
        let init = rv::fp_binary(&mut ctx, entry, rv::FSUB_D, one, one);
        let loop_op =
            rv_scf::build_for(&mut ctx, entry, lb, ub, step, vec![init], |ctx, body, _iv, args| {
                vec![rv::fp_binary(ctx, body, rv::FADD_D, args[0], one)]
            });
        let total = ctx.op(loop_op.0).results[0];
        rv::fp_store(&mut ctx, entry, rv::FSD, total, out, 0);
        rv_func::build_ret(&mut ctx, entry);

        allocate_function(&mut ctx, func).unwrap();
        RvScfToCf.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        assert!(ctx.walk_named(m, rv_scf::FOR).is_empty());

        // Emit and execute on the simulator.
        let asm = emit_module(&ctx, m).unwrap();
        let prog = mlb_sim::assemble(&asm).unwrap();
        let mut machine = mlb_sim::Machine::new();
        machine.call(&prog, "k", &[mlb_isa::TCDM_BASE]).unwrap();
        assert_eq!(machine.read_f64_slice(mlb_isa::TCDM_BASE, 1).unwrap(), vec![10.0]);
    }

    #[test]
    fn nested_loops_flatten_and_run() {
        let (mut ctx, r, m, top) = setup();
        let (func, entry) = rv_func::build_func(&mut ctx, top, "k", &[rv_func::AbiArg::Int]);
        let out = ctx.block_args(entry)[0];
        let lb = rv::li(&mut ctx, entry, 0);
        let ub = rv::li(&mut ctx, entry, 3);
        let step = rv::li(&mut ctx, entry, 1);
        let one_i = rv::li(&mut ctx, entry, 1);
        let one = {
            let o = ctx.append_op(
                entry,
                OpSpec::new(rv::FCVT_D_W).operands(vec![one_i]).results(vec![rv::freg()]),
            );
            ctx.op(o).results[0]
        };
        let init = rv::fp_binary(&mut ctx, entry, rv::FSUB_D, one, one);
        let outer =
            rv_scf::build_for(&mut ctx, entry, lb, ub, step, vec![init], |ctx, body, _iv, args| {
                let inner = rv_scf::build_for(
                    ctx,
                    body,
                    lb,
                    ub,
                    step,
                    vec![args[0]],
                    |ctx, ib, _iv, iargs| vec![rv::fp_binary(ctx, ib, rv::FADD_D, iargs[0], one)],
                );
                vec![ctx.op(inner.0).results[0]]
            });
        let total = ctx.op(outer.0).results[0];
        rv::fp_store(&mut ctx, entry, rv::FSD, total, out, 0);
        rv_func::build_ret(&mut ctx, entry);

        allocate_function(&mut ctx, func).unwrap();
        RvScfToCf.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let asm = emit_module(&ctx, m).unwrap();
        let prog = mlb_sim::assemble(&asm).unwrap();
        let mut machine = mlb_sim::Machine::new();
        machine.call(&prog, "k", &[mlb_isa::TCDM_BASE]).unwrap();
        // 3 x 3 iterations of +1.0.
        assert_eq!(machine.read_f64_slice(mlb_isa::TCDM_BASE, 1).unwrap(), vec![9.0]);
    }
}
