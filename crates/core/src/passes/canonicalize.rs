//! Canonicalization: constant folding, algebraic simplification and
//! single-iteration loop elimination at the `arith`/`scf` level.
//!
//! The paper notes that after unroll-and-jam the now single-iteration
//! outermost loop is removed, "reducing the number of dimensions in the
//! accelerator setup" (Section 4.4) — that cleanup happens here.

use mlb_dialects::{arith, scf};
use mlb_ir::{
    apply_patterns_greedily, Attribute, Context, DialectRegistry, OpId, Pass, PassError,
    RewritePattern,
};

/// The pass object.
#[derive(Debug, Default)]
pub struct Canonicalize;

impl Pass for Canonicalize {
    fn name(&self) -> &'static str {
        "canonicalize"
    }

    fn run(
        &self,
        ctx: &mut Context,
        registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        apply_patterns_greedily(
            ctx,
            registry,
            root,
            &[&FoldIntBinary, &SimplifyIdentity, &InlineSingleIterationLoop],
        )
        .map_err(|e| PassError::new(self.name(), e.to_string()))?;
        // Local CSE: address computations for a load/store pair of the
        // same element are syntactically identical after folding.
        let mut blocks = vec![];
        let mut stack = vec![root];
        while let Some(op) = stack.pop() {
            for &region in &ctx.op(op).regions.clone() {
                for &block in ctx.region_blocks(region).to_vec().iter() {
                    blocks.push(block);
                    stack.extend(ctx.block_ops(block).iter().copied());
                }
            }
        }
        for block in blocks {
            local_cse(ctx, registry, block);
        }
        Ok(())
    }
}

/// Merges structurally identical pure operations within a block.
fn local_cse(ctx: &mut Context, registry: &DialectRegistry, block: mlb_ir::BlockId) {
    let mut seen: std::collections::HashMap<
        (String, Vec<mlb_ir::ValueId>, String),
        mlb_ir::ValueId,
    > = std::collections::HashMap::new();
    for op in ctx.block_ops(block).to_vec() {
        if !ctx.is_alive(op) || !registry.is_pure(&ctx.op(op).name) {
            continue;
        }
        if ctx.op(op).results.len() != 1 || !ctx.op(op).regions.is_empty() {
            continue;
        }
        let key = (
            ctx.op(op).name.clone(),
            ctx.op(op).operands.clone(),
            format!("{:?}", ctx.op(op).attrs),
        );
        let result = ctx.op(op).results[0];
        match seen.get(&key) {
            Some(&canonical) => {
                ctx.replace_all_uses(result, canonical);
                ctx.erase_op(op);
            }
            None => {
                seen.insert(key, result);
            }
        }
    }
}

fn const_int(ctx: &Context, v: mlb_ir::ValueId) -> Option<i64> {
    arith::constant_value(ctx, v).and_then(Attribute::as_int)
}

/// Folds integer/index arithmetic on two constants.
struct FoldIntBinary;

impl RewritePattern for FoldIntBinary {
    fn name(&self) -> &'static str {
        "fold-int-binary"
    }

    fn anchor_names(&self) -> Option<&'static [&'static str]> {
        Some(&arith::INT_BINARY_OPS)
    }

    fn match_and_rewrite(&self, ctx: &mut Context, _r: &DialectRegistry, op: OpId) -> bool {
        let name = ctx.op(op).name.clone();
        if !arith::INT_BINARY_OPS.contains(&name.as_str()) {
            return false;
        }
        let (a, b) = (ctx.op(op).operands[0], ctx.op(op).operands[1]);
        let (Some(ca), Some(cb)) = (const_int(ctx, a), const_int(ctx, b)) else {
            return false;
        };
        let value = match name.as_str() {
            arith::ADDI => ca + cb,
            arith::SUBI => ca - cb,
            arith::MULI => ca * cb,
            _ => return false,
        };
        let ty = ctx.value_type(ctx.op(op).results[0]).clone();
        let folded = ctx.insert_op_before(
            op,
            mlb_ir::OpSpec::new(arith::CONSTANT)
                .attr("value", Attribute::Int(value))
                .results(vec![ty]),
        );
        let new = ctx.op(folded).results[0];
        let old = ctx.op(op).results[0];
        ctx.replace_all_uses(old, new);
        ctx.erase_op(op);
        true
    }
}

/// `x + 0 = x`, `x * 1 = x`, `x * 0 = 0`.
struct SimplifyIdentity;

impl RewritePattern for SimplifyIdentity {
    fn name(&self) -> &'static str {
        "simplify-identity"
    }

    fn anchor_names(&self) -> Option<&'static [&'static str]> {
        Some(&[arith::ADDI, arith::MULI])
    }

    fn match_and_rewrite(&self, ctx: &mut Context, _r: &DialectRegistry, op: OpId) -> bool {
        let name = ctx.op(op).name.clone();
        if name != arith::ADDI && name != arith::MULI {
            return false;
        }
        let (a, b) = (ctx.op(op).operands[0], ctx.op(op).operands[1]);
        let ca = const_int(ctx, a);
        let cb = const_int(ctx, b);
        let old = ctx.op(op).results[0];
        let replacement = match (name.as_str(), ca, cb) {
            (arith::ADDI, Some(0), _) => Some(b),
            (arith::ADDI, _, Some(0)) => Some(a),
            (arith::MULI, Some(1), _) => Some(b),
            (arith::MULI, _, Some(1)) => Some(a),
            (arith::MULI, Some(0), _) => Some(a), // a is the zero constant
            (arith::MULI, _, Some(0)) => Some(b),
            _ => None,
        };
        let Some(new) = replacement else { return false };
        ctx.replace_all_uses(old, new);
        ctx.erase_op(op);
        true
    }
}

/// Inlines `scf.for` loops with a constant single-iteration trip count.
struct InlineSingleIterationLoop;

impl RewritePattern for InlineSingleIterationLoop {
    fn name(&self) -> &'static str {
        "inline-single-iteration-loop"
    }

    fn anchor_names(&self) -> Option<&'static [&'static str]> {
        Some(&[scf::FOR])
    }

    fn match_and_rewrite(&self, ctx: &mut Context, _r: &DialectRegistry, op: OpId) -> bool {
        let Some(for_op) = scf::ForOp::new(ctx, op) else { return false };
        let lb = const_int(ctx, for_op.lower_bound(ctx));
        let ub = const_int(ctx, for_op.upper_bound(ctx));
        let step = const_int(ctx, for_op.step(ctx));
        let (Some(lb), Some(ub), Some(step)) = (lb, ub, step) else { return false };
        if step <= 0 || ub <= lb || (ub - lb + step - 1) / step != 1 {
            return false;
        }
        // Inline the single iteration: iv -> lb value, iter args -> inits.
        let mut map = std::collections::HashMap::new();
        map.insert(for_op.induction_var(ctx), for_op.lower_bound(ctx));
        let inits = for_op.iter_inits(ctx).to_vec();
        for (arg, init) in for_op.iter_args(ctx).to_vec().into_iter().zip(inits) {
            map.insert(arg, init);
        }
        let body = for_op.body(ctx);
        let body_ops = ctx.block_ops(body).to_vec();
        for &bop in &body_ops[..body_ops.len() - 1] {
            let cloned = ctx.clone_op_into(bop, ctx.op(op).parent.unwrap(), &mut map);
            ctx.move_op_before(cloned, op);
        }
        let yield_op = ctx.terminator(body);
        let yields: Vec<mlb_ir::ValueId> =
            ctx.op(yield_op).operands.iter().map(|v| *map.get(v).unwrap_or(v)).collect();
        let results = ctx.op(op).results.clone();
        for (result, value) in results.into_iter().zip(yields) {
            ctx.replace_all_uses(result, value);
        }
        ctx.erase_op(op);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_dialects::{builtin, func};
    use mlb_ir::Type;

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        mlb_dialects::register_all(&mut r);
        r
    }

    #[test]
    fn constants_fold() {
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let (_f, entry) = func::build_func(&mut ctx, top, "f", vec![], vec![Type::Index]);
        let a = arith::constant_index(&mut ctx, entry, 6);
        let b = arith::constant_index(&mut ctx, entry, 7);
        let p = arith::binary(&mut ctx, entry, arith::MULI, a, b);
        let q = arith::binary(&mut ctx, entry, arith::ADDI, p, a);
        func::build_return(&mut ctx, entry, vec![q]);
        Canonicalize.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        // Everything folds into one constant 48 (dead constants removed).
        let consts = ctx.walk_named(m, arith::CONSTANT);
        assert_eq!(consts.len(), 1);
        assert_eq!(ctx.op(consts[0]).attr("value"), Some(&Attribute::Int(48)));
        assert!(ctx.walk_named(m, arith::MULI).is_empty());
    }

    #[test]
    fn identities_simplify() {
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let (_f, entry) =
            func::build_func(&mut ctx, top, "f", vec![Type::Index], vec![Type::Index]);
        let x = ctx.block_args(entry)[0];
        let zero = arith::constant_index(&mut ctx, entry, 0);
        let one = arith::constant_index(&mut ctx, entry, 1);
        let a = arith::binary(&mut ctx, entry, arith::ADDI, x, zero);
        let b = arith::binary(&mut ctx, entry, arith::MULI, a, one);
        func::build_return(&mut ctx, entry, vec![b]);
        Canonicalize.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        // The return operand is the argument itself.
        let ret = ctx.walk_named(m, func::RETURN)[0];
        assert_eq!(ctx.op(ret).operands, vec![x]);
        assert!(ctx.walk_named(m, arith::ADDI).is_empty());
        assert!(ctx.walk_named(m, arith::MULI).is_empty());
    }

    #[test]
    fn single_iteration_loop_inlines() {
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let (_f, entry) = func::build_func(&mut ctx, top, "f", vec![Type::F64], vec![Type::F64]);
        let x = ctx.block_args(entry)[0];
        let lb = arith::constant_index(&mut ctx, entry, 0);
        let ub = arith::constant_index(&mut ctx, entry, 1);
        let step = arith::constant_index(&mut ctx, entry, 1);
        let loop_op =
            scf::build_for(&mut ctx, entry, lb, ub, step, vec![x], |ctx, body, _iv, args| {
                vec![arith::binary(ctx, body, arith::ADDF, args[0], args[0])]
            });
        let result = ctx.op(loop_op.0).results[0];
        func::build_return(&mut ctx, entry, vec![result]);
        Canonicalize.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        assert!(ctx.walk_named(m, scf::FOR).is_empty());
        // The addf survives, now directly on the argument.
        let adds = ctx.walk_named(m, arith::ADDF);
        assert_eq!(adds.len(), 1);
        assert_eq!(ctx.op(adds[0]).operands, vec![x, x]);
    }

    #[test]
    fn multi_iteration_loop_is_kept() {
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let (_f, entry) = func::build_func(&mut ctx, top, "f", vec![], vec![]);
        let lb = arith::constant_index(&mut ctx, entry, 0);
        let ub = arith::constant_index(&mut ctx, entry, 4);
        let step = arith::constant_index(&mut ctx, entry, 1);
        scf::build_for(&mut ctx, entry, lb, ub, step, vec![], |_, _, _, _| vec![]);
        func::build_return(&mut ctx, entry, vec![]);
        Canonicalize.run(&mut ctx, &r, m).unwrap();
        assert_eq!(ctx.walk_named(m, scf::FOR).len(), 1);
    }
}
