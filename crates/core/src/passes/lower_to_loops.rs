//! `convert-memref-stream-to-loops`: lowers each `memref_stream.generic`
//! to an `scf` loop nest, materializing streaming regions around the
//! deepest loop level at which every access pattern fits the SSR
//! hardware (at most [`mlb_isa::SSR_MAX_DIMS`] dimensions after
//! simplification).
//!
//! The schedule is fully determined before this pass runs (Section 3.4):
//! fuse-fill decided the accumulator seeds, scalar replacement decided
//! that results live in registers across the reduction loops, and
//! unroll-and-jam fixed the interleaved innermost dimension. This pass
//! only materializes loops, stream reads/writes and explicit memory
//! operations from that schedule.

use std::collections::HashMap;

use mlb_dialects::{arith, memref, memref_stream, scf};
use mlb_ir::{
    AffineExpr, AffineMap, Attribute, BlockId, Context, DialectRegistry, IteratorType, OpId, Pass,
    PassError, StridePattern, Type, ValueId,
};
use mlb_isa::SSR_MAX_DIMS;

use crate::passes::scalar_replacement::is_scalar_replaced;

/// The pass object. With `streams` disabled every access is an explicit
/// load or store on the base RISC-V ISA (the Table 3 baseline).
#[derive(Debug, Clone)]
pub struct ConvertMemrefStreamToLoops {
    /// Whether to use stream semantic registers for affine accesses.
    pub streams: bool,
}

impl Default for ConvertMemrefStreamToLoops {
    fn default() -> ConvertMemrefStreamToLoops {
        ConvertMemrefStreamToLoops { streams: true }
    }
}

impl Pass for ConvertMemrefStreamToLoops {
    fn name(&self) -> &'static str {
        "convert-memref-stream-to-loops"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        for op in ctx.walk_named(root, memref_stream::GENERIC) {
            if !ctx.is_alive(op) {
                continue;
            }
            let result = lower_generic(ctx, op, self.streams);
            ctx.clear_builder_loc();
            result.map_err(|m| PassError::new(self.name(), m))?;
        }
        Ok(())
    }
}

/// Everything known about one operand of the generic being lowered.
#[derive(Debug, Clone)]
struct OperandPlan {
    value: ValueId,
    map: AffineMap,
    is_output: bool,
    /// Stream block-argument value once the region is built.
    stream: Option<ValueId>,
    streamed: bool,
}

fn lower_generic(ctx: &mut Context, op: OpId, streams: bool) -> Result<(), String> {
    // Loop scaffolding (constants, `scf.for`, streaming regions, index
    // arithmetic) is attributed to the generic op itself; cloned body ops
    // keep their own locations.
    let loc = ctx.effective_loc(op).clone();
    ctx.set_builder_loc(loc);
    let s = memref_stream::StreamGenericOp(op);
    let bounds = s.bounds(ctx);
    let iterators = s.generic().iterator_types(ctx);
    let maps = s.generic().indexing_maps(ctx);
    let num_inputs = s.generic().num_inputs(ctx);
    let outputs: Vec<ValueId> = s.outputs(ctx).to_vec();
    let inits: Vec<ValueId> = s.inits(ctx).to_vec();
    let scalar = is_scalar_replaced(ctx, op);
    let fused = !inits.is_empty();
    let factor = s.interleave_factor(ctx);
    let body_block = s.generic().body(ctx);

    let inter_dims: Vec<usize> =
        (0..iterators.len()).filter(|&d| iterators[d] == IteratorType::Interleaved).collect();
    if inter_dims.len() > 1 {
        return Err("at most one interleaved dimension is supported".to_string());
    }
    if maps.iter().any(|m| !m.is_linear()) {
        return Err(
            "non-linear (floordiv/mod) access maps are not supported by the lowering".to_string()
        );
    }
    let loop_dims: Vec<usize> =
        (0..iterators.len()).filter(|&d| iterators[d] != IteratorType::Interleaved).collect();
    let first_red = loop_dims
        .iter()
        .position(|&d| iterators[d] == IteratorType::Reduction)
        .unwrap_or(loop_dims.len());
    let has_red = first_red < loop_dims.len();
    if has_red && !loop_dims[first_red..].iter().all(|&d| iterators[d] == IteratorType::Reduction) {
        return Err("reduction dimensions must be innermost".to_string());
    }

    // Which output argument positions does the body actually read?
    let body_args = ctx.block_args(body_block).to_vec();
    let out_arg_read: Vec<bool> = (0..outputs.len())
        .map(|o| {
            (0..factor).any(|j| {
                let arg = body_args[(num_inputs + o) * factor + j];
                ctx.walk(op).iter().any(|&inner| ctx.op(inner).operands.contains(&arg))
            })
        })
        .collect();

    // Plan operand streaming.
    let mut plans: Vec<OperandPlan> = Vec::new();
    let mut read_streams = 0usize;
    for (i, &value) in ctx.op(op).operands[..num_inputs + outputs.len()].iter().enumerate() {
        let is_output = i >= num_inputs;
        let map = maps[i].clone();
        let mut streamed = streams && map.is_linear();
        if is_output {
            // Outputs stream only when the memory is write-only: a
            // parallel overwrite that never reads the previous value, or
            // a register-accumulated reduction whose seed comes from a
            // fused fill (the body reading the *accumulator* argument is
            // fine — that value lives in a register).
            let read = out_arg_read[i - num_inputs];
            streamed &= if has_red { scalar && fused } else { !read };
        } else {
            streamed &= read_streams < 2;
            if streamed {
                read_streams += 1;
            }
        }
        plans.push(OperandPlan { value, map, is_output, stream: None, streamed });
    }

    // Dimensions each streamed operand's pattern must cover, in iteration
    // order: the loop dims after `depth`, plus the interleaved dim; for
    // scalar-replaced outputs the reduction dims are excluded (the write
    // happens once per non-reduction point).
    let pattern_dims = |plan: &OperandPlan, depth: usize| -> Vec<usize> {
        let mut dims: Vec<usize> = loop_dims[depth..]
            .iter()
            .copied()
            .filter(|&d| !(plan.is_output && scalar && iterators[d] == IteratorType::Reduction))
            .collect();
        dims.extend(inter_dims.iter().copied());
        dims
    };
    // Choose the outermost placement depth at which all streamed patterns
    // fit the hardware.
    let max_depth = first_red;
    let mut depth = 0;
    loop {
        let fits = plans.iter().filter(|p| p.streamed).all(|p| {
            let dims = pattern_dims(p, depth);
            let elem_size = element_size(ctx, p.value);
            hardware_rank(ctx, p, &dims, &bounds, elem_size) <= SSR_MAX_DIMS
        });
        if fits || depth >= max_depth {
            break;
        }
        depth += 1;
    }
    // Anything still not fitting falls back to explicit memory access.
    for p in &mut plans {
        if p.streamed {
            let dims = pattern_dims(p, depth);
            let elem_size = element_size(ctx, p.value);
            if hardware_rank(ctx, p, &dims, &bounds, elem_size) > SSR_MAX_DIMS {
                p.streamed = false;
            }
        }
    }
    let any_streamed = plans.iter().any(|p| p.streamed);

    // ----- materialize ------------------------------------------------------

    // New IR is appended to the parent block; the generic and everything
    // after it (typically the function terminator) are detached first and
    // the tail re-attached at the end, so plain appends stay in order.
    let parent = ctx.op(op).parent.expect("generic must be attached");
    let pos = ctx.op_position(op);
    let tail: Vec<OpId> = ctx.block_ops(parent)[pos + 1..].to_vec();
    ctx.detach_op(op);
    for &t in &tail {
        ctx.detach_op(t);
    }
    let cursor = Cursor { anchor: op };

    let zero = cursor.constant_index(ctx, parent, 0);
    let one = cursor.constant_index(ctx, parent, 1);

    // dim index values available so far (outer loops).
    let mut dim_values: Vec<Option<ValueId>> = vec![None; iterators.len()];

    let mut nest = NestCtxAlias {
        plans: &mut plans,
        bounds: &bounds,
        iterators: &iterators,
        loop_dims: &loop_dims,
        inter_dims: &inter_dims,
        first_red,
        depth,
        factor,
        scalar,
        has_red,
        num_inputs,
        outputs: &outputs,
        inits: &inits,
        body_block,
        body_args: &body_args,
        out_arg_read: &out_arg_read,
        zero,
        one,
        any_streamed,
        pending: Vec::new(),
    };

    let result = build_outer(ctx, &cursor, parent, &mut nest, &mut dim_values, 0);
    for &t in &tail {
        ctx.move_op_to_end(t, parent);
    }
    ctx.erase_op(op);
    result
}

/// Insertion helper: appends new ops immediately before the anchor op
/// while the anchor is still attached, or at block end otherwise.
struct Cursor {
    anchor: OpId,
}

impl Cursor {
    fn insert(&self, ctx: &mut Context, block: BlockId, spec: mlb_ir::OpSpec) -> OpId {
        // The generic op is detached during lowering, so appending is
        // always correct; the anchor is kept only for diagnostics.
        let _ = self.anchor;
        ctx.append_op(block, spec)
    }

    fn constant_index(&self, ctx: &mut Context, block: BlockId, v: i64) -> ValueId {
        let op = self.insert(
            ctx,
            block,
            mlb_ir::OpSpec::new(arith::CONSTANT)
                .attr("value", Attribute::Int(v))
                .results(vec![Type::Index]),
        );
        ctx.op(op).results[0]
    }
}

fn element_size(ctx: &Context, memref: ValueId) -> i64 {
    match ctx.value_type(memref) {
        Type::MemRef(m) => m.element.size_in_bytes() as i64,
        _ => 8,
    }
}

/// Computes the post-simplification hardware rank of a pattern over
/// `dims` (iteration order) — used only for placement decisions; the
/// actual simplification happens in `convert-to-rv`.
fn hardware_rank(
    ctx: &Context,
    plan: &OperandPlan,
    dims: &[usize],
    bounds: &[i64],
    elem_size: i64,
) -> usize {
    let Type::MemRef(m) = ctx.value_type(plan.value) else { return usize::MAX };
    let strides = m.element_strides();
    // Logical byte stride per iteration dim, innermost first.
    let mut ub: Vec<i64> = Vec::new();
    let mut st: Vec<i64> = Vec::new();
    for &d in dims.iter().rev() {
        let coeffs = plan.map.dim_coefficients(d);
        let stride: i64 = coeffs.iter().zip(&strides).map(|(c, s)| c * s).sum::<i64>() * elem_size;
        ub.push(bounds[d]);
        st.push(stride);
    }
    simplified_rank(&ub, &st)
}

/// Rank after dropping unit dims, folding innermost zero strides into the
/// repeat counter and collapsing contiguous dims (Section 3.2).
pub fn simplified_rank(ub: &[i64], strides: &[i64]) -> usize {
    let mut dims: Vec<(i64, i64)> =
        ub.iter().zip(strides).filter(|(&b, _)| b != 1).map(|(&b, &s)| (b, s)).collect();
    // Innermost zero strides become the repeat counter.
    while let Some(&(_, 0)) = dims.first() {
        dims.remove(0);
    }
    // Collapse contiguous adjacent dims.
    let mut i = 0;
    while i + 1 < dims.len() {
        let (b0, s0) = dims[i];
        let (b1, s1) = dims[i + 1];
        if s1 == s0 * b0 {
            dims[i] = (b0 * b1, s0);
            dims.remove(i + 1);
        } else {
            i += 1;
        }
    }
    dims.len().max(1)
}

#[allow(clippy::too_many_arguments)]
fn build_outer(
    ctx: &mut Context,
    cursor: &Cursor,
    block: BlockId,
    nest: &mut NestCtxAlias<'_>,
    dim_values: &mut [Option<ValueId>],
    level: usize,
) -> Result<(), String> {
    if level < nest.depth {
        let d = nest.loop_dims[level];
        let ub = cursor.constant_index(ctx, block, nest.bounds[d]);
        let (zero, one) = (nest.zero, nest.one);
        let mut result = Ok(());
        scf::build_for(ctx, block, zero, ub, one, vec![], |ctx, body, iv, _| {
            dim_values[d] = Some(iv);
            let inner_cursor = Cursor { anchor: cursor.anchor };
            // Inside a fresh loop body the anchor is not in this block,
            // so the cursor appends — which is what we want.
            result = build_outer(ctx, &inner_cursor, body, nest, dim_values, level + 1);
            dim_values[d] = None;
            vec![]
        });
        return result;
    }

    // Region placement point: create the streaming region (if any
    // operand streams), then the remaining loops inside it.
    if nest.any_streamed {
        build_streaming_region(ctx, cursor, block, nest, dim_values)
    } else {
        build_mid(ctx, cursor, block, nest, dim_values)
    }
}

// The borrow-heavy nest context: declared here to keep `lower_generic`
// readable.
use nest_ctx::NestCtxAlias;
mod nest_ctx {
    use super::*;

    pub struct NestCtxAlias<'a> {
        pub plans: &'a mut Vec<OperandPlan>,
        pub bounds: &'a [i64],
        pub iterators: &'a [IteratorType],
        pub loop_dims: &'a [usize],
        pub inter_dims: &'a [usize],
        pub first_red: usize,
        pub depth: usize,
        pub factor: usize,
        pub scalar: bool,
        pub has_red: bool,
        pub num_inputs: usize,
        pub outputs: &'a [ValueId],
        pub inits: &'a [ValueId],
        pub body_block: BlockId,
        pub body_args: &'a [ValueId],
        pub out_arg_read: &'a [bool],
        pub zero: ValueId,
        pub one: ValueId,
        pub any_streamed: bool,
        /// Accumulator hand-off between `emit_point` and
        /// `build_red_level`: the next iteration-argument values the
        /// innermost point produced. Carried in the nest context (not
        /// ambient state) so concurrent lowerings never interleave.
        pub pending: Vec<ValueId>,
    }
}

fn build_streaming_region(
    ctx: &mut Context,
    cursor: &Cursor,
    block: BlockId,
    nest: &mut NestCtxAlias<'_>,
    dim_values: &mut [Option<ValueId>],
) -> Result<(), String> {
    // Gather streamed memrefs, patterns, and offsets.
    let mut in_memrefs = Vec::new();
    let mut out_memrefs = Vec::new();
    let mut patterns = Vec::new();
    let mut offsets = Vec::new();
    let mut stream_slots: Vec<usize> = Vec::new(); // plan index per stream
    for pass in 0..2 {
        for (pi, plan) in nest.plans.iter().enumerate() {
            if !plan.streamed || (plan.is_output as usize) != pass {
                continue;
            }
            let dims: Vec<usize> = nest.loop_dims[nest.depth..]
                .iter()
                .copied()
                .filter(|&d| {
                    !(plan.is_output && nest.scalar && nest.iterators[d] == IteratorType::Reduction)
                })
                .chain(nest.inter_dims.iter().copied())
                .collect();
            // Pattern map: original map with outer dims zeroed and the
            // remaining dims renumbered.
            let selector = AffineMap::new(dims.len(), 0, {
                let mut subs = vec![AffineExpr::Const(0); nest.iterators.len()];
                for (k, &d) in dims.iter().enumerate() {
                    subs[d] = AffineExpr::Dim(k);
                }
                subs
            });
            let map = plan.map.compose(&selector);
            let ub: Vec<i64> = dims.iter().map(|&d| nest.bounds[d]).collect();
            patterns.push(StridePattern::new(ub, map));
            if plan.is_output {
                out_memrefs.push(plan.value);
            } else {
                in_memrefs.push(plan.value);
            }
            stream_slots.push(pi);
            // Offset in elements from the outer loop IVs.
            let outer_indices = emit_map_indices(
                ctx,
                cursor,
                block,
                &plan.map,
                &(0..nest.iterators.len())
                    .map(|d| {
                        if nest.loop_dims[..nest.depth].contains(&d) {
                            dim_values[d]
                        } else {
                            None
                        }
                    })
                    .collect::<Vec<_>>(),
                nest.zero,
            );
            let Type::MemRef(m) = ctx.value_type(plan.value).clone() else {
                return Err("streamed operand is not a memref".into());
            };
            let strides = m.element_strides();
            let mut offset = nest.zero;
            for (idx, stride) in outer_indices.iter().zip(&strides) {
                let c = cursor.constant_index(ctx, block, *stride);
                let term = emit_binary(ctx, cursor, block, arith::MULI, *idx, c, Type::Index);
                offset = emit_binary(ctx, cursor, block, arith::ADDI, offset, term, Type::Index);
            }
            offsets.push(offset);
        }
    }

    let num_region_inputs = in_memrefs.len();
    let mut operands = in_memrefs;
    operands.extend(out_memrefs);
    operands.extend(offsets);
    let region_op = cursor.insert(
        ctx,
        block,
        mlb_ir::OpSpec::new(memref_stream::STREAMING_REGION)
            .operands(operands)
            .attr(mlb_dialects::structured::NUM_INPUTS, Attribute::Int(num_region_inputs as i64))
            .attr(
                memref_stream::PATTERNS,
                Attribute::Array(patterns.into_iter().map(Attribute::StridePattern).collect()),
            )
            .regions(1),
    );
    let arg_types: Vec<Type> = stream_slots
        .iter()
        .map(|&pi| {
            let plan = &nest.plans[pi];
            let elem = mlb_dialects::structured::body_element_type(ctx, plan.value);
            if plan.is_output {
                Type::WritableStream(Box::new(elem))
            } else {
                Type::ReadableStream(Box::new(elem))
            }
        })
        .collect();
    let region_body = ctx.create_block(ctx.op(region_op).regions[0], arg_types);
    for (k, &pi) in stream_slots.iter().enumerate() {
        nest.plans[pi].stream = Some(ctx.block_args(region_body)[k]);
    }
    let inner_cursor = Cursor { anchor: cursor.anchor };
    build_mid(ctx, &inner_cursor, region_body, nest, dim_values)
}

/// Builds the loops between the streaming region and the reduction nest,
/// then the computation itself.
fn build_mid(
    ctx: &mut Context,
    cursor: &Cursor,
    block: BlockId,
    nest: &mut NestCtxAlias<'_>,
    dim_values: &mut [Option<ValueId>],
) -> Result<(), String> {
    build_mid_level(ctx, cursor, block, nest, dim_values, nest.depth)
}

fn build_mid_level(
    ctx: &mut Context,
    cursor: &Cursor,
    block: BlockId,
    nest: &mut NestCtxAlias<'_>,
    dim_values: &mut [Option<ValueId>],
    level: usize,
) -> Result<(), String> {
    let stop = if nest.scalar && nest.has_red { nest.first_red } else { nest.loop_dims.len() };
    if level < stop {
        let d = nest.loop_dims[level];
        let lb = nest.zero;
        let step = nest.one;
        let ub = cursor.constant_index(ctx, block, nest.bounds[d]);
        let mut result = Ok(());
        scf::build_for(ctx, block, lb, ub, step, vec![], |ctx, body, iv, _| {
            dim_values[d] = Some(iv);
            let inner = Cursor { anchor: cursor.anchor };
            result = build_mid_level(ctx, &inner, body, nest, dim_values, level + 1);
            dim_values[d] = None;
            vec![]
        });
        return result;
    }

    if nest.scalar && nest.has_red {
        build_reduction(ctx, cursor, block, nest, dim_values)
    } else {
        // Every iteration point loads, computes and stores.
        emit_point(ctx, cursor, block, nest, dim_values, None)
    }
}

/// Builds the accumulator-carrying reduction loop nest.
fn build_reduction(
    ctx: &mut Context,
    cursor: &Cursor,
    block: BlockId,
    nest: &mut NestCtxAlias<'_>,
    dim_values: &mut [Option<ValueId>],
) -> Result<(), String> {
    // Initial accumulator values, one per (output, copy).
    let mut accs: Vec<ValueId> = Vec::new();
    for (o, &output) in nest.outputs.iter().enumerate() {
        for j in 0..nest.factor {
            let init = if let Some(&init) = nest.inits.first() {
                // Fused fill: clone the constant per accumulator so each
                // register chain seeds independently.
                let def = ctx
                    .defining_op(init)
                    .filter(|&d| ctx.op(d).name == arith::CONSTANT)
                    .ok_or("fused init must be an arith.constant")?;
                let mut map = HashMap::new();
                let cloned = ctx.clone_op_into(def, block, &mut map);
                ctx.op(cloned).results[0]
            } else {
                // Load the previous contents as the seed.
                let plan = nest.plans[nest.num_inputs + o].clone();
                let indices = point_indices(ctx, cursor, block, nest, &plan.map, dim_values, j);
                emit_load(ctx, cursor, block, output, indices)
            };
            accs.push(init);
        }
    }

    // Nest of reduction loops (all carrying the accumulators). When no
    // remaining operand addresses memory through the reduction indices
    // (streams handle all the walking), the whole reduction nest merges
    // into a single counted loop — turning e.g. the two 3-iteration
    // window loops of a convolution into one 9-iteration hardware loop.
    let red_dims: Vec<usize> = nest.loop_dims[nest.first_red..].to_vec();
    let ivs_unused = nest.plans.iter().all(|p| {
        p.streamed
            || red_dims
                .iter()
                .all(|&d| p.map.is_linear() && p.map.dim_coefficients(d).iter().all(|&c| c == 0))
    });
    let finals = if ivs_unused && red_dims.len() > 1 {
        let merged: i64 = red_dims.iter().map(|&d| nest.bounds[d]).product();
        let lb = nest.zero;
        let step = nest.one;
        let ub = cursor.constant_index(ctx, block, merged);
        let mut inner_result = Ok(());
        let for_op = scf::build_for(ctx, block, lb, ub, step, accs, |ctx, body, _iv, iter_args| {
            let inner = Cursor { anchor: cursor.anchor };
            if let Err(e) = emit_point(ctx, &inner, body, nest, dim_values, Some(iter_args)) {
                inner_result = Err(e);
            }
            take_pending(nest)
        });
        inner_result?;
        ctx.op(for_op.0).results.clone()
    } else {
        build_red_level(ctx, cursor, block, nest, dim_values, &red_dims, accs)?
    };

    // Write the final accumulators once per point.
    for (o, &output) in nest.outputs.iter().enumerate() {
        let plan = nest.plans[nest.num_inputs + o].clone();
        for j in 0..nest.factor {
            let value = finals[o * nest.factor + j];
            if plan.streamed {
                let stream = plan.stream.expect("stream arg");
                cursor.insert(
                    ctx,
                    block,
                    mlb_ir::OpSpec::new(memref_stream::WRITE).operands(vec![value, stream]),
                );
            } else {
                let indices = point_indices(ctx, cursor, block, nest, &plan.map, dim_values, j);
                emit_store(ctx, cursor, block, value, output, indices);
            }
        }
    }
    Ok(())
}

fn build_red_level(
    ctx: &mut Context,
    cursor: &Cursor,
    block: BlockId,
    nest: &mut NestCtxAlias<'_>,
    dim_values: &mut [Option<ValueId>],
    red_dims: &[usize],
    accs: Vec<ValueId>,
) -> Result<Vec<ValueId>, String> {
    let Some((&d, rest)) = red_dims.split_first() else {
        unreachable!("reduction nest always has at least one dim");
    };
    let lb = nest.zero;
    let step = nest.one;
    let ub = cursor.constant_index(ctx, block, nest.bounds[d]);
    let mut result: Result<(), String> = Ok(());
    let for_op = scf::build_for(ctx, block, lb, ub, step, accs, |ctx, body, iv, iter_args| {
        dim_values[d] = Some(iv);
        let inner = Cursor { anchor: cursor.anchor };
        let yields = if rest.is_empty() {
            let mut out = Vec::new();
            match emit_point(ctx, &inner, body, nest, dim_values, Some(iter_args)) {
                Ok(()) => {}
                Err(e) => {
                    result = Err(e);
                }
            }
            // emit_point (accumulating form) records the next accumulator
            // values in nest via return channel below; we instead call a
            // dedicated accumulate variant:
            out.extend(take_pending(nest));
            out
        } else {
            match build_red_level(ctx, &inner, body, nest, dim_values, rest, iter_args.to_vec()) {
                Ok(v) => v,
                Err(e) => {
                    result = Err(e);
                    iter_args.to_vec()
                }
            }
        };
        dim_values[d] = None;
        yields
    });
    result?;
    Ok(ctx.op(for_op.0).results.clone())
}

// Accumulator hand-off between emit_point and build_red_level, carried
// in the nest context so the lowering is re-entrant.
fn take_pending(nest: &mut NestCtxAlias<'_>) -> Vec<ValueId> {
    std::mem::take(&mut nest.pending)
}

fn set_pending(nest: &mut NestCtxAlias<'_>, values: Vec<ValueId>) {
    nest.pending = values;
}

/// Emits one iteration point: input reads/loads, the inlined body, and
/// either accumulator updates (`iter_args` given) or output stores.
fn emit_point(
    ctx: &mut Context,
    cursor: &Cursor,
    block: BlockId,
    nest: &mut NestCtxAlias<'_>,
    dim_values: &mut [Option<ValueId>],
    iter_args: Option<&[ValueId]>,
) -> Result<(), String> {
    let f = nest.factor;
    let mut mapping: HashMap<ValueId, ValueId> = HashMap::new();

    // Inputs: stream pops must occur in interleave order per stream.
    for i in 0..nest.num_inputs {
        let plan = nest.plans[i].clone();
        for j in 0..f {
            let value = if plan.streamed {
                let stream = plan.stream.expect("stream arg");
                let elem = mlb_dialects::structured::body_element_type(ctx, plan.value);
                let read = cursor.insert(
                    ctx,
                    block,
                    mlb_ir::OpSpec::new(memref_stream::READ)
                        .operands(vec![stream])
                        .results(vec![elem]),
                );
                ctx.op(read).results[0]
            } else {
                let indices = point_indices(ctx, cursor, block, nest, &plan.map, dim_values, j);
                emit_load(ctx, cursor, block, plan.value, indices)
            };
            mapping.insert(nest.body_args[i * f + j], value);
        }
    }
    // Output arguments: accumulators or loaded previous values.
    for (o, &output) in nest.outputs.iter().enumerate() {
        let plan = nest.plans[nest.num_inputs + o].clone();
        for j in 0..f {
            let arg = nest.body_args[(nest.num_inputs + o) * f + j];
            if let Some(iter_args) = iter_args {
                mapping.insert(arg, iter_args[o * f + j]);
            } else if nest.out_arg_read[o] {
                let indices = point_indices(ctx, cursor, block, nest, &plan.map, dim_values, j);
                let value = emit_load(ctx, cursor, block, output, indices);
                mapping.insert(arg, value);
            }
        }
    }

    // Inline the body computation.
    let body_ops: Vec<OpId> = ctx.block_ops(nest.body_block).to_vec();
    for &bop in &body_ops[..body_ops.len() - 1] {
        ctx.clone_op_into(bop, block, &mut mapping);
    }
    let yield_op = ctx.terminator(nest.body_block);
    let yielded: Vec<ValueId> =
        ctx.op(yield_op).operands.iter().map(|v| *mapping.get(v).unwrap_or(v)).collect();

    if iter_args.is_some() {
        set_pending(nest, yielded);
        return Ok(());
    }

    // Direct write-out per point.
    for (o, &output) in nest.outputs.iter().enumerate() {
        let plan = nest.plans[nest.num_inputs + o].clone();
        for j in 0..f {
            let value = yielded[o * f + j];
            if plan.streamed {
                let stream = plan.stream.expect("stream arg");
                cursor.insert(
                    ctx,
                    block,
                    mlb_ir::OpSpec::new(memref_stream::WRITE).operands(vec![value, stream]),
                );
            } else {
                let indices = point_indices(ctx, cursor, block, nest, &plan.map, dim_values, j);
                emit_store(ctx, cursor, block, value, output, indices);
            }
        }
    }
    Ok(())
}

/// Index values for one operand at the current point, with the
/// interleaved dimension fixed to copy `j`.
fn point_indices(
    ctx: &mut Context,
    cursor: &Cursor,
    block: BlockId,
    nest: &NestCtxAlias<'_>,
    map: &AffineMap,
    dim_values: &[Option<ValueId>],
    j: usize,
) -> Vec<ValueId> {
    let mut values: Vec<Option<ValueId>> = dim_values.to_vec();
    for &d in nest.inter_dims {
        values[d] = Some(cursor.constant_index(ctx, block, j as i64));
    }
    emit_map_indices(ctx, cursor, block, map, &values, nest.zero)
}

/// Materializes each result of `map` as an index value.
fn emit_map_indices(
    ctx: &mut Context,
    cursor: &Cursor,
    block: BlockId,
    map: &AffineMap,
    dim_values: &[Option<ValueId>],
    zero: ValueId,
) -> Vec<ValueId> {
    map.results.iter().map(|e| emit_expr(ctx, cursor, block, e, dim_values, zero)).collect()
}

fn emit_expr(
    ctx: &mut Context,
    cursor: &Cursor,
    block: BlockId,
    expr: &AffineExpr,
    dim_values: &[Option<ValueId>],
    zero: ValueId,
) -> ValueId {
    match expr {
        AffineExpr::Const(c) => cursor.constant_index(ctx, block, *c),
        AffineExpr::Dim(d) => dim_values[*d].unwrap_or(zero),
        AffineExpr::Sym(_) => zero,
        AffineExpr::Add(a, b) => {
            let va = emit_expr(ctx, cursor, block, a, dim_values, zero);
            let vb = emit_expr(ctx, cursor, block, b, dim_values, zero);
            emit_binary(ctx, cursor, block, arith::ADDI, va, vb, Type::Index)
        }
        AffineExpr::Mul(a, b) => {
            let va = emit_expr(ctx, cursor, block, a, dim_values, zero);
            let vb = emit_expr(ctx, cursor, block, b, dim_values, zero);
            emit_binary(ctx, cursor, block, arith::MULI, va, vb, Type::Index)
        }
        AffineExpr::FloorDiv(..) | AffineExpr::Mod(..) => {
            unreachable!("non-linear maps are rejected before lowering")
        }
    }
}

fn emit_binary(
    ctx: &mut Context,
    cursor: &Cursor,
    block: BlockId,
    name: &str,
    a: ValueId,
    b: ValueId,
    ty: Type,
) -> ValueId {
    let op =
        cursor.insert(ctx, block, mlb_ir::OpSpec::new(name).operands(vec![a, b]).results(vec![ty]));
    ctx.op(op).results[0]
}

fn emit_load(
    ctx: &mut Context,
    cursor: &Cursor,
    block: BlockId,
    memref_value: ValueId,
    indices: Vec<ValueId>,
) -> ValueId {
    let elem = match ctx.value_type(memref_value) {
        Type::MemRef(m) => (*m.element).clone(),
        _ => unreachable!("load from non-memref"),
    };
    let mut operands = vec![memref_value];
    operands.extend(indices);
    let op = cursor.insert(
        ctx,
        block,
        mlb_ir::OpSpec::new(memref::LOAD).operands(operands).results(vec![elem]),
    );
    ctx.op(op).results[0]
}

fn emit_store(
    ctx: &mut Context,
    cursor: &Cursor,
    block: BlockId,
    value: ValueId,
    memref_value: ValueId,
    indices: Vec<ValueId>,
) {
    let mut operands = vec![value, memref_value];
    operands.extend(indices);
    cursor.insert(ctx, block, mlb_ir::OpSpec::new(memref::STORE).operands(operands));
}

#[cfg(test)]
mod tests {
    use super::simplified_rank;

    #[test]
    fn unit_dims_do_not_count() {
        assert_eq!(simplified_rank(&[1, 1, 4], &[0, 0, 8]), 1);
        assert_eq!(simplified_rank(&[1], &[0]), 1);
    }

    #[test]
    fn innermost_zero_strides_become_repeat() {
        // [5 x stride 0, 200 x stride 8]: the zero-stride innermost dim
        // folds into the repeat counter.
        assert_eq!(simplified_rank(&[5, 200], &[0, 8]), 1);
        // A zero stride in the middle cannot fold.
        assert_eq!(simplified_rank(&[4, 5, 3], &[8, 0, 64]), 3);
    }

    #[test]
    fn contiguous_dims_collapse() {
        // inner 5 x 8B then outer stride 40 == 5*8: one dimension.
        assert_eq!(simplified_rank(&[5, 200], &[8, 40]), 1);
        // Non-contiguous outer stride stays.
        assert_eq!(simplified_rank(&[5, 200], &[8, 48]), 2);
        // Chains collapse transitively.
        assert_eq!(simplified_rank(&[2, 4, 8], &[8, 16, 64]), 1);
    }

    #[test]
    fn window_patterns_keep_their_rank() {
        // Conv window [wi(4):8, kw(3):8, kh(3):R] — wi/kw do not collapse
        // because 8 != 8*4.
        assert_eq!(simplified_rank(&[4, 3, 3], &[8, 8, 384]), 3);
    }
}
