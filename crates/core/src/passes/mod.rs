//! The progressive lowering passes of the multi-level backend
//! (Section 3.4, Figure 5).

pub mod canonicalize;
pub mod convert_linalg;
pub mod convert_to_rv;
pub mod dce;
pub mod distribute_to_cores;
pub mod fuse_elementwise;
pub mod fuse_fill;
pub mod loop_opt;
pub mod lower_streaming;
pub mod lower_to_loops;
pub mod mem_forward;
pub mod peephole;
pub mod rv_scf_to_cf;
pub mod rv_scf_to_frep;
pub mod scalar_replacement;
pub mod seq_unroll;
pub mod unroll_and_jam;
