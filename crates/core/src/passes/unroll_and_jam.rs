//! `memref-stream-unroll-and-jam`: interleaves several iterations of a
//! parallel dimension in the generic body (Section 3.4, Figure 7),
//! trading code size and register pressure for independent FPU
//! instruction chains that hide the 3-stage pipeline latency.
//!
//! The unroll factor is selected automatically from the dimension bound
//! and the FPU pipeline depth ([`choose_unroll_factor`]). The chosen
//! dimension is split into an outer loop dimension and an `interleaved`
//! dimension placed innermost; reduction dimensions are moved between
//! them so accumulators keep a well-defined scope.

use std::collections::HashMap;

use mlb_dialects::{memref_stream, structured};
use mlb_ir::{
    AffineExpr, AffineMap, Attribute, Context, DialectRegistry, IteratorType, OpId, Pass,
    PassError, Type, ValueId,
};
use mlb_isa::FPU_PIPELINE_DEPTH;

/// The pass object. `factor_override` forces a specific interleave
/// factor (used by the design-choice ablation benches); `None` selects
/// automatically from the FPU pipeline depth.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemrefStreamUnrollAndJam {
    /// Forced unroll factor, when set and dividing the bound.
    pub factor_override: Option<i64>,
}

impl Pass for MemrefStreamUnrollAndJam {
    fn name(&self) -> &'static str {
        "memref-stream-unroll-and-jam"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        for op in ctx.walk_named(root, memref_stream::GENERIC) {
            if !ctx.is_alive(op) {
                continue;
            }
            apply(ctx, op, self.factor_override);
            ctx.clear_builder_loc();
        }
        Ok(())
    }
}

/// Selects the unroll factor for a parallel dimension of size `bound`.
///
/// The FPU pipeline has [`FPU_PIPELINE_DEPTH`] stages, so at least
/// `depth + 1` independent chains are needed to avoid stalls. Preference
/// order: the smallest divisor of `bound` that is at least `depth + 1`
/// and at most 8, otherwise the largest divisor larger than 1 (up to 8),
/// otherwise 1 (no unrolling possible).
///
/// ```
/// use mlb_core::passes::unroll_and_jam::choose_unroll_factor;
/// assert_eq!(choose_unroll_factor(5), 5);
/// assert_eq!(choose_unroll_factor(200), 4);
/// assert_eq!(choose_unroll_factor(16), 4);
/// assert_eq!(choose_unroll_factor(9), 3);
/// assert_eq!(choose_unroll_factor(1), 1);
/// ```
pub fn choose_unroll_factor(bound: i64) -> i64 {
    let min = FPU_PIPELINE_DEPTH as i64 + 1;
    let divisors: Vec<i64> = (2..=8).filter(|d| bound % d == 0 && *d <= bound).collect();
    if let Some(&f) = divisors.iter().find(|&&d| d >= min) {
        return f;
    }
    divisors.last().copied().unwrap_or(1)
}

/// Whether a generic body contains an intra-element dependency chain:
/// some compute op consuming another compute op's result. Bodies with
/// region-bearing ops are conservatively reported chain-free (the
/// op-major replication below only clones flat arith ops).
fn body_has_chain(ctx: &Context, body: mlb_ir::BlockId) -> bool {
    let ops = ctx.block_ops(body).to_vec();
    if ops.len() < 3 {
        // Fewer than two compute ops plus the yield: nothing to chain.
        return false;
    }
    if ops.iter().any(|&o| !ctx.op(o).regions.is_empty()) {
        return false;
    }
    ops[..ops.len() - 1].iter().any(|&o| {
        ctx.op(o).operands.iter().any(|&v| {
            matches!(ctx.value_kind(v),
                mlb_ir::ValueKind::OpResult { op: def, .. } if ops.contains(&def))
        })
    })
}

fn apply(ctx: &mut Context, op: OpId, factor_override: Option<i64>) {
    let loc = ctx.effective_loc(op).clone();
    ctx.set_builder_loc(loc);
    let s = memref_stream::StreamGenericOp(op);
    let iterators = s.generic().iterator_types(ctx);
    let bounds = s.bounds(ctx);
    // One interleaved dimension at a time is supported.
    if iterators.contains(&IteratorType::Interleaved) {
        return;
    }
    let has_red = iterators.contains(&IteratorType::Reduction);
    // Reduction kernels always stall on the accumulator chain. A
    // parallel-only generic stalls only when its body chains dependent
    // ops on the same element — the shape element-wise fusion produces
    // (e.g. `max(add(x, y), 0)`); single-op bodies pipeline freely and
    // stay untouched.
    if !has_red && !body_has_chain(ctx, s.generic().body(ctx)) {
        return;
    }
    // The last parallel dimension is the natural interleave candidate:
    // its stride in the output is innermost.
    let Some(dim) = iterators.iter().rposition(|&it| it == IteratorType::Parallel) else {
        return;
    };
    let factor = match factor_override {
        Some(f) if f >= 1 && bounds[dim] % f == 0 => f,
        _ => choose_unroll_factor(bounds[dim]),
    };
    if factor <= 1 {
        return;
    }

    let n = iterators.len();
    // New dimension order: parallel dims (with the split dim's outer
    // part in place, dropped when fully unrolled), then reductions, then
    // the interleaved inner part.
    let full = factor == bounds[dim];
    let mut new_bounds = Vec::new();
    let mut new_iters = Vec::new();
    // old dim -> expression over new dims.
    let mut subs: Vec<AffineExpr> = vec![AffineExpr::Const(0); n];
    for (d, &it) in iterators.iter().enumerate() {
        if it != IteratorType::Parallel {
            continue;
        }
        if d == dim {
            if !full {
                subs[d] = AffineExpr::Dim(new_bounds.len()); // placeholder, fixed below
                new_bounds.push(bounds[d] / factor);
                new_iters.push(IteratorType::Parallel);
            }
        } else {
            subs[d] = AffineExpr::Dim(new_bounds.len());
            new_bounds.push(bounds[d]);
            new_iters.push(IteratorType::Parallel);
        }
    }
    let outer_index = if full {
        None
    } else {
        // Position assigned above is correct only if no reductions were
        // interleaved before it; recompute by scanning.
        let mut idx = 0;
        let mut found = None;
        for (d, &it) in iterators.iter().enumerate() {
            if it == IteratorType::Parallel {
                if d == dim {
                    found = Some(idx);
                }
                idx += 1;
            }
        }
        found
    };
    for (d, &it) in iterators.iter().enumerate() {
        if it == IteratorType::Reduction {
            subs[d] = AffineExpr::Dim(new_bounds.len());
            new_bounds.push(bounds[d]);
            new_iters.push(IteratorType::Reduction);
        }
    }
    let inner_index = new_bounds.len();
    new_bounds.push(factor);
    new_iters.push(IteratorType::Interleaved);
    // The split dimension maps to outer * factor + inner.
    subs[dim] = match outer_index {
        Some(o) => AffineExpr::Dim(o).mul_const(factor).add(AffineExpr::Dim(inner_index)),
        None => AffineExpr::Dim(inner_index),
    };

    // Rewrite the indexing maps over the new dimension space.
    let old_maps = s.generic().indexing_maps(ctx);
    let selector = AffineMap::new(new_bounds.len(), 0, subs);
    let new_maps: Vec<AffineMap> = old_maps.iter().map(|m| m.compose(&selector)).collect();

    // Build the replacement op with a body replicated `factor` times.
    let old = ctx.op(op).clone();
    let mut attrs = old.attrs.clone();
    attrs.insert(
        structured::INDEXING_MAPS.to_string(),
        Attribute::Array(new_maps.into_iter().map(Attribute::Map).collect()),
    );
    attrs.insert(structured::ITERATOR_TYPES.to_string(), Attribute::Iterators(new_iters));
    attrs.insert(structured::BOUNDS.to_string(), Attribute::DenseI64(new_bounds));
    let spec = mlb_ir::OpSpec {
        name: memref_stream::GENERIC.to_string(),
        operands: old.operands.clone(),
        result_types: vec![],
        attrs,
        num_regions: 1,
        successors: vec![],
        loc: ctx.op(op).loc.clone(),
    };
    let new = ctx.insert_op_before(op, spec);

    let old_body = s.generic().body(ctx);
    let old_args = ctx.block_args(old_body).to_vec();
    let num_operands = old_args.len(); // one per non-init operand before unrolling
    let f = factor as usize;
    // New args: for operand i, copies j=0..f at index i*f + j.
    let arg_types: Vec<Type> =
        old_args.iter().flat_map(|&a| std::iter::repeat_n(ctx.value_type(a).clone(), f)).collect();
    let new_body = ctx.create_block(ctx.op(new).regions[0], arg_types);
    let old_yield = ctx.terminator(old_body);
    let old_yield_operands = ctx.op(old_yield).operands.clone();
    let mut new_yields: Vec<Vec<ValueId>> = vec![Vec::new(); old_yield_operands.len()];
    if has_red {
        for j in 0..f {
            let mut map: HashMap<ValueId, ValueId> = HashMap::new();
            for (i, &a) in old_args.iter().enumerate() {
                map.insert(a, ctx.block_args(new_body)[i * f + j]);
            }
            ctx.clone_block_ops(old_body, new_body, &mut map, true);
            for (k, v) in old_yield_operands.iter().enumerate() {
                new_yields[k].push(*map.get(v).unwrap_or(v));
            }
        }
    } else {
        // Parallel chained bodies are replicated op-major (all copies of
        // op 0, then all copies of op 1, ...): a dependent pair ends up
        // `factor` instructions apart, which is what actually hides the
        // FPU latency — copy-major order would keep dependent ops
        // adjacent and stall exactly as before.
        let mut maps: Vec<HashMap<ValueId, ValueId>> = (0..f)
            .map(|j| {
                old_args
                    .iter()
                    .enumerate()
                    .map(|(i, &a)| (a, ctx.block_args(new_body)[i * f + j]))
                    .collect()
            })
            .collect();
        let body_ops = ctx.block_ops(old_body).to_vec();
        for &o in &body_ops[..body_ops.len() - 1] {
            for map in maps.iter_mut() {
                let old_op = ctx.op(o).clone();
                let operands: Vec<ValueId> =
                    old_op.operands.iter().map(|v| *map.get(v).unwrap_or(v)).collect();
                let result_types: Vec<Type> =
                    old_op.results.iter().map(|&r| ctx.value_type(r).clone()).collect();
                let spec = mlb_ir::OpSpec {
                    name: old_op.name.clone(),
                    operands,
                    result_types,
                    attrs: old_op.attrs.clone(),
                    num_regions: 0,
                    successors: vec![],
                    loc: old_op.loc.clone(),
                };
                let cloned = ctx.append_op(new_body, spec);
                let new_results = ctx.op(cloned).results.clone();
                for (i, &r) in old_op.results.iter().enumerate() {
                    map.insert(r, new_results[i]);
                }
            }
        }
        for map in &maps {
            for (k, v) in old_yield_operands.iter().enumerate() {
                new_yields[k].push(*map.get(v).unwrap_or(v));
            }
        }
    }
    // Yield groups copies per output: out0 j0..j(f-1), out1 j0.. etc.
    let yields: Vec<ValueId> = new_yields.into_iter().flatten().collect();
    ctx.append_op(new_body, mlb_ir::OpSpec::new(memref_stream::YIELD).operands(yields));
    let _ = num_operands;
    ctx.erase_op(op);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::convert_linalg::ConvertLinalgToMemrefStream;
    use mlb_dialects::{arith, builtin, func, linalg};

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        mlb_dialects::register_all(&mut r);
        r
    }

    /// MatMul(M=1, N, K) with the classic [M, N, K] iteration order.
    fn build_matmul(ctx: &mut Context, m_: i64, n: i64, k: i64) -> OpId {
        let (module, top) = builtin::build_module(ctx);
        let a_ty = Type::memref(vec![m_, k], Type::F64);
        let b_ty = Type::memref(vec![k, n], Type::F64);
        let c_ty = Type::memref(vec![m_, n], Type::F64);
        let (_f, entry) = func::build_func(ctx, top, "matmul", vec![a_ty, b_ty, c_ty], vec![]);
        let a = ctx.block_args(entry)[0];
        let b = ctx.block_args(entry)[1];
        let c = ctx.block_args(entry)[2];
        let a_map = AffineMap::projection(3, &[0, 2]);
        let b_map = AffineMap::projection(3, &[2, 1]);
        let c_map = AffineMap::projection(3, &[0, 1]);
        linalg::build_generic(
            ctx,
            entry,
            vec![a, b],
            vec![c],
            vec![a_map, b_map, c_map],
            vec![IteratorType::Parallel, IteratorType::Parallel, IteratorType::Reduction],
            None,
            |ctx, body, args| {
                let p = arith::binary(ctx, body, arith::MULF, args[0], args[1]);
                vec![arith::binary(ctx, body, arith::ADDF, p, args[2])]
            },
        );
        func::build_return(ctx, entry, vec![]);
        module
    }

    #[test]
    fn factor_selection() {
        assert_eq!(choose_unroll_factor(4), 4);
        assert_eq!(choose_unroll_factor(5), 5);
        assert_eq!(choose_unroll_factor(8), 4);
        assert_eq!(choose_unroll_factor(200), 4);
        assert_eq!(choose_unroll_factor(6), 6);
        assert_eq!(choose_unroll_factor(7), 7);
        assert_eq!(choose_unroll_factor(9), 3);
        assert_eq!(choose_unroll_factor(2), 2);
        assert_eq!(choose_unroll_factor(1), 1);
        assert_eq!(choose_unroll_factor(11), 1);
    }

    #[test]
    fn matmul_fully_interleaves_small_n() {
        let mut ctx = Context::new();
        let r = registry();
        let m = build_matmul(&mut ctx, 1, 5, 200);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        MemrefStreamUnrollAndJam::default().run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let g = ctx.walk_named(m, memref_stream::GENERIC)[0];
        let s = memref_stream::StreamGenericOp(g);
        // Figure 7: bounds [1, 200, 5], iterators [parallel, reduction,
        // interleaved].
        assert_eq!(s.bounds(&ctx), vec![1, 200, 5]);
        assert_eq!(
            s.generic().iterator_types(&ctx),
            vec![IteratorType::Parallel, IteratorType::Reduction, IteratorType::Interleaved]
        );
        assert_eq!(s.interleave_factor(&ctx), 5);
        // Body: 5 muls + 5 adds, with 15 block arguments (3 operands x 5).
        let body = s.generic().body(&ctx);
        assert_eq!(ctx.block_args(body).len(), 15);
        assert_eq!(ctx.block_ops(body).len(), 11);
        // The B map sends (d0, d1, d2) to (d1, d2): row = reduction dim,
        // column = interleaved dim.
        let maps = s.generic().indexing_maps(&ctx);
        assert_eq!(maps[1].eval(&[0, 7, 3], &[]), vec![7, 3]);
        // The A map depends only on the reduction dim.
        assert_eq!(maps[0].eval(&[0, 7, 3], &[]), vec![0, 7]);
        // The C map: column = d0 * 5? no outer part here: (d0, d2).
        assert_eq!(maps[2].eval(&[0, 7, 3], &[]), vec![0, 3]);
    }

    #[test]
    fn matmul_keeps_outer_part_for_large_n() {
        let mut ctx = Context::new();
        let r = registry();
        let m = build_matmul(&mut ctx, 2, 16, 8);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        MemrefStreamUnrollAndJam::default().run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let g = ctx.walk_named(m, memref_stream::GENERIC)[0];
        let s = memref_stream::StreamGenericOp(g);
        // [M, No, K, Ni] = [2, 4, 8, 4].
        assert_eq!(s.bounds(&ctx), vec![2, 4, 8, 4]);
        assert_eq!(
            s.generic().iterator_types(&ctx),
            vec![
                IteratorType::Parallel,
                IteratorType::Parallel,
                IteratorType::Reduction,
                IteratorType::Interleaved
            ]
        );
        // B map: (m, no, k, ni) -> (k, no * 4 + ni).
        let maps = s.generic().indexing_maps(&ctx);
        assert_eq!(maps[1].eval(&[0, 2, 5, 3], &[]), vec![5, 11]);
        // C map: (m, no, k, ni) -> (m, no * 4 + ni).
        assert_eq!(maps[2].eval(&[1, 2, 5, 3], &[]), vec![1, 11]);
    }

    #[test]
    fn parallel_only_generic_is_untouched() {
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let buf = Type::memref(vec![16], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, top, "relu", vec![buf.clone(), buf], vec![]);
        let x = ctx.block_args(entry)[0];
        let z = ctx.block_args(entry)[1];
        let id = AffineMap::identity(1);
        linalg::build_generic(
            &mut ctx,
            entry,
            vec![x],
            vec![z],
            vec![id.clone(), id],
            vec![IteratorType::Parallel],
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[0])],
        );
        func::build_return(&mut ctx, entry, vec![]);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        MemrefStreamUnrollAndJam::default().run(&mut ctx, &r, m).unwrap();
        let g = ctx.walk_named(m, memref_stream::GENERIC)[0];
        let s = memref_stream::StreamGenericOp(g);
        assert_eq!(s.interleave_factor(&ctx), 1);
        assert_eq!(s.bounds(&ctx), vec![16]);
    }
}
