//! `distribute-to-cores`: shards a kernel across the cores of a Snitch
//! cluster.
//!
//! Runs right after streamification, while the kernel is still a single
//! `memref_stream.generic` whose iteration space is explicit. The first
//! *parallel* dimension whose bound divides evenly by the core count and
//! that every output map depends on is chunked by hart id: each core
//! keeps the same loop structure over a `bound / cores` slice and its
//! memref operands are rebased with `memref.offset` so the slices land
//! in disjoint regions of the shared TCDM. A `rv_snitch.barrier` after
//! the kernel keeps the cluster timing honest.
//!
//! Kernels with no such dimension (e.g. a full reduction, where every
//! core would re-accumulate into the same scalar) are *not* sharded:
//! they are wrapped in a `scf.for %i = hartid to 1` loop so only core 0
//! executes them — slower, never silently wrong.

use mlb_dialects::{arith, memref, memref_stream, scf, structured};
use mlb_ir::{
    Attribute, Context, DialectRegistry, IteratorType, OpId, OpSpec, Pass, PassError, Type,
};
use mlb_riscv::rv_snitch;

/// The pass object. `cores` is the cluster size; `cores <= 1` makes the
/// pass a no-op.
#[derive(Debug, Clone, Copy)]
pub struct DistributeToCores {
    /// Number of cores to shard across.
    pub cores: usize,
    /// Forced shard dimension (the autotuner searches over this). The
    /// override is honoured only when the dimension satisfies every
    /// safety condition of the automatic pick — parallel, divisible by
    /// the core count, depended on by all output maps — otherwise the
    /// pass falls back to the automatic choice.
    pub dim_override: Option<usize>,
}

impl Pass for DistributeToCores {
    fn name(&self) -> &'static str {
        "distribute-to-cores"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        if self.cores <= 1 {
            return Ok(());
        }
        let cores = self.cores as i64;
        for g in ctx.walk_named(root, memref_stream::GENERIC) {
            if !ctx.is_alive(g) {
                continue;
            }
            // Sharding scaffolding (hartid, offsets, the barrier) is
            // charged to the generic being distributed.
            let loc = ctx.effective_loc(g).clone();
            ctx.set_builder_loc(loc);
            match shard_dim(ctx, g, cores, self.dim_override) {
                Some(dim) => shard(ctx, g, dim, cores),
                None => confine_to_core0(ctx, g),
            }
            ctx.clear_builder_loc();
        }
        Ok(())
    }
}

/// Picks the dimension to chunk: the first parallel dimension whose
/// bound divides by `cores` and that every output map depends on (so
/// distinct harts write distinct elements). A valid `dim_override`
/// takes precedence over the scan. `None` means the kernel cannot be
/// sharded safely.
fn shard_dim(ctx: &Context, g: OpId, cores: i64, dim_override: Option<usize>) -> Option<usize> {
    let s = memref_stream::StreamGenericOp(g);
    let gen = s.generic();
    let iterators = gen.iterator_types(ctx);
    let bounds = s.bounds(ctx);
    let maps = gen.indexing_maps(ctx);
    if maps.iter().any(|m| !m.is_linear()) {
        return None;
    }
    let num_inputs = gen.num_inputs(ctx);
    let output_maps = &maps[num_inputs..];
    let shardable = |d: usize| {
        iterators[d] == IteratorType::Parallel
            && bounds[d] % cores == 0
            && output_maps.iter().all(|m| m.dim_coefficients(d).iter().any(|&c| c != 0))
    };
    if let Some(d) = dim_override {
        if d < iterators.len() && shardable(d) {
            return Some(d);
        }
    }
    (0..iterators.len()).find(|&d| shardable(d))
}

/// Rewrites `g` in place to cover one `bounds[dim] / cores` chunk,
/// selected by the executing core's hart id.
fn shard(ctx: &mut Context, g: OpId, dim: usize, cores: i64) {
    let s = memref_stream::StreamGenericOp(g);
    let gen = s.generic();
    let maps = gen.indexing_maps(ctx);
    let bounds = s.bounds(ctx);
    let chunk = bounds[dim] / cores;

    let hart_op =
        ctx.insert_op_before(g, OpSpec::new(rv_snitch::HARTID).results(vec![Type::Index]));
    let hart = ctx.op(hart_op).results[0];
    for (i, map) in maps.iter().enumerate() {
        let operand = ctx.op(g).operands[i];
        let strides = match ctx.value_type(operand) {
            Type::MemRef(m) => m.element_strides(),
            _ => continue,
        };
        // Element distance between consecutive chunks: one step of `dim`
        // moves the access by `coeff · stride` elements, and a chunk is
        // `chunk` steps.
        let coeffs = map.dim_coefficients(dim);
        let elems = coeffs.iter().zip(&strides).map(|(c, s)| c * s).sum::<i64>() * chunk;
        if elems == 0 {
            continue;
        }
        let c = ctx.insert_op_before(
            g,
            OpSpec::new(arith::CONSTANT)
                .attr("value", Attribute::Int(elems))
                .results(vec![Type::Index]),
        );
        let cval = ctx.op(c).results[0];
        let mul = ctx.insert_op_before(
            g,
            OpSpec::new(arith::MULI).operands(vec![hart, cval]).results(vec![Type::Index]),
        );
        let off = ctx.op(mul).results[0];
        let ty = ctx.value_type(operand).clone();
        let reb = ctx.insert_op_before(
            g,
            OpSpec::new(memref::OFFSET).operands(vec![operand, off]).results(vec![ty]),
        );
        let rebased = ctx.op(reb).results[0];
        ctx.set_operand(g, i, rebased);
    }

    let mut new_bounds = bounds;
    new_bounds[dim] = chunk;
    ctx.op_mut(g).attrs.insert(structured::BOUNDS.to_string(), Attribute::DenseI64(new_bounds));
    insert_after(ctx, g, OpSpec::new(rv_snitch::BARRIER));
}

/// Fallback for unshardable kernels: wrap `g` in
/// `scf.for %i = hartid to 1 step 1`, which runs exactly once on core 0
/// and zero times everywhere else.
fn confine_to_core0(ctx: &mut Context, g: OpId) {
    let hart_op =
        ctx.insert_op_before(g, OpSpec::new(rv_snitch::HARTID).results(vec![Type::Index]));
    let hart = ctx.op(hart_op).results[0];
    let one_op = ctx.insert_op_before(
        g,
        OpSpec::new(arith::CONSTANT).attr("value", Attribute::Int(1)).results(vec![Type::Index]),
    );
    let one = ctx.op(one_op).results[0];
    let for_op =
        ctx.insert_op_before(g, OpSpec::new(scf::FOR).operands(vec![hart, one, one]).regions(1));
    let body = ctx.create_block(ctx.op(for_op).regions[0], vec![Type::Index]);
    ctx.move_op_to_end(g, body);
    ctx.append_op(body, OpSpec::new(scf::YIELD));
    insert_after(ctx, for_op, OpSpec::new(rv_snitch::BARRIER));
}

/// Inserts `spec` directly after `op` in its block.
fn insert_after(ctx: &mut Context, op: OpId, spec: OpSpec) -> OpId {
    let block = ctx.op(op).parent.expect("op must be attached to a block");
    let pos = ctx.op_position(op);
    match ctx.block_ops(block).get(pos + 1).copied() {
        Some(next) => ctx.insert_op_before(next, spec),
        None => ctx.append_op(block, spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::convert_linalg::ConvertLinalgToMemrefStream;
    use mlb_dialects::{builtin, func, linalg};
    use mlb_ir::AffineMap;

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        mlb_dialects::register_all(&mut r);
        mlb_riscv::register_all(&mut r);
        r
    }

    /// MatMul(M, N, K) over f64.
    fn build_matmul(ctx: &mut Context, m_: i64, n: i64, k: i64) -> OpId {
        let (module, top) = builtin::build_module(ctx);
        let a_ty = Type::memref(vec![m_, k], Type::F64);
        let b_ty = Type::memref(vec![k, n], Type::F64);
        let c_ty = Type::memref(vec![m_, n], Type::F64);
        let (_f, entry) = func::build_func(ctx, top, "matmul", vec![a_ty, b_ty, c_ty], vec![]);
        let a = ctx.block_args(entry)[0];
        let b = ctx.block_args(entry)[1];
        let c = ctx.block_args(entry)[2];
        linalg::build_generic(
            ctx,
            entry,
            vec![a, b],
            vec![c],
            vec![
                AffineMap::projection(3, &[0, 2]),
                AffineMap::projection(3, &[2, 1]),
                AffineMap::projection(3, &[0, 1]),
            ],
            vec![IteratorType::Parallel, IteratorType::Parallel, IteratorType::Reduction],
            None,
            |ctx, body, args| {
                let p = arith::binary(ctx, body, arith::MULF, args[0], args[1]);
                vec![arith::binary(ctx, body, arith::ADDF, p, args[2])]
            },
        );
        func::build_return(ctx, entry, vec![]);
        module
    }

    /// Full reduction: sum(X) into a 1-element output.
    fn build_sum(ctx: &mut Context, n: i64) -> OpId {
        let (module, top) = builtin::build_module(ctx);
        let x_ty = Type::memref(vec![n], Type::F64);
        let acc_ty = Type::memref(vec![1], Type::F64);
        let (_f, entry) = func::build_func(ctx, top, "sum", vec![x_ty, acc_ty], vec![]);
        let x = ctx.block_args(entry)[0];
        let acc = ctx.block_args(entry)[1];
        linalg::build_generic(
            ctx,
            entry,
            vec![x],
            vec![acc],
            vec![
                AffineMap::identity(1),
                AffineMap::new(1, 0, vec![mlb_ir::AffineExpr::constant(0)]),
            ],
            vec![IteratorType::Reduction],
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[1])],
        );
        func::build_return(ctx, entry, vec![]);
        module
    }

    #[test]
    fn matmul_is_sharded_on_the_row_dimension() {
        let mut ctx = Context::new();
        let r = registry();
        let m = build_matmul(&mut ctx, 8, 16, 16);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        DistributeToCores { cores: 4, dim_override: None }.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let g = ctx.walk_named(m, memref_stream::GENERIC)[0];
        let s = memref_stream::StreamGenericOp(g);
        // M = 8 chunked to 2 rows per core; N and K untouched.
        assert_eq!(s.bounds(&ctx), vec![2, 16, 16]);
        // A (row-major [8, 16]) advances 2*16 elements per hart; B is
        // independent of the row dim and stays unwrapped; C advances
        // 2*16 as well.
        let ops = ctx.op(g).operands.clone();
        let a_def = ctx.defining_op(ops[0]).unwrap();
        assert_eq!(ctx.op(a_def).name, memref::OFFSET);
        assert!(ctx.defining_op(ops[1]).is_none(), "B must stay the raw block arg");
        let c_def = ctx.defining_op(ops[2]).unwrap();
        assert_eq!(ctx.op(c_def).name, memref::OFFSET);
        // One hart id feeds both offsets; a barrier follows the kernel.
        assert_eq!(ctx.walk_named(m, rv_snitch::HARTID).len(), 1);
        assert_eq!(ctx.walk_named(m, rv_snitch::BARRIER).len(), 1);
    }

    #[test]
    fn indivisible_bound_falls_back_to_core0() {
        let mut ctx = Context::new();
        let r = registry();
        // M = 1, N = 5: no parallel bound divides 4.
        let m = build_matmul(&mut ctx, 1, 5, 200);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        DistributeToCores { cores: 4, dim_override: None }.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let g = ctx.walk_named(m, memref_stream::GENERIC)[0];
        let wrapper = ctx.parent_op(g).unwrap();
        assert_eq!(ctx.op(wrapper).name, scf::FOR);
        // Bounds are untouched and the loop runs hartid..1.
        assert_eq!(memref_stream::StreamGenericOp(g).bounds(&ctx), vec![1, 5, 200]);
        assert_eq!(ctx.walk_named(m, rv_snitch::BARRIER).len(), 1);
    }

    #[test]
    fn reduction_only_kernel_falls_back_to_core0() {
        let mut ctx = Context::new();
        let r = registry();
        let m = build_sum(&mut ctx, 64);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        DistributeToCores { cores: 2, dim_override: None }.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let g = ctx.walk_named(m, memref_stream::GENERIC)[0];
        let wrapper = ctx.parent_op(g).unwrap();
        assert_eq!(ctx.op(wrapper).name, scf::FOR);
        let f = scf::ForOp(wrapper);
        let lb_def = ctx.defining_op(f.lower_bound(&ctx)).unwrap();
        assert_eq!(ctx.op(lb_def).name, rv_snitch::HARTID);
    }

    #[test]
    fn valid_override_shards_the_requested_dimension() {
        let mut ctx = Context::new();
        let r = registry();
        let m = build_matmul(&mut ctx, 8, 16, 16);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        DistributeToCores { cores: 4, dim_override: Some(1) }.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let g = ctx.walk_named(m, memref_stream::GENERIC)[0];
        let s = memref_stream::StreamGenericOp(g);
        // N = 16 chunked to 4 columns per core; M and K untouched.
        assert_eq!(s.bounds(&ctx), vec![8, 4, 16]);
        // A is independent of the column dim and stays unwrapped; B and
        // C both advance along it.
        let ops = ctx.op(g).operands.clone();
        assert!(ctx.defining_op(ops[0]).is_none(), "A must stay the raw block arg");
        let b_def = ctx.defining_op(ops[1]).unwrap();
        assert_eq!(ctx.op(b_def).name, memref::OFFSET);
        let c_def = ctx.defining_op(ops[2]).unwrap();
        assert_eq!(ctx.op(c_def).name, memref::OFFSET);
    }

    #[test]
    fn unsafe_override_falls_back_to_the_automatic_pick() {
        let mut ctx = Context::new();
        let r = registry();
        let m = build_matmul(&mut ctx, 8, 16, 16);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        // Dim 2 is the reduction dim (unsafe) — fall back to dim 0.
        DistributeToCores { cores: 4, dim_override: Some(2) }.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let g = ctx.walk_named(m, memref_stream::GENERIC)[0];
        assert_eq!(memref_stream::StreamGenericOp(g).bounds(&ctx), vec![2, 16, 16]);
        // An out-of-range override likewise falls back (fresh module).
        let mut ctx2 = Context::new();
        let m2 = build_matmul(&mut ctx2, 8, 16, 16);
        ConvertLinalgToMemrefStream.run(&mut ctx2, &r, m2).unwrap();
        DistributeToCores { cores: 4, dim_override: Some(9) }.run(&mut ctx2, &r, m2).unwrap();
        let g2 = ctx2.walk_named(m2, memref_stream::GENERIC)[0];
        assert_eq!(memref_stream::StreamGenericOp(g2).bounds(&ctx2), vec![2, 16, 16]);
    }

    #[test]
    fn single_core_is_a_noop() {
        let mut ctx = Context::new();
        let r = registry();
        let m = build_matmul(&mut ctx, 8, 16, 16);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        DistributeToCores { cores: 1, dim_override: None }.run(&mut ctx, &r, m).unwrap();
        assert!(ctx.walk_named(m, rv_snitch::HARTID).is_empty());
        assert!(ctx.walk_named(m, rv_snitch::BARRIER).is_empty());
    }
}
