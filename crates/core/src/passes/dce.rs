//! A standalone dead-code-elimination pass, run late in the pipeline to
//! clean up values orphaned by FREP conversion and streaming lowering
//! (loop bounds of converted loops, staging constants).
//!
//! Must run before register allocation: pinned results are never erased,
//! but plain dead values would otherwise waste registers.

use mlb_ir::{eliminate_dead_code, Context, DialectRegistry, OpId, Pass, PassError};

/// The pass object.
#[derive(Debug, Default)]
pub struct DeadCodeElimination;

impl Pass for DeadCodeElimination {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(
        &self,
        ctx: &mut Context,
        registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        eliminate_dead_code(ctx, registry, root);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_ir::{OpSpec, Type};
    use mlb_riscv::{rv, rv_func};

    #[test]
    fn dead_li_is_removed_but_pinned_fpu_op_is_kept() {
        let mut ctx = Context::new();
        let mut registry = DialectRegistry::new();
        registry.register(mlb_ir::OpInfo::new("builtin.module"));
        mlb_riscv::register_all(&mut registry);
        let m = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let top = ctx.create_block(ctx.op(m).regions[0], vec![]);
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "f", &[]);
        let _dead = rv::li(&mut ctx, entry, 42);
        let ft0 = rv::get_register(&mut ctx, entry, Type::FpRegister(Some(mlb_isa::FpReg::ft(0))));
        // An unused result pinned to ft2: a stream write in disguise.
        let pinned = ctx.append_op(
            entry,
            OpSpec::new(rv::FADD_D)
                .operands(vec![ft0, ft0])
                .results(vec![Type::FpRegister(Some(mlb_isa::FpReg::ft(2)))]),
        );
        rv_func::build_ret(&mut ctx, entry);
        DeadCodeElimination.run(&mut ctx, &registry, m).unwrap();
        assert!(ctx.walk_named(m, rv::LI).is_empty());
        assert!(ctx.is_alive(pinned));
    }
}
