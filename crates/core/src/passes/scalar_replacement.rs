//! `memref-stream-scalar-replacement`: marks reduction generics whose
//! results can accumulate in registers instead of memory (Table 3,
//! "Scalar Replacement").
//!
//! The paper "excludes the reduction indices from the iteration space
//! specifications of the results, guiding our lowering to loops to use
//! local values for accumulation" (Section 3.4). In this implementation
//! the exclusion is recorded as the `scalar_replaced` unit attribute,
//! which `convert-memref-stream-to-loops` consumes: with the attribute,
//! each result element is held in a loop-carried SSA value across the
//! reduction loops and written once; without it, every iteration point
//! loads, updates and stores the result element.

use mlb_dialects::memref_stream;
use mlb_ir::{Attribute, Context, DialectRegistry, IteratorType, OpId, Pass, PassError};

/// Attribute marking a generic as register-accumulating.
pub const SCALAR_REPLACED: &str = "scalar_replaced";

/// The pass object.
#[derive(Debug, Default)]
pub struct MemrefStreamScalarReplacement;

impl Pass for MemrefStreamScalarReplacement {
    fn name(&self) -> &'static str {
        "memref-stream-scalar-replacement"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        for op in ctx.walk_named(root, memref_stream::GENERIC) {
            if can_scalar_replace(ctx, op) {
                ctx.op_mut(op).attrs.insert(SCALAR_REPLACED.to_string(), Attribute::Unit);
            }
        }
        Ok(())
    }
}

/// Whether `op` is marked as scalar-replaced.
pub fn is_scalar_replaced(ctx: &Context, op: OpId) -> bool {
    ctx.op(op).attr(SCALAR_REPLACED).is_some()
}

/// Accumulating in registers requires (i) a reduction, (ii) output maps
/// independent of every reduction dimension (each result element belongs
/// to exactly one non-reduction point), and (iii) reduction dimensions
/// forming the innermost non-interleaved loops so the accumulator scope
/// is well defined.
fn can_scalar_replace(ctx: &Context, op: OpId) -> bool {
    let s = memref_stream::StreamGenericOp(op);
    let iterators = s.generic().iterator_types(ctx);
    if !iterators.contains(&IteratorType::Reduction) {
        return false;
    }
    // (iii) reductions contiguous and last among the loop dimensions.
    let loop_iters: Vec<IteratorType> =
        iterators.iter().copied().filter(|&it| it != IteratorType::Interleaved).collect();
    let first_red = loop_iters.iter().position(|&it| it == IteratorType::Reduction).unwrap();
    if !loop_iters[first_red..].iter().all(|&it| it == IteratorType::Reduction) {
        return false;
    }
    // (ii) output maps must not use reduction dimensions.
    let maps = s.generic().indexing_maps(ctx);
    let num_inputs = s.generic().num_inputs(ctx);
    let num_outputs = s.outputs(ctx).len();
    for map in &maps[num_inputs..num_inputs + num_outputs] {
        if !map.is_linear() {
            return false;
        }
        for (d, it) in iterators.iter().enumerate() {
            if *it == IteratorType::Reduction && map.dim_coefficients(d).iter().any(|&c| c != 0) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::convert_linalg::ConvertLinalgToMemrefStream;
    use mlb_dialects::{arith, builtin, func, linalg};
    use mlb_ir::{AffineExpr, AffineMap, Type};

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        mlb_dialects::register_all(&mut r);
        r
    }

    #[test]
    fn reduction_with_independent_output_is_marked() {
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let a_ty = Type::memref(vec![4, 8], Type::F64);
        let z_ty = Type::memref(vec![4], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, top, "rowsum", vec![a_ty, z_ty], vec![]);
        let a = ctx.block_args(entry)[0];
        let z = ctx.block_args(entry)[1];
        let a_map = AffineMap::identity(2);
        let z_map = AffineMap::new(2, 0, vec![AffineExpr::dim(0)]);
        linalg::build_generic(
            &mut ctx,
            entry,
            vec![a],
            vec![z],
            vec![a_map, z_map],
            vec![IteratorType::Parallel, IteratorType::Reduction],
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[1])],
        );
        func::build_return(&mut ctx, entry, vec![]);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        MemrefStreamScalarReplacement.run(&mut ctx, &r, m).unwrap();
        let g = ctx.walk_named(m, memref_stream::GENERIC)[0];
        assert!(is_scalar_replaced(&ctx, g));
    }

    #[test]
    fn parallel_generic_is_not_marked() {
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let buf = Type::memref(vec![4], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, top, "relu", vec![buf.clone(), buf], vec![]);
        let x = ctx.block_args(entry)[0];
        let z = ctx.block_args(entry)[1];
        let id = AffineMap::identity(1);
        linalg::build_generic(
            &mut ctx,
            entry,
            vec![x],
            vec![z],
            vec![id.clone(), id],
            vec![IteratorType::Parallel],
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[0])],
        );
        func::build_return(&mut ctx, entry, vec![]);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        MemrefStreamScalarReplacement.run(&mut ctx, &r, m).unwrap();
        let g = ctx.walk_named(m, memref_stream::GENERIC)[0];
        assert!(!is_scalar_replaced(&ctx, g));
    }

    #[test]
    fn reduction_carried_output_is_not_marked() {
        // Output indexed by the reduction dimension (a running prefix
        // sum): each iteration writes a different element, so registers
        // cannot hold "the" accumulator.
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let buf = Type::memref(vec![8], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, top, "scan", vec![buf.clone(), buf], vec![]);
        let x = ctx.block_args(entry)[0];
        let z = ctx.block_args(entry)[1];
        let id = AffineMap::identity(1);
        linalg::build_generic(
            &mut ctx,
            entry,
            vec![x],
            vec![z],
            vec![id.clone(), id],
            vec![IteratorType::Reduction],
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[1])],
        );
        func::build_return(&mut ctx, entry, vec![]);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        MemrefStreamScalarReplacement.run(&mut ctx, &r, m).unwrap();
        let g = ctx.walk_named(m, memref_stream::GENERIC)[0];
        assert!(!is_scalar_replaced(&ctx, g));
    }
}
