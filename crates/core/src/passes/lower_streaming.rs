//! `lower-snitch-stream`: expands `snitch_stream.streaming_region` into
//! the explicit SSR configuration sequence — `scfgwi` writes for bounds,
//! strides, repetition and base pointers — bracketed by SSR enable and
//! disable, with the region body inlined in between (Section 3.2,
//! Figure 6).
//!
//! This runs *before* register allocation: the inlined body keeps using
//! `rv.get_register`-pinned `ft0`–`ft2` values, which is exactly how the
//! allocator learns to exclude the stream registers (pass 1).

use std::collections::HashMap;

use mlb_ir::{Attribute, Context, DialectRegistry, OpId, Pass, PassError, Type};
use mlb_isa::{SsrCfgReg, SsrDataMover};
use mlb_riscv::{rv, rv_snitch, snitch_stream};

/// The pass object.
#[derive(Debug, Default)]
pub struct LowerSnitchStream;

impl Pass for LowerSnitchStream {
    fn name(&self) -> &'static str {
        "lower-snitch-stream"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        // Track, per function, which data movers have a lingering nonzero
        // repeat so later regions reset it only when needed.
        let mut dirty_repeat: HashMap<(OpId, usize), bool> = HashMap::new();
        for op in ctx.walk_named(root, snitch_stream::STREAMING_REGION) {
            let func = enclosing_function(ctx, op);
            lower_region(ctx, op, func, &mut dirty_repeat);
            ctx.clear_builder_loc();
        }
        Ok(())
    }
}

fn enclosing_function(ctx: &Context, mut op: OpId) -> OpId {
    while let Some(parent) = ctx.parent_op(op) {
        if ctx.op(parent).name == mlb_riscv::rv_func::FUNC {
            return parent;
        }
        op = parent;
    }
    op
}

fn lower_region(
    ctx: &mut Context,
    op: OpId,
    func: OpId,
    dirty_repeat: &mut HashMap<(OpId, usize), bool>,
) {
    // The SSR configuration sequence is charged to the streaming region
    // (which itself carries the generic's location); inlined body ops
    // keep their own locations.
    let loc = ctx.effective_loc(op).clone();
    ctx.set_builder_loc(loc);
    let region = snitch_stream::StreamingRegionOp(op);
    let num_inputs = region.num_inputs(ctx);
    let patterns = region.patterns(ctx);
    let bases = region.base_pointers(ctx).to_vec();

    let li_before = |ctx: &mut Context, imm: i64| {
        let li = ctx.insert_op_before(
            op,
            mlb_ir::OpSpec::new(rv::LI).attr("imm", Attribute::Int(imm)).results(vec![rv::reg()]),
        );
        ctx.op(li).results[0]
    };

    for (i, pattern) in patterns.iter().enumerate() {
        let dm = SsrDataMover::new(i as u8);
        // Bounds and strides per dimension (innermost first).
        for (d, (&ub, &stride)) in pattern.ub.iter().zip(&pattern.strides).enumerate() {
            let b = li_before(ctx, ub - 1);
            let bop = ctx.insert_op_before(
                op,
                mlb_ir::OpSpec::new(rv_snitch::SCFGWI)
                    .operands(vec![b])
                    .attr("imm", Attribute::Int(SsrCfgReg::Bound(d as u8).scfg_imm(dm) as i64)),
            );
            let _ = bop;
            let s = li_before(ctx, stride);
            ctx.insert_op_before(
                op,
                mlb_ir::OpSpec::new(rv_snitch::SCFGWI)
                    .operands(vec![s])
                    .attr("imm", Attribute::Int(SsrCfgReg::Stride(d as u8).scfg_imm(dm) as i64)),
            );
        }
        // Repetition counter: written when nonzero, and reset when its
        // current value is unknown. At function entry the register is
        // unknown (not zero): SSR configuration persists across kernel
        // invocations on one core, so a previously-run kernel — e.g. an
        // earlier stage of a layer graph on the same cluster — may have
        // left a nonzero repeat behind.
        let dirty = dirty_repeat.entry((func, i)).or_insert(true);
        if pattern.repeat > 0 || *dirty {
            let rep = li_before(ctx, pattern.repeat);
            ctx.insert_op_before(
                op,
                mlb_ir::OpSpec::new(rv_snitch::SCFGWI)
                    .operands(vec![rep])
                    .attr("imm", Attribute::Int(SsrCfgReg::Repeat.scfg_imm(dm) as i64)),
            );
            *dirty = pattern.repeat > 0;
        }
        // Arming write: the base pointer into rptr/wptr of the highest
        // dimension.
        let top_dim = (pattern.rank() - 1) as u8;
        let cfg = if i < num_inputs { SsrCfgReg::RPtr(top_dim) } else { SsrCfgReg::WPtr(top_dim) };
        ctx.insert_op_before(
            op,
            mlb_ir::OpSpec::new(rv_snitch::SCFGWI)
                .operands(vec![bases[i]])
                .attr("imm", Attribute::Int(cfg.scfg_imm(dm) as i64)),
        );
    }

    ctx.insert_op_before(op, mlb_ir::OpSpec::new(rv_snitch::SSR_ENABLE));

    // Replace the stream block arguments with pinned registers and
    // inline the body.
    let body = region.body(ctx);
    for (i, &arg) in ctx.block_args(body).to_vec().iter().enumerate() {
        let pinned = ctx.insert_op_before(
            op,
            mlb_ir::OpSpec::new(rv::GET_REGISTER)
                .results(vec![Type::FpRegister(Some(mlb_isa::FpReg::ft(i as u8)))]),
        );
        let new = ctx.op(pinned).results[0];
        ctx.replace_all_uses(arg, new);
    }
    for bop in ctx.block_ops(body).to_vec() {
        ctx.move_op_before(bop, op);
    }

    ctx.insert_op_before(op, mlb_ir::OpSpec::new(rv_snitch::SSR_DISABLE));
    ctx.erase_op(op);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_ir::{OpSpec, StreamPattern};
    use mlb_isa::IntReg;
    use mlb_riscv::rv_func;

    fn setup() -> (Context, DialectRegistry, OpId, mlb_ir::BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        r.register(mlb_ir::OpInfo::new("builtin.module"));
        mlb_riscv::register_all(&mut r);
        let m = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let top = ctx.create_block(ctx.op(m).regions[0], vec![]);
        (ctx, r, m, top)
    }

    #[test]
    fn region_expands_to_config_sequence() {
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) =
            rv_func::build_func(&mut ctx, top, "k", &[rv_func::AbiArg::Int, rv_func::AbiArg::Int]);
        let x = ctx.block_args(entry)[0];
        let z = ctx.block_args(entry)[1];
        let read = StreamPattern::new(vec![16], vec![8], 0);
        let write = StreamPattern::new(vec![16], vec![8], 0);
        snitch_stream::build_streaming_region(
            &mut ctx,
            entry,
            vec![x],
            vec![z],
            vec![read, write],
            |ctx, body, streams| {
                let v = rv::fp_binary(ctx, body, rv::FMAX_D, streams[0], streams[0]);
                snitch_stream::build_write(ctx, body, v, streams[1]);
            },
        );
        rv_func::build_ret(&mut ctx, entry);

        LowerSnitchStream.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        assert!(ctx.walk_named(m, snitch_stream::STREAMING_REGION).is_empty());
        // Per stream: bound + stride writes + repeat reset (the register
        // is unknown at entry) + arming write = 4 scfgwi.
        let cfg = ctx.walk_named(m, rv_snitch::SCFGWI);
        assert_eq!(cfg.len(), 8);
        assert_eq!(ctx.walk_named(m, rv_snitch::SSR_ENABLE).len(), 1);
        assert_eq!(ctx.walk_named(m, rv_snitch::SSR_DISABLE).len(), 1);
        // The body survived inline, now using pinned stream registers.
        let body_ops = ctx.walk_named(m, rv::FMAX_D);
        assert_eq!(body_ops.len(), 1);
        let operand = ctx.op(body_ops[0]).operands[0];
        assert_eq!(*ctx.value_type(operand), Type::FpRegister(Some(mlb_isa::FpReg::ft(0))));
        // Ordering: enable before the body op, disable after.
        let ops = ctx.block_ops(entry).to_vec();
        let pos = |name: &str| ops.iter().position(|&o| ctx.op(o).name == name).unwrap();
        assert!(pos(rv_snitch::SSR_ENABLE) < pos(rv::FMAX_D));
        assert!(pos(rv::FMAX_D) < pos(rv_snitch::SSR_DISABLE));
    }

    #[test]
    fn repeat_written_when_nonzero_and_reset_after() {
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "k", &[rv_func::AbiArg::Int]);
        let x = ctx.block_args(entry)[0];
        let with_repeat = StreamPattern::new(vec![8], vec![8], 4);
        let without = StreamPattern::new(vec![8], vec![8], 0);
        snitch_stream::build_streaming_region(
            &mut ctx,
            entry,
            vec![x],
            vec![],
            vec![with_repeat],
            |_, _, _| {},
        );
        snitch_stream::build_streaming_region(
            &mut ctx,
            entry,
            vec![x],
            vec![],
            vec![without],
            |_, _, _| {},
        );
        rv_func::build_ret(&mut ctx, entry);
        LowerSnitchStream.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        // Repeat writes: one for the first region (value 4) and one reset
        // (value 0) for the second.
        let repeat_imm = SsrCfgReg::Repeat.scfg_imm(SsrDataMover::new(0)) as i64;
        let repeat_writes: Vec<OpId> = ctx
            .walk_named(m, rv_snitch::SCFGWI)
            .into_iter()
            .filter(|&o| ctx.op(o).attr("imm") == Some(&Attribute::Int(repeat_imm)))
            .collect();
        assert_eq!(repeat_writes.len(), 2);
    }

    #[test]
    fn repeat_reset_at_function_entry_even_when_zero() {
        // SSR configuration persists across kernel invocations on one
        // core: a previously-run kernel (e.g. an earlier layer-graph
        // stage) may have left a nonzero repeat behind, so a function's
        // first region must program the register even for repeat = 0.
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "k", &[rv_func::AbiArg::Int]);
        let x = ctx.block_args(entry)[0];
        let no_repeat = StreamPattern::new(vec![8], vec![8], 0);
        snitch_stream::build_streaming_region(
            &mut ctx,
            entry,
            vec![x],
            vec![],
            vec![no_repeat],
            |_, _, _| {},
        );
        rv_func::build_ret(&mut ctx, entry);
        LowerSnitchStream.run(&mut ctx, &r, m).unwrap();
        let repeat_imm = SsrCfgReg::Repeat.scfg_imm(SsrDataMover::new(0)) as i64;
        let repeat_writes: Vec<OpId> = ctx
            .walk_named(m, rv_snitch::SCFGWI)
            .into_iter()
            .filter(|&o| ctx.op(o).attr("imm") == Some(&Attribute::Int(repeat_imm)))
            .collect();
        assert_eq!(repeat_writes.len(), 1, "entry state is unknown, not zero");
    }

    #[test]
    fn zero_register_not_clobbered() {
        // The arming write uses the base pointer register directly.
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "k", &[]);
        let base = rv::get_register(&mut ctx, entry, Type::IntRegister(Some(IntReg::a(0))));
        let p = StreamPattern::new(vec![4], vec![8], 0);
        snitch_stream::build_streaming_region(
            &mut ctx,
            entry,
            vec![base],
            vec![],
            vec![p],
            |_, _, _| {},
        );
        rv_func::build_ret(&mut ctx, entry);
        LowerSnitchStream.run(&mut ctx, &r, m).unwrap();
        let arming = ctx
            .walk_named(m, rv_snitch::SCFGWI)
            .into_iter()
            .find(|&o| ctx.op(o).operands == vec![base]);
        assert!(arming.is_some());
    }
}
