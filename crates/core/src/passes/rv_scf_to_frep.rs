//! `rv-scf-to-frep`: converts eligible `rv_scf.for` loops into
//! `rv_snitch.frep_outer` hardware loops (Table 3, "FRep").
//!
//! A loop is eligible when its body consists exclusively of FPU
//! instructions, its loop-carried values are FP registers, and its
//! induction variable is unused (streams handle all addressing). The
//! hardware loop removes the per-iteration control flow entirely and
//! decouples the FPU from the integer core (Section 2.4).

use mlb_ir::{Attribute, Context, DialectRegistry, OpId, Pass, PassError, Type};
use mlb_riscv::{rv, rv_scf, rv_snitch};

/// The pass object.
#[derive(Debug, Default)]
pub struct RvScfToFrep;

impl Pass for RvScfToFrep {
    fn name(&self) -> &'static str {
        "rv-scf-to-frep"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        for op in ctx.walk_named(root, rv_scf::FOR) {
            if ctx.is_alive(op) {
                try_convert(ctx, op);
                ctx.clear_builder_loc();
            }
        }
        Ok(())
    }
}

fn li_value(ctx: &Context, v: mlb_ir::ValueId) -> Option<i64> {
    rv::constant_int_value(ctx, v)
}

fn try_convert(ctx: &mut Context, op: OpId) -> bool {
    // The count materialization and the frep op itself take the loop's
    // location; re-homed body ops keep theirs.
    let loc = ctx.effective_loc(op).clone();
    ctx.set_builder_loc(loc);
    let for_op = rv_scf::RvForOp(op);
    // Normalized bounds only: lb = 0, step = 1.
    if li_value(ctx, for_op.lower_bound(ctx)) != Some(0)
        || li_value(ctx, for_op.step(ctx)) != Some(1)
    {
        return false;
    }
    let body = for_op.body(ctx);
    let ops = ctx.block_ops(body).to_vec();
    // Body: only FPU instructions plus the terminator, and within the
    // sequencer's buffer capacity.
    if ops.len() - 1 > mlb_isa::FREP_MAX_SEQUENCE {
        return false;
    }
    for &bop in &ops[..ops.len() - 1] {
        if !rv::is_fpu_op(&ctx.op(bop).name) {
            return false;
        }
    }
    // Induction variable unused; carried values all FP.
    let iv = for_op.induction_var(ctx);
    if ctx.has_uses(iv) {
        return false;
    }
    let inits = for_op.iter_inits(ctx).to_vec();
    if inits.iter().any(|&v| !matches!(ctx.value_type(v), Type::FpRegister(_))) {
        return false;
    }

    // frep.o executes (count_register + 1) times: materialize ub - 1.
    let ub = for_op.upper_bound(ctx);
    let count = if let Some(c) = li_value(ctx, ub) {
        if c < 1 {
            return false;
        }
        let li = ctx.insert_op_before(
            op,
            mlb_ir::OpSpec::new(rv::LI).attr("imm", Attribute::Int(c - 1)).results(vec![rv::reg()]),
        );
        ctx.op(li).results[0]
    } else {
        let addi = ctx.insert_op_before(
            op,
            mlb_ir::OpSpec::new(rv::ADDI)
                .operands(vec![ub])
                .attr("imm", Attribute::Int(-1))
                .results(vec![rv::reg()]),
        );
        ctx.op(addi).results[0]
    };

    // Build the frep with the same iteration chain.
    let result_types: Vec<Type> = inits.iter().map(|&v| ctx.value_type(v).clone()).collect();
    let mut operands = vec![count];
    operands.extend(inits);
    let frep = ctx.insert_op_before(
        op,
        mlb_ir::OpSpec::new(rv_snitch::FREP_OUTER)
            .operands(operands)
            .results(result_types.clone())
            .regions(1),
    );
    let new_body = ctx.create_block(ctx.op(frep).regions[0], result_types);
    // Re-home the loop body ops, rewiring iter args (the IV is dead).
    let old_iter_args = for_op.iter_args(ctx).to_vec();
    for (i, &old_arg) in old_iter_args.iter().enumerate() {
        let new_arg = ctx.block_args(new_body)[i];
        ctx.replace_all_uses(old_arg, new_arg);
    }
    for &bop in &ops {
        ctx.move_op_to_end(bop, new_body);
    }
    // Replace results and erase the empty loop shell.
    for (i, &result) in ctx.op(op).results.to_vec().iter().enumerate() {
        let new_result = ctx.op(frep).results[i];
        ctx.replace_all_uses(result, new_result);
    }
    ctx.erase_op(op);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_ir::OpSpec;
    use mlb_isa::FpReg;
    use mlb_riscv::rv_func;

    fn setup() -> (Context, DialectRegistry, OpId, mlb_ir::BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        r.register(mlb_ir::OpInfo::new("builtin.module"));
        mlb_riscv::register_all(&mut r);
        let m = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let top = ctx.create_block(ctx.op(m).regions[0], vec![]);
        (ctx, r, m, top)
    }

    fn fp_loop(
        ctx: &mut Context,
        entry: mlb_ir::BlockId,
        trip: i64,
    ) -> (mlb_riscv::rv_scf::RvForOp, mlb_ir::ValueId) {
        let lb = rv::li(ctx, entry, 0);
        let ub = rv::li(ctx, entry, trip);
        let step = rv::li(ctx, entry, 1);
        let ft0 = rv::get_register(ctx, entry, Type::FpRegister(Some(FpReg::ft(0))));
        let init = rv::fp_binary(ctx, entry, rv::FSUB_D, ft0, ft0);
        let loop_op = mlb_riscv::rv_scf::build_for(
            ctx,
            entry,
            lb,
            ub,
            step,
            vec![init],
            |ctx, body, _iv, args| vec![rv::fp_ternary(ctx, body, rv::FMADD_D, ft0, ft0, args[0])],
        );
        let result = ctx.op(loop_op.0).results[0];
        (loop_op, result)
    }

    #[test]
    fn all_fpu_loop_becomes_frep() {
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "f", &[]);
        let (_loop, result) = fp_loop(&mut ctx, entry, 200);
        let _keep = rv::fp_binary(&mut ctx, entry, rv::FADD_D, result, result);
        rv_func::build_ret(&mut ctx, entry);

        RvScfToFrep.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        assert!(ctx.walk_named(m, rv_scf::FOR).is_empty());
        let freps = ctx.walk_named(m, rv_snitch::FREP_OUTER);
        assert_eq!(freps.len(), 1);
        let frep = rv_snitch::FrepOp(freps[0]);
        assert_eq!(frep.num_instructions(&ctx), 1);
        // The count register holds trip - 1 = 199.
        let count_def = ctx.defining_op(frep.count(&ctx)).unwrap();
        assert_eq!(ctx.op(count_def).attr("imm"), Some(&Attribute::Int(199)));
    }

    #[test]
    fn loop_with_integer_body_is_kept() {
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "f", &[]);
        let lb = rv::li(&mut ctx, entry, 0);
        let ub = rv::li(&mut ctx, entry, 4);
        let step = rv::li(&mut ctx, entry, 1);
        mlb_riscv::rv_scf::build_for(&mut ctx, entry, lb, ub, step, vec![], |ctx, body, _iv, _| {
            let t = rv::li(ctx, body, 3);
            let _ = rv::int_binary(ctx, body, rv::ADD, t, t);
            vec![]
        });
        rv_func::build_ret(&mut ctx, entry);
        RvScfToFrep.run(&mut ctx, &r, m).unwrap();
        assert_eq!(ctx.walk_named(m, rv_scf::FOR).len(), 1);
        assert!(ctx.walk_named(m, rv_snitch::FREP_OUTER).is_empty());
    }

    #[test]
    fn loop_using_induction_variable_is_kept() {
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "f", &[]);
        let lb = rv::li(&mut ctx, entry, 0);
        let ub = rv::li(&mut ctx, entry, 4);
        let step = rv::li(&mut ctx, entry, 1);
        let ft0 = rv::get_register(&mut ctx, entry, Type::FpRegister(Some(FpReg::ft(0))));
        mlb_riscv::rv_scf::build_for(&mut ctx, entry, lb, ub, step, vec![], |ctx, body, iv, _| {
            // The IV is used by an integer op: not frep-able anyway, but
            // also exercises the IV check with an FPU-only body below.
            let _ = rv::int_imm(ctx, body, rv::ADDI, iv, 1);
            let _ = rv::fp_binary(ctx, body, rv::FADD_D, ft0, ft0);
            vec![]
        });
        rv_func::build_ret(&mut ctx, entry);
        RvScfToFrep.run(&mut ctx, &r, m).unwrap();
        assert_eq!(ctx.walk_named(m, rv_scf::FOR).len(), 1);
    }

    #[test]
    fn oversized_body_is_kept() {
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "f", &[]);
        let lb = rv::li(&mut ctx, entry, 0);
        let ub = rv::li(&mut ctx, entry, 4);
        let step = rv::li(&mut ctx, entry, 1);
        let ft0 = rv::get_register(&mut ctx, entry, Type::FpRegister(Some(FpReg::ft(0))));
        mlb_riscv::rv_scf::build_for(&mut ctx, entry, lb, ub, step, vec![], |ctx, body, _iv, _| {
            for _ in 0..mlb_isa::FREP_MAX_SEQUENCE + 1 {
                let _ = rv::fp_binary(ctx, body, rv::FADD_D, ft0, ft0);
            }
            vec![]
        });
        rv_func::build_ret(&mut ctx, entry);
        RvScfToFrep.run(&mut ctx, &r, m).unwrap();
        assert_eq!(ctx.walk_named(m, rv_scf::FOR).len(), 1);
    }
}
