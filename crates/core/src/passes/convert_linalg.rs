//! `convert-linalg-to-memref-stream`: rewrites `linalg.generic` and
//! `linalg.fill` into `memref_stream.generic` with explicit iteration
//! bounds (Section 3.4) — the entry of the micro-kernel scheduling
//! pipeline.

use mlb_dialects::{linalg, memref_stream, structured};
use mlb_ir::{AffineMap, Attribute, Context, DialectRegistry, IteratorType, OpId, Pass, PassError};

/// The pass object.
#[derive(Debug, Default)]
pub struct ConvertLinalgToMemrefStream;

impl Pass for ConvertLinalgToMemrefStream {
    fn name(&self) -> &'static str {
        "convert-linalg-to-memref-stream"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        for op in ctx.walk_named(root, linalg::FILL) {
            let result = convert_fill(ctx, op);
            ctx.clear_builder_loc();
            result?;
        }
        for op in ctx.walk_named(root, linalg::GENERIC) {
            let result = convert_generic(ctx, op, self.name());
            ctx.clear_builder_loc();
            result?;
        }
        Ok(())
    }
}

/// `linalg.fill(value, target)` becomes a parallel `memref_stream.generic`
/// over the target with an identity map, yielding the fill value.
fn convert_fill(ctx: &mut Context, op: OpId) -> Result<(), PassError> {
    let loc = ctx.effective_loc(op).clone();
    ctx.set_builder_loc(loc);
    let value = ctx.op(op).operands[0];
    let target = ctx.op(op).operands[1];
    let shape = match ctx.value_type(target) {
        mlb_ir::Type::MemRef(m) => m.shape.clone(),
        _ => unreachable!("verified fill"),
    };
    let rank = shape.len();
    let spec = mlb_ir::OpSpec::new(memref_stream::GENERIC)
        .operands(vec![target])
        .attr(
            structured::INDEXING_MAPS,
            Attribute::Array(vec![Attribute::Map(AffineMap::identity(rank))]),
        )
        .attr(structured::ITERATOR_TYPES, Attribute::Iterators(vec![IteratorType::Parallel; rank]))
        .attr(structured::NUM_INPUTS, Attribute::Int(0))
        .attr(structured::BOUNDS, Attribute::DenseI64(shape))
        .regions(1);
    let new = ctx.insert_op_before(op, spec);
    let elem = mlb_dialects::structured::body_element_type(ctx, target);
    let body = ctx.create_block(ctx.op(new).regions[0], vec![elem]);
    ctx.append_op(body, mlb_ir::OpSpec::new(memref_stream::YIELD).operands(vec![value]));
    ctx.erase_op(op);
    Ok(())
}

fn convert_generic(ctx: &mut Context, op: OpId, pass: &str) -> Result<(), PassError> {
    let loc = ctx.effective_loc(op).clone();
    ctx.set_builder_loc(loc);
    let g = linalg::GenericOp(op);
    let bounds = g.bounds(ctx).ok_or_else(|| {
        PassError::new(pass, "cannot infer iteration bounds; add an explicit `bounds` attribute")
    })?;
    let mut attrs = ctx.op(op).attrs.clone();
    attrs.insert(structured::BOUNDS.to_string(), Attribute::DenseI64(bounds));
    let spec = mlb_ir::OpSpec {
        name: memref_stream::GENERIC.to_string(),
        operands: ctx.op(op).operands.clone(),
        result_types: vec![],
        attrs,
        num_regions: 1,
        successors: vec![],
        loc: ctx.op(op).loc.clone(),
    };
    let new = ctx.insert_op_before(op, spec);
    let old_body = g.body(ctx);
    let arg_types: Vec<mlb_ir::Type> =
        ctx.block_args(old_body).iter().map(|&a| ctx.value_type(a).clone()).collect();
    let new_body = ctx.create_block(ctx.op(new).regions[0], arg_types);
    let mut map = std::collections::HashMap::new();
    for (i, &a) in ctx.block_args(old_body).to_vec().iter().enumerate() {
        map.insert(a, ctx.block_args(new_body)[i]);
    }
    ctx.clone_block_ops(old_body, new_body, &mut map, true);
    // Replace the linalg.yield terminator with the memref_stream one.
    let old_yield = ctx.terminator(old_body);
    let yields: Vec<mlb_ir::ValueId> =
        ctx.op(old_yield).operands.iter().map(|v| *map.get(v).unwrap_or(v)).collect();
    ctx.append_op(new_body, mlb_ir::OpSpec::new(memref_stream::YIELD).operands(yields));
    ctx.erase_op(op);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_dialects::{arith, builtin, func};
    use mlb_ir::Type;

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        mlb_dialects::register_all(&mut r);
        r
    }

    #[test]
    fn fill_becomes_parallel_generic() {
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let buf = Type::memref(vec![4, 8], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, top, "z", vec![buf], vec![]);
        let target = ctx.block_args(entry)[0];
        let zero = arith::constant_float(&mut ctx, entry, 0.0, Type::F64);
        linalg::build_fill(&mut ctx, entry, zero, target);
        func::build_return(&mut ctx, entry, vec![]);

        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let generics = ctx.walk_named(m, memref_stream::GENERIC);
        assert_eq!(generics.len(), 1);
        let s = memref_stream::StreamGenericOp(generics[0]);
        assert_eq!(s.bounds(&ctx), vec![4, 8]);
        assert_eq!(s.generic().num_inputs(&ctx), 0);
        assert!(ctx.walk_named(m, linalg::FILL).is_empty());
    }

    #[test]
    fn generic_gains_explicit_bounds() {
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let buf = Type::memref(vec![4, 8], Type::F64);
        let (_f, entry) =
            func::build_func(&mut ctx, top, "sum", vec![buf.clone(), buf.clone(), buf], vec![]);
        let x = ctx.block_args(entry)[0];
        let y = ctx.block_args(entry)[1];
        let z = ctx.block_args(entry)[2];
        let id = AffineMap::identity(2);
        linalg::build_generic(
            &mut ctx,
            entry,
            vec![x, y],
            vec![z],
            vec![id.clone(), id.clone(), id],
            vec![IteratorType::Parallel, IteratorType::Parallel],
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[1])],
        );
        func::build_return(&mut ctx, entry, vec![]);

        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let generics = ctx.walk_named(m, memref_stream::GENERIC);
        assert_eq!(generics.len(), 1);
        let s = memref_stream::StreamGenericOp(generics[0]);
        assert_eq!(s.bounds(&ctx), vec![4, 8]);
        // Body carried over: one addf yielding.
        let body = s.generic().body(&ctx);
        assert_eq!(ctx.block_ops(body).len(), 2);
        assert!(ctx.walk_named(m, linalg::GENERIC).is_empty());
    }
}
