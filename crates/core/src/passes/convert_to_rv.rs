//! `convert-to-rv`: the dialect conversion from the target-agnostic
//! `func`/`scf`/`arith`/`memref`/`memref_stream` level down to the
//! RISC-V dialects (`rv_func`, `rv_scf`, `rv`, `snitch_stream`).
//!
//! Types convert as: `index`/`iN` → `!rv.reg`, floats → `!rv.freg`,
//! `memref` → `!rv.reg` (the base pointer). Streaming regions convert
//! their affine [`StridePattern`]s into hardware [`StreamPattern`]s,
//! applying the paper's pattern optimizations (Section 3.2): unit
//! dimensions vanish, contiguous dimensions collapse, and a zero-stride
//! innermost dimension becomes the SSR repeat counter.

use std::collections::HashMap;

use mlb_dialects::{arith, func, memref, memref_stream, scf};
use mlb_ir::{
    Attribute, BlockId, Context, DialectRegistry, OpId, Pass, PassError, StreamPattern,
    StridePattern, Type, ValueId,
};
use mlb_isa::SSR_MAX_DIMS;
use mlb_riscv::{rv, rv_func, rv_scf, rv_snitch, snitch_stream};

/// The pass object. `pattern_opts` controls the Section 3.2 stream
/// pattern optimizations (contiguous-dimension collapse and the
/// zero-stride repeat counter); disabling them is only useful for the
/// design-choice ablation benches.
#[derive(Debug, Clone, Copy)]
pub struct ConvertToRv {
    /// Apply the stream-pattern optimizations (default true).
    pub pattern_opts: bool,
}

impl Default for ConvertToRv {
    fn default() -> ConvertToRv {
        ConvertToRv { pattern_opts: true }
    }
}

impl Pass for ConvertToRv {
    fn name(&self) -> &'static str {
        "convert-to-rv"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        let top = ctx.sole_block(ctx.op(root).regions[0]);
        let funcs = ctx.walk_named(root, func::FUNC);
        for old in funcs {
            let result = convert_function(ctx, top, old, self.pattern_opts);
            ctx.clear_builder_loc();
            result.map_err(|m| PassError::new(self.name(), m))?;
            ctx.erase_op(old);
        }
        Ok(())
    }
}

fn convert_function(
    ctx: &mut Context,
    top: BlockId,
    old: OpId,
    pattern_opts: bool,
) -> Result<(), String> {
    let name = func::symbol_name(ctx, old).ok_or("function without a name")?.to_string();
    // Provenance: the replacement function and its ABI scaffolding
    // inherit the source function's location; each converted op then
    // narrows the ambient location to its own (see `convert_op`).
    let func_loc = ctx.effective_loc(old).clone();
    ctx.set_builder_loc(func_loc);
    let old_entry = func::entry_block(ctx, old);
    let args: Vec<ValueId> = ctx.block_args(old_entry).to_vec();
    let abi: Vec<rv_func::AbiArg> = args
        .iter()
        .map(|&a| match ctx.value_type(a) {
            Type::F32 | Type::F64 => rv_func::AbiArg::Fp,
            _ => rv_func::AbiArg::Int,
        })
        .collect();
    let (new_func, new_entry) = rv_func::build_func(ctx, top, &name, &abi);
    ctx.move_op_before(new_func, old);
    let mut conv = Converter { map: HashMap::new(), pattern_opts };
    for (i, &a) in args.iter().enumerate() {
        conv.map.insert(a, ctx.block_args(new_entry)[i]);
    }
    conv.convert_block(ctx, old_entry, new_entry)
}

struct Converter {
    map: HashMap<ValueId, ValueId>,
    pattern_opts: bool,
}

impl Converter {
    fn get(&self, v: ValueId) -> Result<ValueId, String> {
        self.map.get(&v).copied().ok_or_else(|| "use of unconverted value".to_string())
    }

    fn convert_block(
        &mut self,
        ctx: &mut Context,
        old: BlockId,
        new: BlockId,
    ) -> Result<(), String> {
        for op in ctx.block_ops(old).to_vec() {
            self.convert_op(ctx, op, new)?;
        }
        Ok(())
    }

    fn convert_op(&mut self, ctx: &mut Context, op: OpId, block: BlockId) -> Result<(), String> {
        let loc = ctx.effective_loc(op).clone();
        ctx.set_builder_loc(loc);
        let name = ctx.op(op).name.clone();
        match name.as_str() {
            arith::CONSTANT => {
                let result = ctx.op(op).results[0];
                let value = ctx.op(op).attr("value").cloned().ok_or("constant without value")?;
                let new = match (value, ctx.value_type(result).clone()) {
                    (Attribute::Int(0), _) => {
                        rv::get_register(ctx, block, Type::IntRegister(Some(mlb_isa::IntReg::ZERO)))
                    }
                    (Attribute::Int(v), _) => rv::li(ctx, block, v),
                    (Attribute::Float(v), ty) => self.materialize_float(ctx, block, v, &ty)?,
                    _ => return Err("unsupported constant".to_string()),
                };
                self.map.insert(result, new);
            }
            _ if arith::FLOAT_BINARY_OPS.contains(&name.as_str()) => {
                let o = ctx.op(op).clone();
                let width = ctx.value_type(o.results[0]).clone();
                let rv_name = float_op_name(&name, &width)?;
                let a = self.get(o.operands[0])?;
                let b = self.get(o.operands[1])?;
                let new = rv::fp_binary(ctx, block, rv_name, a, b);
                self.map.insert(o.results[0], new);
            }
            _ if arith::INT_BINARY_OPS.contains(&name.as_str()) => {
                let o = ctx.op(op).clone();
                let const_of = |ctx: &Context, v: ValueId| {
                    arith::constant_value(ctx, v).and_then(Attribute::as_int)
                };
                let (ca, cb) = (const_of(ctx, o.operands[0]), const_of(ctx, o.operands[1]));
                // Immediate forms where the ISA provides them.
                let new = match (name.as_str(), ca, cb) {
                    (arith::ADDI, _, Some(c)) if in_imm12(c) => {
                        let a = self.get(o.operands[0])?;
                        rv::int_imm(ctx, block, rv::ADDI, a, c)
                    }
                    (arith::ADDI, Some(c), _) if in_imm12(c) => {
                        let b = self.get(o.operands[1])?;
                        rv::int_imm(ctx, block, rv::ADDI, b, c)
                    }
                    (arith::SUBI, _, Some(c)) if in_imm12(-c) => {
                        let a = self.get(o.operands[0])?;
                        rv::int_imm(ctx, block, rv::ADDI, a, -c)
                    }
                    (arith::MULI, _, Some(c)) if c > 0 && c.count_ones() == 1 => {
                        let a = self.get(o.operands[0])?;
                        rv::int_imm(ctx, block, rv::SLLI, a, c.trailing_zeros() as i64)
                    }
                    (arith::MULI, Some(c), _) if c > 0 && c.count_ones() == 1 => {
                        let b = self.get(o.operands[1])?;
                        rv::int_imm(ctx, block, rv::SLLI, b, c.trailing_zeros() as i64)
                    }
                    // Small-popcount constants become shift-add chains,
                    // avoiding a `li` that would stay live across the
                    // whole loop nest (LLVM does the same).
                    (arith::MULI, _, Some(c)) if c > 0 && c.count_ones() <= 4 => {
                        let a = self.get(o.operands[0])?;
                        shift_add_multiply(ctx, block, a, c)
                    }
                    (arith::MULI, Some(c), _) if c > 0 && c.count_ones() <= 4 => {
                        let b = self.get(o.operands[1])?;
                        shift_add_multiply(ctx, block, b, c)
                    }
                    _ => {
                        let rv_name = match name.as_str() {
                            arith::ADDI => rv::ADD,
                            arith::SUBI => rv::SUB,
                            arith::MULI => rv::MUL,
                            _ => unreachable!(),
                        };
                        let a = self.get(o.operands[0])?;
                        let b = self.get(o.operands[1])?;
                        rv::int_binary(ctx, block, rv_name, a, b)
                    }
                };
                self.map.insert(o.results[0], new);
            }
            func::RETURN => {
                if !ctx.op(op).operands.is_empty() {
                    return Err("kernels return through memory, not values".to_string());
                }
                rv_func::build_ret(ctx, block);
            }
            scf::FOR => {
                self.convert_for(ctx, op, block)?;
            }
            memref::LOAD => {
                let o = ctx.op(op).clone();
                let (base, imm) = self.address(ctx, block, o.operands[0], &o.operands[1..])?;
                let elem = ctx.value_type(o.results[0]).clone();
                let op_name = if elem == Type::F32 { rv::FLW } else { rv::FLD };
                let new = rv::fp_load(ctx, block, op_name, base, imm);
                self.map.insert(o.results[0], new);
            }
            memref::STORE => {
                let o = ctx.op(op).clone();
                let value = self.get(o.operands[0])?;
                let (base, imm) = self.address(ctx, block, o.operands[1], &o.operands[2..])?;
                let elem = ctx.value_type(o.operands[0]).clone();
                let op_name = if elem == Type::F32 { rv::FSW } else { rv::FSD };
                rv::fp_store(ctx, block, op_name, value, base, imm);
            }
            memref::OFFSET => {
                let o = ctx.op(op).clone();
                let Type::MemRef(m) = ctx.value_type(o.operands[0]).clone() else {
                    return Err("offset of non-memref".to_string());
                };
                let esz = m.element.size_in_bytes() as i64;
                let base = self.get(o.operands[0])?;
                let new = if let Some(c) =
                    arith::constant_value(ctx, o.operands[1]).and_then(Attribute::as_int)
                {
                    if c == 0 {
                        base
                    } else {
                        let term = rv::li(ctx, block, c * esz);
                        rv::int_binary(ctx, block, rv::ADD, base, term)
                    }
                } else {
                    let off = self.get(o.operands[1])?;
                    let term = if esz.count_ones() == 1 {
                        rv::int_imm(ctx, block, rv::SLLI, off, esz.trailing_zeros() as i64)
                    } else {
                        let c = rv::li(ctx, block, esz);
                        rv::int_binary(ctx, block, rv::MUL, off, c)
                    };
                    rv::int_binary(ctx, block, rv::ADD, base, term)
                };
                self.map.insert(o.results[0], new);
            }
            rv_snitch::HARTID => {
                let o = ctx.op(op).clone();
                let new = rv_snitch::build_hartid(ctx, block, Type::IntRegister(None));
                self.map.insert(o.results[0], new);
            }
            rv_snitch::BARRIER => {
                rv_snitch::build_barrier(ctx, block);
            }
            memref_stream::STREAMING_REGION => {
                self.convert_streaming_region(ctx, op, block)?;
            }
            memref_stream::READ => {
                let o = ctx.op(op).clone();
                let stream = self.get(o.operands[0])?;
                self.map.insert(o.results[0], stream);
            }
            memref_stream::WRITE => {
                let o = ctx.op(op).clone();
                let value = self.get(o.operands[0])?;
                let stream = self.get(o.operands[1])?;
                snitch_stream::build_write(ctx, block, value, stream);
            }
            other => return Err(format!("no conversion for operation `{other}`")),
        }
        Ok(())
    }

    fn materialize_float(
        &mut self,
        ctx: &mut Context,
        block: BlockId,
        v: f64,
        ty: &Type,
    ) -> Result<ValueId, String> {
        if v.fract() != 0.0 || v.abs() > i32::MAX as f64 {
            return Err(format!(
                "only integral float constants are materializable without a constant pool (got {v})"
            ));
        }
        let int = if v == 0.0 {
            rv::get_register(ctx, block, Type::IntRegister(Some(mlb_isa::IntReg::ZERO)))
        } else {
            rv::li(ctx, block, v as i64)
        };
        let cvt = if *ty == Type::F32 { rv::FCVT_S_W } else { rv::FCVT_D_W };
        let op = ctx.append_op(
            block,
            mlb_ir::OpSpec::new(cvt).operands(vec![int]).results(vec![rv::freg()]),
        );
        Ok(ctx.op(op).results[0])
    }

    /// Computes the base register and constant byte offset for a memref
    /// access, folding constant indices into the immediate.
    fn address(
        &mut self,
        ctx: &mut Context,
        block: BlockId,
        memref_value: ValueId,
        indices: &[ValueId],
    ) -> Result<(ValueId, i64), String> {
        let Type::MemRef(m) = ctx.value_type(memref_value).clone() else {
            return Err("address of non-memref".to_string());
        };
        let esz = m.element.size_in_bytes() as i64;
        let strides = m.element_strides();
        let mut base = self.get(memref_value)?;
        let mut imm = 0i64;
        for (&index, &stride) in indices.iter().zip(&strides) {
            let byte_stride = stride * esz;
            if let Some(c) = arith::constant_value(ctx, index).and_then(Attribute::as_int) {
                imm += c * byte_stride;
                continue;
            }
            let idx = self.get(index)?;
            let term = if byte_stride.count_ones() == 1 {
                rv::int_imm(ctx, block, rv::SLLI, idx, byte_stride.trailing_zeros() as i64)
            } else if byte_stride > 0 && byte_stride.count_ones() <= 4 {
                shift_add_multiply(ctx, block, idx, byte_stride)
            } else {
                let c = rv::li(ctx, block, byte_stride);
                rv::int_binary(ctx, block, rv::MUL, idx, c)
            };
            base = rv::int_binary(ctx, block, rv::ADD, base, term);
        }
        Ok((base, imm))
    }

    fn convert_for(&mut self, ctx: &mut Context, op: OpId, block: BlockId) -> Result<(), String> {
        let for_op = scf::ForOp(op);
        let lb = self.get(for_op.lower_bound(ctx))?;
        let ub = self.get(for_op.upper_bound(ctx))?;
        let step = self.get(for_op.step(ctx))?;
        let inits = for_op
            .iter_inits(ctx)
            .to_vec()
            .into_iter()
            .map(|v| self.get(v))
            .collect::<Result<Vec<_>, _>>()?;
        let result_types: Vec<Type> = inits.iter().map(|&v| ctx.value_type(v).clone()).collect();
        let mut operands = vec![lb, ub, step];
        operands.extend(inits);
        let new = ctx.append_op(
            block,
            mlb_ir::OpSpec::new(rv_scf::FOR)
                .operands(operands)
                .results(result_types.clone())
                .regions(1),
        );
        let mut arg_types = vec![Type::IntRegister(None)];
        arg_types.extend(result_types);
        let new_body = ctx.create_block(ctx.op(new).regions[0], arg_types);
        let old_body = for_op.body(ctx);
        // Map induction variable and iteration args.
        for (i, &a) in ctx.block_args(old_body).to_vec().iter().enumerate() {
            self.map.insert(a, ctx.block_args(new_body)[i]);
        }
        // Convert body ops except the terminator, then the yield.
        let body_ops = ctx.block_ops(old_body).to_vec();
        for &bop in &body_ops[..body_ops.len() - 1] {
            self.convert_op(ctx, bop, new_body)?;
        }
        let yield_op = ctx.terminator(old_body);
        let yields = ctx
            .op(yield_op)
            .operands
            .iter()
            .map(|&v| self.get(v))
            .collect::<Result<Vec<_>, _>>()?;
        ctx.append_op(new_body, mlb_ir::OpSpec::new(rv_scf::YIELD).operands(yields));
        for (i, &r) in ctx.op(op).results.to_vec().iter().enumerate() {
            self.map.insert(r, ctx.op(new).results[i]);
        }
        Ok(())
    }

    fn convert_streaming_region(
        &mut self,
        ctx: &mut Context,
        op: OpId,
        block: BlockId,
    ) -> Result<(), String> {
        let region = memref_stream::StreamingRegionOp(op);
        let num_inputs = region.num_inputs(ctx);
        let memrefs = region.memrefs(ctx).to_vec();
        let offsets = region.offsets(ctx).map(<[ValueId]>::to_vec);
        let patterns = region.patterns(ctx);

        // Base pointers, with element offsets folded in.
        let mut bases = Vec::new();
        for (i, &mr) in memrefs.iter().enumerate() {
            let Type::MemRef(m) = ctx.value_type(mr).clone() else {
                return Err("streamed operand is not a memref".to_string());
            };
            let esz = m.element.size_in_bytes() as i64;
            let mut base = self.get(mr)?;
            if let Some(offsets) = &offsets {
                let off = offsets[i];
                let is_zero =
                    arith::constant_value(ctx, off).and_then(Attribute::as_int) == Some(0);
                if !is_zero {
                    let off_reg = self.get(off)?;
                    let bytes = if esz.count_ones() == 1 {
                        rv::int_imm(ctx, block, rv::SLLI, off_reg, esz.trailing_zeros() as i64)
                    } else {
                        let c = rv::li(ctx, block, esz);
                        rv::int_binary(ctx, block, rv::MUL, off_reg, c)
                    };
                    base = rv::int_binary(ctx, block, rv::ADD, base, bytes);
                }
            }
            bases.push(base);
        }

        // Hardware patterns plus any constant map offsets, folded into
        // the base pointers below.
        let hw = memrefs
            .iter()
            .zip(&patterns)
            .map(|(&mr, p)| {
                let Type::MemRef(m) = ctx.value_type(mr).clone() else {
                    return Err("streamed operand is not a memref".to_string());
                };
                hardware_pattern_with(p, &m, self.pattern_opts)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let hw_patterns: Vec<StreamPattern> = hw.iter().map(|(p, _)| p.clone()).collect();
        for (i, (_, byte_off)) in hw.iter().enumerate() {
            if *byte_off != 0 {
                let adjusted = rv::int_imm(ctx, block, rv::ADDI, bases[i], *byte_off);
                bases[i] = adjusted;
            }
        }

        let input_ptrs = bases[..num_inputs].to_vec();
        let output_ptrs = bases[num_inputs..].to_vec();
        let old_body = region.body(ctx);
        let old_args = ctx.block_args(old_body).to_vec();
        let mut inner_err = Ok(());
        let new_region = snitch_stream::build_streaming_region(
            ctx,
            block,
            input_ptrs,
            output_ptrs,
            hw_patterns,
            |ctx, body, streams| {
                for (i, &a) in old_args.iter().enumerate() {
                    self.map.insert(a, streams[i]);
                }
                inner_err = self.convert_block(ctx, old_body, body);
            },
        );
        let _ = new_region;
        inner_err
    }
}

fn float_op_name(name: &str, ty: &Type) -> Result<&'static str, String> {
    // `ty` is the *pre-conversion* float type of the result.
    let f32_t = matches!(ty, Type::F32);
    match (name, f32_t) {
        (arith::ADDF, false) => Ok(rv::FADD_D),
        (arith::SUBF, false) => Ok(rv::FSUB_D),
        (arith::MULF, false) => Ok(rv::FMUL_D),
        (arith::DIVF, false) => Ok(rv::FDIV_D),
        (arith::MAXIMUMF, false) => Ok(rv::FMAX_D),
        (arith::ADDF, true) => Ok(rv::FADD_S),
        (arith::SUBF, true) => Ok(rv::FSUB_S),
        (arith::MULF, true) => Ok(rv::FMUL_S),
        (arith::MAXIMUMF, true) => Ok(rv::FMAX_S),
        (other, _) => Err(format!("no RISC-V lowering for `{other}` at this type")),
    }
}

/// Converts an affine [`StridePattern`] into the hardware
/// [`StreamPattern`] plus the constant byte offset of the map (added to
/// the base pointer by the caller), applying the Section 3.2
/// optimizations.
///
/// # Errors
///
/// Fails if the pattern is non-linear or needs more than
/// [`SSR_MAX_DIMS`] hardware dimensions after simplification.
pub fn hardware_pattern(
    pattern: &StridePattern,
    memref_ty: &mlb_ir::MemRefType,
) -> Result<(StreamPattern, i64), String> {
    hardware_pattern_with(pattern, memref_ty, true)
}

/// [`hardware_pattern`] with the Section 3.2 optimizations toggleable.
///
/// # Errors
///
/// Same as [`hardware_pattern`].
pub fn hardware_pattern_with(
    pattern: &StridePattern,
    memref_ty: &mlb_ir::MemRefType,
    optimize: bool,
) -> Result<(StreamPattern, i64), String> {
    if !pattern.index_map.is_linear() {
        return Err("stream access pattern must be linear".to_string());
    }
    let esz = memref_ty.element.size_in_bytes() as i64;
    let mem_strides = memref_ty.element_strides();
    // Constant term of the map: the byte offset of iteration (0, .., 0).
    let at_zero = pattern.index_map.eval(&vec![0; pattern.ub.len()], &[]);
    let base_offset: i64 = at_zero.iter().zip(&mem_strides).map(|(i, s)| i * s).sum::<i64>() * esz;
    let n = pattern.ub.len();
    // Innermost-first logical (ub, byte stride) pairs.
    let mut dims: Vec<(i64, i64)> = (0..n)
        .rev()
        .map(|d| {
            let coeffs = pattern.index_map.dim_coefficients(d);
            let stride: i64 =
                coeffs.iter().zip(&mem_strides).map(|(c, s)| c * s).sum::<i64>() * esz;
            (pattern.ub[d], stride)
        })
        .collect();

    // Unit dimensions are no-ops.
    dims.retain(|&(b, _)| b != 1);
    // Zero-stride innermost dimensions become the repeat counter
    // ("a stride of 0 in the last dimension represents a repeated memory
    // access to the same location").
    let mut repeat: i64 = 1;
    if optimize {
        while let Some(&(b, 0)) = dims.first() {
            repeat *= b;
            dims.remove(0);
        }
        // Contiguous adjacent dimensions collapse ("detect and remove
        // contiguous accesses").
        let mut i = 0;
        while i + 1 < dims.len() {
            let (b0, s0) = dims[i];
            let (b1, s1) = dims[i + 1];
            if s1 == s0 * b0 {
                dims[i] = (b0 * b1, s0);
                dims.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }
    if dims.is_empty() {
        dims.push((1, 0));
    }
    if dims.len() > SSR_MAX_DIMS {
        return Err(format!(
            "access pattern needs {} dimensions; the SSRs support {SSR_MAX_DIMS}",
            dims.len()
        ));
    }
    let (ub, strides): (Vec<i64>, Vec<i64>) = dims.into_iter().unzip();
    Ok((StreamPattern::from_logical(ub, strides, repeat - 1), base_offset))
}

/// Whether `c` fits a 12-bit signed RISC-V immediate.
fn in_imm12(c: i64) -> bool {
    (-2048..2048).contains(&c)
}

/// `x * c` for a positive constant, as one shift per set bit combined
/// with adds.
fn shift_add_multiply(ctx: &mut Context, block: BlockId, x: ValueId, c: i64) -> ValueId {
    debug_assert!(c > 0);
    let mut acc: Option<ValueId> = None;
    for bit in 0..63 {
        if c & (1 << bit) == 0 {
            continue;
        }
        let term = if bit == 0 { x } else { rv::int_imm(ctx, block, rv::SLLI, x, bit) };
        acc = Some(match acc {
            None => term,
            Some(a) => rv::int_binary(ctx, block, rv::ADD, a, term),
        });
    }
    acc.expect("at least one bit set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_ir::{AffineExpr, AffineMap, MemRefType};

    #[test]
    fn contiguous_matrix_walk_collapses_to_one_dim() {
        // B(200x5) walked column-inner then row: (k, n) over [200, 5]
        // with map (d0, d1) -> (d0, d1): innermost stride 8, outer 40 ==
        // 5*8: fully contiguous -> one dimension of 1000 elements.
        let m = MemRefType::new(vec![200, 5], Type::F64);
        let p = StridePattern::new(vec![200, 5], AffineMap::identity(2));
        let (hw, off) = hardware_pattern(&p, &m).unwrap();
        assert_eq!(off, 0);
        assert_eq!(hw.ub, vec![1000]);
        assert_eq!(hw.strides, vec![8]);
        assert_eq!(hw.repeat, 0);
    }

    #[test]
    fn zero_stride_innermost_becomes_repeat() {
        // X(200) with map (d0, d1) -> (d0) over bounds [200, 5]: the
        // innermost (d1) does not move: each element delivered 5 times.
        let m = MemRefType::new(vec![200], Type::F64);
        let map = AffineMap::new(2, 0, vec![AffineExpr::dim(0)]);
        let p = StridePattern::new(vec![200, 5], map);
        let (hw, _off) = hardware_pattern(&p, &m).unwrap();
        assert_eq!(hw.ub, vec![200]);
        assert_eq!(hw.strides, vec![8]);
        assert_eq!(hw.repeat, 4);
    }

    #[test]
    fn unit_dims_are_dropped() {
        let m = MemRefType::new(vec![1, 16], Type::F64);
        let p = StridePattern::new(vec![1, 16], AffineMap::identity(2));
        let (hw, _off) = hardware_pattern(&p, &m).unwrap();
        assert_eq!(hw.ub, vec![16]);
        assert_eq!(hw.strides, vec![8]);
    }

    #[test]
    fn conv_window_pattern_has_hardware_strides() {
        // X((H+2)x(W+2)) accessed at (h + kh, 4*wo + wi + kw) over
        // iteration dims [wo, kh, kw, wi] (the region sits inside the h
        // loop, which was zeroed out of the map).
        let h_plus = 6i64;
        let w_plus = 6i64;
        let m = MemRefType::new(vec![h_plus, w_plus], Type::F64);
        let map = AffineMap::new(
            4,
            0,
            vec![
                AffineExpr::dim(1), // kh
                AffineExpr::dim(0).mul_const(4).add(AffineExpr::dim(3)).add(AffineExpr::dim(2)),
            ],
        );
        let p = StridePattern::new(vec![1, 3, 3, 4], map);
        let (hw, _off) = hardware_pattern(&p, &m).unwrap();
        // Innermost first: wi (4 x 8B), kw (3 x 8B), kh (3 x 48B), wo
        // dropped (bound 1).
        assert_eq!(hw.ub, vec![4, 3, 3]);
        assert_eq!(hw.rank(), 3);
        // Cross-check the generated addresses against the affine map.
        let offsets = hw.offsets();
        let mut k = 0;
        for kh in 0..3 {
            for kw in 0..3 {
                for wi in 0..4 {
                    let expect = (kh * w_plus + wi + kw) * 8;
                    assert_eq!(offsets[k], expect, "at kh={kh} kw={kw} wi={wi}");
                    k += 1;
                }
            }
        }
    }

    #[test]
    fn too_many_dims_is_an_error() {
        let m = MemRefType::new(vec![2, 3, 5, 7, 11], Type::F64);
        let p = StridePattern::new(vec![2, 3, 5, 7, 11], AffineMap::identity(5));
        // Strides: innermost 8 contiguous all the way up -> collapses to
        // one dim, so use a transposed map to defeat collapsing.
        let map = AffineMap::new(
            5,
            0,
            vec![
                AffineExpr::dim(4),
                AffineExpr::dim(2),
                AffineExpr::dim(0),
                AffineExpr::dim(3),
                AffineExpr::dim(1),
            ],
        );
        let p2 = StridePattern::new(vec![2, 3, 5, 7, 11], map);
        assert!(hardware_pattern(&p, &m).is_ok());
        assert!(hardware_pattern(&p2, &m).is_err());
    }
}
