//! `sequential-unroll`: LLVM-style sequential unrolling of innermost
//! loops, used by the Clang-like comparison flow. Unlike unroll-and-jam
//! this happens *after* lowering to loops and keeps the iterations'
//! dependency chains intact — it removes branch overhead but cannot hide
//! FPU latency, which is why the comparison flows plateau (Section 4.4).

use mlb_dialects::{arith, scf};
use mlb_ir::{Attribute, Context, DialectRegistry, OpId, Pass, PassError, ValueId};

/// The pass object.
#[derive(Debug, Clone)]
pub struct SequentialUnroll {
    /// Replication factor.
    pub factor: i64,
}

impl Default for SequentialUnroll {
    fn default() -> SequentialUnroll {
        SequentialUnroll { factor: 4 }
    }
}

impl Pass for SequentialUnroll {
    fn name(&self) -> &'static str {
        "sequential-unroll"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        for op in ctx.walk_named(root, scf::FOR) {
            if ctx.is_alive(op) {
                try_unroll(ctx, op, self.factor);
                ctx.clear_builder_loc();
            }
        }
        Ok(())
    }
}

fn const_of(ctx: &Context, v: ValueId) -> Option<i64> {
    arith::constant_value(ctx, v).and_then(Attribute::as_int)
}

fn try_unroll(ctx: &mut Context, op: OpId, factor: i64) -> bool {
    // New scaffolding (step constant, iv offsets, the replacement loop)
    // is attributed to the loop being unrolled; cloned body ops keep
    // their own locations.
    let loc = ctx.effective_loc(op).clone();
    ctx.set_builder_loc(loc);
    let for_op = scf::ForOp(op);
    // Innermost loops only, no loop-carried state beyond what unrolling
    // can rethread, constant bounds with a divisible trip count.
    let body = for_op.body(ctx);
    if ctx.block_ops(body).iter().any(|&o| !ctx.op(o).regions.is_empty()) {
        return false;
    }
    let (Some(lb), Some(ub), Some(step)) = (
        const_of(ctx, for_op.lower_bound(ctx)),
        const_of(ctx, for_op.upper_bound(ctx)),
        const_of(ctx, for_op.step(ctx)),
    ) else {
        return false;
    };
    if step != 1 {
        return false;
    }
    let trip = ub - lb;
    // Small fixed-trip loops unroll fully (LLVM does the same for the
    // 3x3 pooling windows); otherwise the trip must divide evenly.
    let factor = if trip > 0 && trip <= factor { trip } else { factor };
    if trip < factor || trip % factor != 0 {
        return false;
    }

    // New loop with step = factor and a body that repeats the original
    // computation `factor` times at iv + k.
    let inits = for_op.iter_inits(ctx).to_vec();
    let parent = ctx.op(op).parent.expect("attached");
    let step_c = {
        let c = ctx.insert_op_before(
            op,
            mlb_ir::OpSpec::new(arith::CONSTANT)
                .attr("value", Attribute::Int(factor))
                .results(vec![mlb_ir::Type::Index]),
        );
        ctx.op(c).results[0]
    };
    let old_yield = ctx.terminator(body);
    let old_yield_operands = ctx.op(old_yield).operands.clone();
    let old_iv = for_op.induction_var(ctx);
    let old_iter_args = for_op.iter_args(ctx).to_vec();
    let body_ops: Vec<OpId> = {
        let ops = ctx.block_ops(body).to_vec();
        ops[..ops.len() - 1].to_vec()
    };

    let new_loop = scf::build_for(
        ctx,
        parent,
        for_op.lower_bound(ctx),
        for_op.upper_bound(ctx),
        step_c,
        inits,
        |ctx, new_body, iv, iter_args| {
            let mut carried: Vec<ValueId> = iter_args.to_vec();
            for k in 0..factor {
                let mut map = std::collections::HashMap::new();
                let iv_k = if k == 0 {
                    iv
                } else {
                    let c = ctx.append_op(
                        new_body,
                        mlb_ir::OpSpec::new(arith::CONSTANT)
                            .attr("value", Attribute::Int(k))
                            .results(vec![mlb_ir::Type::Index]),
                    );
                    let cv = ctx.op(c).results[0];
                    arith::binary(ctx, new_body, arith::ADDI, iv, cv)
                };
                map.insert(old_iv, iv_k);
                for (arg, value) in old_iter_args.iter().zip(&carried) {
                    map.insert(*arg, *value);
                }
                for &bop in &body_ops {
                    ctx.clone_op_into(bop, new_body, &mut map);
                }
                carried = old_yield_operands.iter().map(|v| *map.get(v).unwrap_or(v)).collect();
            }
            carried
        },
    );
    // Rewire results and move the new loop into the old one's position.
    for (i, &result) in ctx.op(op).results.to_vec().iter().enumerate() {
        let new = ctx.op(new_loop.0).results[i];
        ctx.replace_all_uses(result, new);
    }
    ctx.move_op_before(new_loop.0, op);
    ctx.erase_op(op);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_dialects::{builtin, func, memref};
    use mlb_ir::Type;

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        mlb_dialects::register_all(&mut r);
        r
    }

    #[test]
    fn divisible_loop_unrolls_by_four() {
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let buf = Type::memref(vec![16], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, top, "f", vec![buf], vec![]);
        let x = ctx.block_args(entry)[0];
        let lb = arith::constant_index(&mut ctx, entry, 0);
        let ub = arith::constant_index(&mut ctx, entry, 16);
        let step = arith::constant_index(&mut ctx, entry, 1);
        scf::build_for(&mut ctx, entry, lb, ub, step, vec![], |ctx, body, iv, _| {
            let v = memref::build_load(ctx, body, x, vec![iv]);
            let d = arith::binary(ctx, body, arith::ADDF, v, v);
            memref::build_store(ctx, body, d, x, vec![iv]);
            vec![]
        });
        func::build_return(&mut ctx, entry, vec![]);

        SequentialUnroll::default().run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let loops = ctx.walk_named(m, scf::FOR);
        assert_eq!(loops.len(), 1);
        // 4 loads in the body now.
        let body = scf::ForOp(loops[0]).body(&ctx);
        let loads = ctx.block_ops(body).iter().filter(|&&o| ctx.op(o).name == memref::LOAD).count();
        assert_eq!(loads, 4);
    }

    #[test]
    fn indivisible_loop_is_kept() {
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let (_f, entry) = func::build_func(&mut ctx, top, "f", vec![], vec![]);
        let lb = arith::constant_index(&mut ctx, entry, 0);
        let ub = arith::constant_index(&mut ctx, entry, 7);
        let step = arith::constant_index(&mut ctx, entry, 1);
        scf::build_for(&mut ctx, entry, lb, ub, step, vec![], |_, _, _, _| vec![]);
        func::build_return(&mut ctx, entry, vec![]);
        SequentialUnroll::default().run(&mut ctx, &r, m).unwrap();
        let loops = ctx.walk_named(m, scf::FOR);
        assert_eq!(loops.len(), 1);
        assert_eq!(
            const_of(&ctx, scf::ForOp(loops[0]).step(&ctx)),
            Some(1),
            "loop must not be rewritten"
        );
    }
}
