//! `rv-loop-opt`: loop-invariant code motion and induction-variable
//! strength reduction on `rv_scf` loops.
//!
//! These are the standard optimizations the LLVM backend applies to the
//! comparison flows of the evaluation (Section 4.4): without them the
//! naive per-iteration address arithmetic would make the MLIR-like and
//! Clang-like flows unrealistically slow. They are deliberately *not*
//! part of the multi-level flow's own pipeline — there the streams
//! eliminate address arithmetic altogether.

use mlb_ir::{Attribute, Context, DialectRegistry, OpId, Pass, PassError, Type, ValueId};
use mlb_riscv::{rv, rv_scf};

/// The pass object.
#[derive(Debug, Default)]
pub struct RvLoopOptimize;

impl Pass for RvLoopOptimize {
    fn name(&self) -> &'static str {
        "rv-loop-opt"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        // Innermost-first so hoisted code can keep moving outwards.
        let mut loops = ctx.walk_named(root, rv_scf::FOR);
        loops.reverse();
        for op in loops {
            if ctx.is_alive(op) {
                hoist_invariants(ctx, op);
            }
        }
        // Merge the duplicates the hoisting surfaced *before* strength
        // reduction, so equal bases share one carried pointer.
        for block in all_blocks(ctx, root) {
            local_cse(ctx, block);
        }
        // Strength reduction only targets innermost loops: carried
        // pointers in every level of a deep nest would exceed the
        // spill-free register budget.
        for op in ctx.walk_named(root, rv_scf::FOR) {
            if !ctx.is_alive(op) {
                continue;
            }
            let body = rv_scf::RvForOp(op).body(ctx);
            let innermost = ctx.block_ops(body).iter().all(|&o| ctx.op(o).name != rv_scf::FOR);
            if innermost {
                strength_reduce(ctx, op);
            }
        }
        // A final cleanup round.
        for block in all_blocks(ctx, root) {
            local_cse(ctx, block);
        }
        Ok(())
    }
}

/// Every block nested under `root`'s functions.
fn all_blocks(ctx: &Context, root: OpId) -> Vec<mlb_ir::BlockId> {
    let mut blocks = Vec::new();
    for func in ctx.walk_named(root, mlb_riscv::rv_func::FUNC) {
        let mut stack = vec![func];
        while let Some(op) = stack.pop() {
            for &region in &ctx.op(op).regions.clone() {
                for &block in ctx.region_blocks(region).to_vec().iter() {
                    blocks.push(block);
                    stack.extend(ctx.block_ops(block).iter().copied());
                }
            }
        }
    }
    blocks
}

/// Common-subexpression elimination within one block for pure integer
/// computations (`li`, `mv`, `add`, `sub`, `mul`, `addi`, `slli`).
fn local_cse(ctx: &mut Context, block: mlb_ir::BlockId) {
    let mut seen: std::collections::HashMap<(String, Vec<ValueId>, String), ValueId> =
        std::collections::HashMap::new();
    for op in ctx.block_ops(block).to_vec() {
        if !ctx.is_alive(op) {
            continue;
        }
        let name = ctx.op(op).name.clone();
        if !matches!(
            name.as_str(),
            rv::LI | rv::MV | rv::ADD | rv::SUB | rv::MUL | rv::ADDI | rv::SLLI
        ) {
            continue;
        }
        // Pinned results carry extra semantics: leave them alone.
        let result = ctx.op(op).results[0];
        if ctx.value_type(result).is_allocated_register() {
            continue;
        }
        let key = (name, ctx.op(op).operands.clone(), format!("{:?}", ctx.op(op).attrs));
        match seen.get(&key) {
            Some(&canonical) => {
                ctx.replace_all_uses(result, canonical);
                ctx.erase_op(op);
            }
            None => {
                seen.insert(key, result);
            }
        }
    }
}

/// Whether `v` is defined outside the region(s) of `loop_op`.
fn defined_outside(ctx: &Context, loop_op: OpId, v: ValueId) -> bool {
    let inner: std::collections::BTreeSet<OpId> = ctx.walk(loop_op).into_iter().collect();
    match ctx.value_kind(v) {
        mlb_ir::ValueKind::OpResult { op, .. } => !inner.contains(&op),
        mlb_ir::ValueKind::BlockArg { block, .. } => {
            // Block args of blocks nested in the loop are inside.
            let mut nested = false;
            for &o in &ctx.walk(loop_op) {
                for &r in &ctx.op(o).regions {
                    if ctx.region_blocks(r).contains(&block) {
                        nested = true;
                    }
                }
            }
            for &r in &ctx.op(loop_op).regions {
                if ctx.region_blocks(r).contains(&block) {
                    nested = true;
                }
            }
            !nested
        }
    }
}

/// Moves pure body operations whose operands are all loop-invariant out
/// in front of the loop.
fn hoist_invariants(ctx: &mut Context, loop_op: OpId) {
    let body = rv_scf::RvForOp(loop_op).body(ctx);
    loop {
        let mut changed = false;
        for op in ctx.block_ops(body).to_vec() {
            let name = ctx.op(op).name.clone();
            let hoistable = matches!(
                name.as_str(),
                rv::LI | rv::MV | rv::ADD | rv::SUB | rv::MUL | rv::ADDI | rv::SLLI
            );
            if !hoistable {
                continue;
            }
            let invariant = ctx.op(op).operands.iter().all(|&v| defined_outside(ctx, loop_op, v));
            if invariant {
                ctx.move_op_before(op, loop_op);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

/// Rewrites `add(base, slli(iv, k))` / `add(base, mul(iv, li c))`
/// addressing (with loop-invariant `base` and the loop's own IV) into a
/// loop-carried pointer that advances by a constant per iteration.
fn strength_reduce(ctx: &mut Context, mut loop_op: OpId) {
    let for_op = rv_scf::RvForOp(loop_op);
    let Some(step) = rv::constant_int_value(ctx, for_op.step(ctx)) else { return };
    let Some(lb) = rv::constant_int_value(ctx, for_op.lower_bound(ctx)) else { return };
    if lb != 0 {
        return;
    }
    let iv = for_op.induction_var(ctx);
    let body = for_op.body(ctx);
    // One carried pointer per (base, scale): unrolled bodies compute the
    // same base address several times with different folded immediates.
    let mut pointers: std::collections::HashMap<(ValueId, i64), ValueId> =
        std::collections::HashMap::new();

    for op in ctx.block_ops(body).to_vec() {
        if !ctx.is_alive(op) || ctx.op(op).name != rv::ADD || ctx.op(op).parent != Some(body) {
            continue;
        }
        // Pointer setup and advance ops inherit the location of the
        // address computation they replace.
        let op_loc = ctx.effective_loc(op).clone();
        ctx.set_builder_loc(op_loc);
        let (a, b) = (ctx.op(op).operands[0], ctx.op(op).operands[1]);
        // Identify base (invariant) and scaled-IV side: `slli(iv, k)`,
        // `mul(iv, c)`, the unrolled-body form `slli(addi(iv, j), k)`
        // whose constant part folds into the memory-access immediates,
        // and the window form `slli(add(iv, w), k)` with loop-invariant
        // `w`, whose contribution joins the pointer's initial value.
        let scaled = |ctx: &Context, v: ValueId| -> Option<(i64, i64, Option<ValueId>)> {
            let def = ctx.defining_op(v)?;
            if ctx.op(def).parent != Some(body) || ctx.uses(v).len() != 1 {
                return None;
            }
            // iv, iv + const, or iv + invariant.
            let iv_plus = |ctx: &Context, x: ValueId| -> Option<(i64, Option<ValueId>)> {
                if x == iv {
                    return Some((0, None));
                }
                let d = ctx.defining_op(x)?;
                match ctx.op(d).name.as_str() {
                    rv::ADDI if ctx.op(d).operands[0] == iv => {
                        let c = ctx.op(d).attr("imm").and_then(Attribute::as_int)?;
                        Some((c, None))
                    }
                    rv::ADD => {
                        let (p, q) = (ctx.op(d).operands[0], ctx.op(d).operands[1]);
                        if p == iv && defined_outside(ctx, loop_op, q) {
                            Some((0, Some(q)))
                        } else if q == iv && defined_outside(ctx, loop_op, p) {
                            Some((0, Some(p)))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            };
            match ctx.op(def).name.as_str() {
                rv::SLLI => {
                    let (j, dynv) = iv_plus(ctx, ctx.op(def).operands[0])?;
                    let k = ctx.op(def).attr("imm").and_then(Attribute::as_int)?;
                    Some((1 << k, j << k, dynv))
                }
                rv::MUL => {
                    let (x, y) = (ctx.op(def).operands[0], ctx.op(def).operands[1]);
                    if let Some((j, dynv)) = iv_plus(ctx, x) {
                        rv::constant_int_value(ctx, y).map(|c| (c, j * c, dynv))
                    } else if let Some((j, dynv)) = iv_plus(ctx, y) {
                        rv::constant_int_value(ctx, x).map(|c| (c, j * c, dynv))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        };
        let (base, scale, offset, dynv, scaled_def) = if defined_outside(ctx, loop_op, a) {
            match scaled(ctx, b) {
                Some((s, off, dynv)) => (a, s, off, dynv, ctx.defining_op(b).unwrap()),
                None => continue,
            }
        } else if defined_outside(ctx, loop_op, b) {
            match scaled(ctx, a) {
                Some((s, off, dynv)) => (b, s, off, dynv, ctx.defining_op(a).unwrap()),
                None => continue,
            }
        } else {
            continue;
        };
        // A dynamic invariant offset folds into the pointer's initial
        // value, computed once in front of the loop. Only powers of two
        // keep this profitable (shift + add).
        let base = match dynv {
            None => base,
            Some(w) if scale.count_ones() == 1 => {
                let shifted = ctx.insert_op_before(
                    loop_op,
                    mlb_ir::OpSpec::new(rv::SLLI)
                        .operands(vec![w])
                        .attr("imm", Attribute::Int(scale.trailing_zeros() as i64))
                        .results(vec![Type::IntRegister(None)]),
                );
                let sv = ctx.op(shifted).results[0];
                let adjusted = ctx.insert_op_before(
                    loop_op,
                    mlb_ir::OpSpec::new(rv::ADD)
                        .operands(vec![base, sv])
                        .results(vec![Type::IntRegister(None)]),
                );
                ctx.op(adjusted).results[0]
            }
            Some(_) => continue,
        };
        let uses = ctx.uses(ctx.op(op).results[0]);
        if uses.is_empty() {
            continue;
        }
        // A constant offset must fold into the users' immediates: every
        // use must be the base operand of a memory access.
        if offset != 0 {
            let all_memory = uses.iter().all(|&(user, idx)| {
                let name = ctx.op(user).name.as_str();
                (rv::is_load(name) && idx == 0)
                    || (name == rv::SW && idx == 1)
                    || (rv::FP_STORES.contains(&name) && idx == 1)
            });
            if !all_memory {
                continue;
            }
            for &(user, _) in &uses {
                let imm = ctx.op(user).attr("imm").and_then(Attribute::as_int).unwrap_or(0);
                ctx.op_mut(user).attrs.insert("imm".into(), Attribute::Int(imm + offset));
            }
        }

        // Thread a pointer through the loop: init = base (lb = 0), the
        // body uses a new block argument, and the yield advances it by
        // `scale * step` per iteration. Identical (base, scale) pairs
        // share one pointer.
        let arg = match pointers.get(&(base, scale)) {
            Some(&arg) => arg,
            None => {
                ctx.push_operand(loop_op, base);
                let arg = ctx.add_block_arg(body, Type::IntRegister(None));
                let yield_op = ctx.terminator(body);
                let next = ctx.insert_op_before(
                    yield_op,
                    mlb_ir::OpSpec::new(rv::ADDI)
                        .operands(vec![arg])
                        .attr("imm", Attribute::Int(scale * step))
                        .results(vec![Type::IntRegister(None)]),
                );
                let next_val = ctx.op(next).results[0];
                ctx.push_operand(yield_op, next_val);
                // The loop op needs a matching (unused) result.
                loop_op = push_loop_result(ctx, loop_op);
                pointers.insert((base, scale), arg);
                arg
            }
        };

        // Replace the address computation with the carried pointer.
        let old = ctx.op(op).results[0];
        ctx.replace_all_uses(old, arg);
        ctx.erase_op(op);
        if !ctx.has_uses(ctx.op(scaled_def).results[0]) {
            ctx.erase_op(scaled_def);
        }
    }
    ctx.clear_builder_loc();
}

/// Rebuilds `loop_op` with one extra integer-register result (matching a
/// freshly added iteration value) and returns the new operation.
fn push_loop_result(ctx: &mut Context, loop_op: OpId) -> OpId {
    let old = ctx.op(loop_op).clone();
    let mut result_types: Vec<Type> =
        old.results.iter().map(|&r| ctx.value_type(r).clone()).collect();
    result_types.push(Type::IntRegister(None));
    let spec = mlb_ir::OpSpec {
        name: old.name.clone(),
        operands: old.operands.clone(),
        result_types,
        attrs: old.attrs.clone(),
        num_regions: 0,
        successors: vec![],
        loc: old.loc.clone(),
    };
    let new = ctx.insert_op_before(loop_op, spec);
    // Transfer the body region wholesale.
    let new_region = ctx.add_region(new);
    for block in ctx.region_blocks(old.regions[0]).to_vec() {
        ctx.move_block_to_region(block, new_region);
    }
    for (i, &r) in old.results.iter().enumerate() {
        let nr = ctx.op(new).results[i];
        ctx.replace_all_uses(r, nr);
    }
    ctx.erase_op(loop_op);
    new
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Context, DialectRegistry, OpId, mlb_ir::BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        r.register(mlb_ir::OpInfo::new("builtin.module"));
        mlb_riscv::register_all(&mut r);
        let m = ctx.create_detached_op(mlb_ir::OpSpec::new("builtin.module").regions(1));
        let top = ctx.create_block(ctx.op(m).regions[0], vec![]);
        (ctx, r, m, top)
    }

    #[test]
    fn invariant_address_parts_hoist() {
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) =
            mlb_riscv::rv_func::build_func(&mut ctx, top, "f", &[mlb_riscv::rv_func::AbiArg::Int]);
        let base = ctx.block_args(entry)[0];
        let lb = rv::li(&mut ctx, entry, 0);
        let ub = rv::li(&mut ctx, entry, 8);
        let step = rv::li(&mut ctx, entry, 1);
        rv_scf::build_for(&mut ctx, entry, lb, ub, step, vec![], |ctx, body, _iv, _| {
            // Loop-invariant: base + 64.
            let off = rv::li(ctx, body, 64);
            let addr = rv::int_binary(ctx, body, rv::ADD, base, off);
            let v = rv::fp_load(ctx, body, rv::FLD, addr, 0);
            rv::fp_store(ctx, body, rv::FSD, v, addr, 8);
            vec![]
        });
        mlb_riscv::rv_func::build_ret(&mut ctx, entry);
        RvLoopOptimize.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let loop_op = ctx.walk_named(m, rv_scf::FOR)[0];
        let body = rv_scf::RvForOp(loop_op).body(&ctx);
        // Only the load, store and yield remain in the body.
        assert_eq!(ctx.block_ops(body).len(), 3, "{}", mlb_ir::print_op(&ctx, m));
    }

    #[test]
    fn scaled_iv_addressing_becomes_carried_pointer() {
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) =
            mlb_riscv::rv_func::build_func(&mut ctx, top, "f", &[mlb_riscv::rv_func::AbiArg::Int]);
        let base = ctx.block_args(entry)[0];
        let lb = rv::li(&mut ctx, entry, 0);
        let ub = rv::li(&mut ctx, entry, 8);
        let step = rv::li(&mut ctx, entry, 1);
        rv_scf::build_for(&mut ctx, entry, lb, ub, step, vec![], |ctx, body, iv, _| {
            let off = rv::int_imm(ctx, body, rv::SLLI, iv, 3);
            let addr = rv::int_binary(ctx, body, rv::ADD, base, off);
            let v = rv::fp_load(ctx, body, rv::FLD, addr, 0);
            rv::fp_store(ctx, body, rv::FSD, v, addr, 1024);
            vec![]
        });
        mlb_riscv::rv_func::build_ret(&mut ctx, entry);
        RvLoopOptimize.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let loop_op = ctx.walk_named(m, rv_scf::FOR)[0];
        let f = rv_scf::RvForOp(loop_op);
        // The loop now carries the pointer.
        assert_eq!(f.iter_args(&ctx).len(), 1);
        let body = f.body(&ctx);
        // slli and add are gone; an addi advances the pointer.
        let names: Vec<String> =
            ctx.block_ops(body).iter().map(|&o| ctx.op(o).name.clone()).collect();
        assert!(!names.contains(&rv::SLLI.to_string()), "{names:?}");
        assert!(names.contains(&rv::ADDI.to_string()));
    }
}
