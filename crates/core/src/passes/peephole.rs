//! RISC-V-level peephole rewrites: fused multiply-add selection and
//! stream-write elision.
//!
//! These are the "simple peephole rewrites for custom optimizations"
//! enabled by the declarative instruction representation (Section 3.2).

use mlb_ir::{
    apply_patterns_greedily, Context, DialectRegistry, OpId, Pass, PassError, RewritePattern, Type,
};
use mlb_riscv::{rv, snitch_stream};

/// The pass object.
#[derive(Debug, Default)]
pub struct RvPeephole;

impl Pass for RvPeephole {
    fn name(&self) -> &'static str {
        "rv-peephole"
    }

    fn run(
        &self,
        ctx: &mut Context,
        registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        apply_patterns_greedily(ctx, registry, root, &[&FuseFmadd, &ElideStreamWrite])
            .map_err(|e| PassError::new(self.name(), e.to_string()))?;
        Ok(())
    }
}

/// `fadd(fmul(a, b), c)` (or with swapped addends) where the product has
/// a single use becomes `fmadd a, b, c`.
struct FuseFmadd;

impl RewritePattern for FuseFmadd {
    fn name(&self) -> &'static str {
        "fuse-fmadd"
    }

    fn anchor_names(&self) -> Option<&'static [&'static str]> {
        Some(&[rv::FADD_D, rv::FADD_S])
    }

    fn match_and_rewrite(&self, ctx: &mut Context, _r: &DialectRegistry, op: OpId) -> bool {
        let (mul_name, fused_name) = match ctx.op(op).name.as_str() {
            rv::FADD_D => (rv::FMUL_D, rv::FMADD_D),
            rv::FADD_S => (rv::FMUL_S, rv::FMADD_S),
            _ => return false,
        };
        let (lhs, rhs) = (ctx.op(op).operands[0], ctx.op(op).operands[1]);
        let pick = |ctx: &Context, v: mlb_ir::ValueId| -> Option<OpId> {
            let def = ctx.defining_op(v)?;
            (ctx.op(def).name == mul_name && ctx.uses(v).len() == 1).then_some(def)
        };
        let (mul, addend) = if let Some(def) = pick(ctx, lhs) {
            (def, rhs)
        } else if let Some(def) = pick(ctx, rhs) {
            (def, lhs)
        } else {
            return false;
        };
        // The product must not already be pinned to a register (e.g. a
        // stream destination) — the fused op replaces it entirely.
        let mul_result = ctx.op(mul).results[0];
        if ctx.value_type(mul_result).is_allocated_register() {
            return false;
        }
        let (a, b) = (ctx.op(mul).operands[0], ctx.op(mul).operands[1]);
        let result_ty = ctx.value_type(ctx.op(op).results[0]).clone();
        let fused = ctx.insert_op_before(
            op,
            mlb_ir::OpSpec::new(fused_name).operands(vec![a, b, addend]).results(vec![result_ty]),
        );
        let new = ctx.op(fused).results[0];
        let old = ctx.op(op).results[0];
        ctx.replace_all_uses(old, new);
        ctx.erase_op(op);
        ctx.erase_op(mul);
        true
    }
}

/// `snitch_stream.write(v, ftN)` where `v` is produced by an FPU
/// instruction in the same block with no other use: retarget the producer
/// straight at the stream register and drop the move.
struct ElideStreamWrite;

impl RewritePattern for ElideStreamWrite {
    fn name(&self) -> &'static str {
        "elide-stream-write"
    }

    fn anchor_names(&self) -> Option<&'static [&'static str]> {
        Some(&[snitch_stream::WRITE])
    }

    fn match_and_rewrite(&self, ctx: &mut Context, _r: &DialectRegistry, op: OpId) -> bool {
        if ctx.op(op).name != snitch_stream::WRITE {
            return false;
        }
        let value = ctx.op(op).operands[0];
        let stream = ctx.op(op).operands[1];
        let Some(def) = ctx.defining_op(value) else { return false };
        if !rv::is_fpu_op(&ctx.op(def).name) || ctx.op(def).name == snitch_stream::WRITE {
            return false;
        }
        if ctx.op(def).parent != ctx.op(op).parent {
            return false;
        }
        if ctx.uses(value).len() != 1 {
            return false;
        }
        if ctx.value_type(value).is_allocated_register() {
            return false;
        }
        let Type::FpRegister(Some(reg)) = ctx.value_type(stream).clone() else {
            return false;
        };
        ctx.set_value_type(value, Type::FpRegister(Some(reg)));
        ctx.erase_op(op);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_ir::OpSpec;
    use mlb_isa::FpReg;
    use mlb_riscv::rv_func;

    fn setup() -> (Context, DialectRegistry, OpId, mlb_ir::BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        r.register(mlb_ir::OpInfo::new("builtin.module"));
        mlb_riscv::register_all(&mut r);
        let m = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let top = ctx.create_block(ctx.op(m).regions[0], vec![]);
        (ctx, r, m, top)
    }

    #[test]
    fn fmadd_fuses_single_use_product() {
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "f", &[rv_func::AbiArg::Int]);
        let base = ctx.block_args(entry)[0];
        let a = rv::fp_load(&mut ctx, entry, rv::FLD, base, 0);
        let b = rv::fp_load(&mut ctx, entry, rv::FLD, base, 8);
        let c = rv::fp_load(&mut ctx, entry, rv::FLD, base, 16);
        let p = rv::fp_binary(&mut ctx, entry, rv::FMUL_D, a, b);
        let s = rv::fp_binary(&mut ctx, entry, rv::FADD_D, c, p);
        rv::fp_store(&mut ctx, entry, rv::FSD, s, base, 24);
        rv_func::build_ret(&mut ctx, entry);

        RvPeephole.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        assert!(ctx.walk_named(m, rv::FMUL_D).is_empty());
        assert!(ctx.walk_named(m, rv::FADD_D).is_empty());
        let fused = ctx.walk_named(m, rv::FMADD_D);
        assert_eq!(fused.len(), 1);
        assert_eq!(ctx.op(fused[0]).operands, vec![a, b, c]);
    }

    #[test]
    fn fmadd_does_not_fuse_multi_use_product() {
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "f", &[rv_func::AbiArg::Int]);
        let base = ctx.block_args(entry)[0];
        let a = rv::fp_load(&mut ctx, entry, rv::FLD, base, 0);
        let p = rv::fp_binary(&mut ctx, entry, rv::FMUL_D, a, a);
        let s = rv::fp_binary(&mut ctx, entry, rv::FADD_D, p, a);
        rv::fp_store(&mut ctx, entry, rv::FSD, p, base, 8);
        rv::fp_store(&mut ctx, entry, rv::FSD, s, base, 16);
        rv_func::build_ret(&mut ctx, entry);
        RvPeephole.run(&mut ctx, &r, m).unwrap();
        assert_eq!(ctx.walk_named(m, rv::FMUL_D).len(), 1);
    }

    #[test]
    fn stream_write_elides_into_producer() {
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "f", &[]);
        let ft0 = rv::get_register(&mut ctx, entry, Type::FpRegister(Some(FpReg::ft(0))));
        let ft1 = rv::get_register(&mut ctx, entry, Type::FpRegister(Some(FpReg::ft(1))));
        let sum = rv::fp_binary(&mut ctx, entry, rv::FADD_D, ft0, ft0);
        snitch_stream::build_write(&mut ctx, entry, sum, ft1);
        rv_func::build_ret(&mut ctx, entry);
        RvPeephole.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        assert!(ctx.walk_named(m, snitch_stream::WRITE).is_empty());
        assert_eq!(*ctx.value_type(sum), Type::FpRegister(Some(FpReg::ft(1))));
    }

    #[test]
    fn stream_write_of_loop_result_is_kept() {
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "f", &[]);
        let ft1 = rv::get_register(&mut ctx, entry, Type::FpRegister(Some(FpReg::ft(1))));
        let lb = rv::li(&mut ctx, entry, 0);
        let ub = rv::li(&mut ctx, entry, 4);
        let step = rv::li(&mut ctx, entry, 1);
        let init = rv::fp_binary(&mut ctx, entry, rv::FADD_D, ft1, ft1);
        let loop_op = mlb_riscv::rv_scf::build_for(
            &mut ctx,
            entry,
            lb,
            ub,
            step,
            vec![init],
            |ctx, body, _iv, args| vec![rv::fp_binary(ctx, body, rv::FADD_D, args[0], args[0])],
        );
        let acc = ctx.op(loop_op.0).results[0];
        snitch_stream::build_write(&mut ctx, entry, acc, ft1);
        rv_func::build_ret(&mut ctx, entry);
        RvPeephole.run(&mut ctx, &r, m).unwrap();
        // The accumulator comes from a loop, not an FPU op: keep the move.
        assert_eq!(ctx.walk_named(m, snitch_stream::WRITE).len(), 1);
    }
}
