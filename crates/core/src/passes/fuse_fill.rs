//! `memref-stream-fuse-fill`: fuses the zero- (or constant-)
//! initialization of an output buffer into the consuming reduction
//! generic (Table 3, "Fuse Fill").
//!
//! After fusion the reduction can ignore the previous contents of its
//! result buffer: the accumulators start from the fused initial value
//! instead of being loaded, making the output write-only and therefore
//! streamable (Section 4.4).

use mlb_dialects::memref_stream;
use mlb_ir::{Attribute, Context, DialectRegistry, IteratorType, OpId, Pass, PassError};

/// The pass object.
#[derive(Debug, Default)]
pub struct MemrefStreamFuseFill;

impl Pass for MemrefStreamFuseFill {
    fn name(&self) -> &'static str {
        "memref-stream-fuse-fill"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        // Find (fill-generic, reduction-generic) pairs over the same
        // output inside the same block, with the fill directly preceding.
        let candidates = ctx.walk_named(root, memref_stream::GENERIC);
        for op in candidates {
            if !ctx.is_alive(op) {
                continue;
            }
            try_fuse(ctx, op);
        }
        Ok(())
    }
}

/// Whether `op` is a pure fill: a parallel generic with no inputs whose
/// body just yields a value defined outside the body.
fn fill_value(ctx: &Context, op: OpId) -> Option<mlb_ir::ValueId> {
    let s = memref_stream::StreamGenericOp(op);
    if s.generic().num_inputs(ctx) != 0 || s.num_inits(ctx) != 0 {
        return None;
    }
    if !s.generic().iterator_types(ctx).iter().all(|&it| it == IteratorType::Parallel) {
        return None;
    }
    let body = s.generic().body(ctx);
    let ops = ctx.block_ops(body);
    if ops.len() != 1 {
        return None;
    }
    let yielded = ctx.op(ops[0]).operands[0];
    // The value must come from outside the body (a constant or argument).
    match ctx.value_kind(yielded) {
        mlb_ir::ValueKind::BlockArg { block, .. } if block == body => None,
        _ => Some(yielded),
    }
}

fn try_fuse(ctx: &mut Context, consumer: OpId) {
    let s = memref_stream::StreamGenericOp(consumer);
    if s.num_inits(ctx) != 0 {
        return;
    }
    // Only reductions benefit; the init seeds the accumulators.
    let has_reduction = s.generic().iterator_types(ctx).contains(&IteratorType::Reduction);
    if !has_reduction {
        return;
    }
    let outputs: Vec<_> = s.outputs(ctx).to_vec();
    if outputs.len() != 1 {
        return;
    }
    // The directly preceding op in the same block must fill this output.
    let pos = ctx.op_position(consumer);
    if pos == 0 {
        return;
    }
    let block = ctx.op(consumer).parent.expect("attached");
    let prev = ctx.block_ops(block)[pos - 1];
    if ctx.op(prev).name != memref_stream::GENERIC {
        return;
    }
    let prev_s = memref_stream::StreamGenericOp(prev);
    if prev_s.outputs(ctx) != [outputs[0]] {
        return;
    }
    // Single-use legality: erasing the fill is only sound when nobody
    // else observes the initialized buffer. A second consumer reading
    // `outputs[0]` would otherwise see uninitialized memory.
    let other_user =
        ctx.user_ops(outputs[0]).iter().any(|&u| u != prev && u != consumer && ctx.is_alive(u));
    if other_user {
        return;
    }
    let Some(value) = fill_value(ctx, prev) else { return };

    // Fuse: append the init operand and erase the fill.
    ctx.push_operand(consumer, value);
    ctx.op_mut(consumer).attrs.insert(memref_stream::NUM_INITS.to_string(), Attribute::Int(1));
    ctx.erase_op(prev);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::convert_linalg::ConvertLinalgToMemrefStream;
    use mlb_dialects::{arith, builtin, func, linalg};
    use mlb_ir::{AffineExpr, AffineMap, Type};

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        mlb_dialects::register_all(&mut r);
        r
    }

    /// Builds fill + matvec-style reduction over the same output.
    fn build_module(ctx: &mut Context) -> OpId {
        let (m, top) = builtin::build_module(ctx);
        let a_ty = Type::memref(vec![4, 8], Type::F64);
        let x_ty = Type::memref(vec![8], Type::F64);
        let z_ty = Type::memref(vec![4], Type::F64);
        let (_f, entry) = func::build_func(ctx, top, "matvec", vec![a_ty, x_ty, z_ty], vec![]);
        let a = ctx.block_args(entry)[0];
        let x = ctx.block_args(entry)[1];
        let z = ctx.block_args(entry)[2];
        let zero = arith::constant_float(ctx, entry, 0.0, Type::F64);
        linalg::build_fill(ctx, entry, zero, z);
        let a_map = AffineMap::identity(2);
        let x_map = AffineMap::new(2, 0, vec![AffineExpr::dim(1)]);
        let z_map = AffineMap::new(2, 0, vec![AffineExpr::dim(0)]);
        linalg::build_generic(
            ctx,
            entry,
            vec![a, x],
            vec![z],
            vec![a_map, x_map, z_map],
            vec![mlb_ir::IteratorType::Parallel, mlb_ir::IteratorType::Reduction],
            None,
            |ctx, body, args| {
                let p = arith::binary(ctx, body, arith::MULF, args[0], args[1]);
                vec![arith::binary(ctx, body, arith::ADDF, p, args[2])]
            },
        );
        func::build_return(ctx, entry, vec![]);
        m
    }

    #[test]
    fn fill_fuses_into_reduction() {
        let mut ctx = Context::new();
        let r = registry();
        let m = build_module(&mut ctx);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        assert_eq!(ctx.walk_named(m, memref_stream::GENERIC).len(), 2);

        MemrefStreamFuseFill.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let generics = ctx.walk_named(m, memref_stream::GENERIC);
        assert_eq!(generics.len(), 1, "fill generic should be erased");
        let s = memref_stream::StreamGenericOp(generics[0]);
        assert_eq!(s.num_inits(&ctx), 1);
        assert_eq!(s.inits(&ctx).len(), 1);
        assert_eq!(s.outputs(&ctx).len(), 1);
        // The init is the zero constant.
        assert_eq!(
            mlb_dialects::arith::constant_value(&ctx, s.inits(&ctx)[0])
                .and_then(Attribute::as_float),
            Some(0.0)
        );
    }

    #[test]
    fn fill_with_two_consumers_is_not_fused() {
        // Regression: a fill whose output feeds TWO reductions must not
        // fuse into the first one — the second would then read an
        // uninitialized buffer.
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let x_ty = Type::memref(vec![8], Type::F64);
        let z_ty = Type::memref(vec![1], Type::F64);
        let (_f, entry) =
            func::build_func(&mut ctx, top, "f", vec![x_ty.clone(), x_ty, z_ty], vec![]);
        let x = ctx.block_args(entry)[0];
        let y = ctx.block_args(entry)[1];
        let z = ctx.block_args(entry)[2];
        let zero = arith::constant_float(&mut ctx, entry, 0.0, Type::F64);
        linalg::build_fill(&mut ctx, entry, zero, z);
        let in_map = AffineMap::identity(1);
        let out_map = AffineMap::new(1, 0, vec![AffineExpr::constant(0)]);
        for input in [x, y] {
            linalg::build_generic(
                &mut ctx,
                entry,
                vec![input],
                vec![z],
                vec![in_map.clone(), out_map.clone()],
                vec![mlb_ir::IteratorType::Reduction],
                None,
                |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[1])],
            );
        }
        func::build_return(&mut ctx, entry, vec![]);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        assert_eq!(ctx.walk_named(m, memref_stream::GENERIC).len(), 3);
        MemrefStreamFuseFill.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        // All three survive: fusing the fill into the first reduction
        // would drop the initialization the second reduction needs.
        let generics = ctx.walk_named(m, memref_stream::GENERIC);
        assert_eq!(generics.len(), 3, "fill feeding two reductions must not fuse");
        for g in generics {
            assert_eq!(memref_stream::StreamGenericOp(g).num_inits(&ctx), 0);
        }
    }

    #[test]
    fn parallel_consumer_is_not_fused() {
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let buf = Type::memref(vec![4], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, top, "f", vec![buf.clone(), buf], vec![]);
        let x = ctx.block_args(entry)[0];
        let z = ctx.block_args(entry)[1];
        let zero = arith::constant_float(&mut ctx, entry, 0.0, Type::F64);
        linalg::build_fill(&mut ctx, entry, zero, z);
        let id = AffineMap::identity(1);
        linalg::build_generic(
            &mut ctx,
            entry,
            vec![x],
            vec![z],
            vec![id.clone(), id],
            vec![mlb_ir::IteratorType::Parallel],
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[0])],
        );
        func::build_return(&mut ctx, entry, vec![]);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        MemrefStreamFuseFill.run(&mut ctx, &r, m).unwrap();
        // Both generics survive: the consumer is parallel (overwrites).
        assert_eq!(ctx.walk_named(m, memref_stream::GENERIC).len(), 2);
    }
}
