//! `memref-stream-fuse-elementwise`: producer-consumer fusion of
//! adjacent element-wise `memref_stream.generic` ops.
//!
//! Generalizes the fuse-fill idea one level up: when a parallel generic
//! writes a temporary buffer that the directly following parallel
//! generic reads point-wise, the two bodies are merged into a single
//! generic and the intermediate store/load round-trip through TCDM
//! disappears. This is the inter-layer fusion a layer graph needs —
//! e.g. `sum` followed by `relu` becomes one streamed kernel.
//!
//! Legality (all required):
//! - both ops are all-parallel generics with no fused inits,
//! - the producer has exactly one output `t`, whose only (live) users
//!   are the producer and the consumer, and the consumer reads `t`
//!   only as an input,
//! - iteration bounds match, and the producer's output map equals the
//!   consumer's map for every `t` input (point-wise correspondence),
//! - `t` is an entry-block argument listed in the enclosing function's
//!   [`mlb_dialects::func::TEMP_ARGS`] attribute — the caller's promise
//!   that the temporary is never read after the call, which is what
//!   makes erasing the producer's write observable-behavior-preserving,
//! - the merged generic keeps at most [`MAX_FUSED_INPUTS`] inputs, so
//!   every operand still rides an SSR data mover — fusing past the
//!   hardware's stream count would trade the eliminated round-trip for
//!   explicit per-element loads (and lose FREP), a net loss.

use std::collections::HashMap;

use mlb_dialects::{func, memref_stream, structured};
use mlb_ir::{
    Attribute, Context, DialectRegistry, IteratorType, OpId, OpSpec, Pass, PassError, ValueId,
    ValueKind,
};
use mlb_isa::NUM_SSR_DATA_MOVERS;

/// Input cap of a fused generic: one SSR data mover stays reserved for
/// the output stream.
pub const MAX_FUSED_INPUTS: usize = NUM_SSR_DATA_MOVERS - 1;

/// The pass object.
#[derive(Debug, Default)]
pub struct MemrefStreamFuseElementwise;

impl Pass for MemrefStreamFuseElementwise {
    fn name(&self) -> &'static str {
        "memref-stream-fuse-elementwise"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        // Fuse to a fixpoint so chains (a -> b -> c) collapse into one
        // generic: each round re-walks because fusion replaces ops.
        loop {
            let mut changed = false;
            for op in ctx.walk_named(root, memref_stream::GENERIC) {
                if ctx.is_alive(op) && try_fuse(ctx, op) {
                    changed = true;
                    break;
                }
            }
            if !changed {
                return Ok(());
            }
        }
    }
}

/// Whether `op` is an all-parallel generic with no fused inits (the
/// shape both fusion endpoints must have).
fn is_elementwise(ctx: &Context, op: OpId) -> bool {
    let s = memref_stream::StreamGenericOp(op);
    s.num_inits(ctx) == 0
        && s.generic().iterator_types(ctx).iter().all(|&it| it == IteratorType::Parallel)
}

/// Whether `value` is an entry-block argument of the enclosing function
/// marked as a scratch temporary via [`func::TEMP_ARGS`].
fn is_temp_arg(ctx: &Context, value: ValueId) -> bool {
    let ValueKind::BlockArg { block, index } = ctx.value_kind(value) else {
        return false;
    };
    let owner = ctx.region_parent(ctx.block_parent(block));
    ctx.op(owner).name == func::FUNC && func::temp_args(ctx, owner).contains(&index)
}

/// Attempts to fuse the generic directly preceding `consumer` into it.
/// Returns whether a rewrite happened.
fn try_fuse(ctx: &mut Context, consumer: OpId) -> bool {
    if !is_elementwise(ctx, consumer) {
        return false;
    }
    // The producer is the nearest preceding generic; ops in between
    // must not touch memory (e.g. body constants hoisted to the entry
    // block), since fusion moves the producer's reads down to the
    // consumer's position.
    let pos = ctx.op_position(consumer);
    let block = ctx.op(consumer).parent.expect("attached");
    let block_ops = ctx.block_ops(block).to_vec();
    let mut producer = None;
    for &prev in block_ops[..pos].iter().rev() {
        if ctx.op(prev).name == memref_stream::GENERIC {
            producer = Some(prev);
            break;
        }
        let touches_memory = ctx
            .op(prev)
            .operands
            .iter()
            .any(|&v| matches!(ctx.value_type(v), mlb_ir::Type::MemRef(_)));
        if touches_memory {
            return false;
        }
    }
    let Some(producer) = producer else { return false };
    if !is_elementwise(ctx, producer) {
        return false;
    }
    let p = memref_stream::StreamGenericOp(producer);
    let c = memref_stream::StreamGenericOp(consumer);
    let p_outputs = p.outputs(ctx);
    if p_outputs.len() != 1 {
        return false;
    }
    let temp = p_outputs[0];
    // The consumer must read the temporary, never write it; nobody else
    // may observe it; and the caller must have marked it as scratch.
    if c.outputs(ctx).contains(&temp)
        || !c.generic().inputs(ctx).contains(&temp)
        || !is_temp_arg(ctx, temp)
    {
        return false;
    }
    if ctx.user_ops(temp).iter().any(|&u| u != producer && u != consumer && ctx.is_alive(u)) {
        return false;
    }
    // Shape compatibility: identical iteration spaces, and the consumer
    // reads the temporary exactly where the producer wrote it.
    if p.bounds(ctx) != c.bounds(ctx) || p.interleave_factor(ctx) != 1 {
        return false;
    }
    let p_maps = p.generic().indexing_maps(ctx);
    let c_maps = c.generic().indexing_maps(ctx);
    let p_out_map = p_maps.last().expect("one output").clone();
    let c_inputs = c.generic().inputs(ctx).to_vec();
    for (i, &input) in c_inputs.iter().enumerate() {
        if input == temp && c_maps[i] != p_out_map {
            return false;
        }
    }
    // Hardware profitability gate: the merged generic must still fit
    // the SSR data movers (inputs + the one output), otherwise stream
    // lowering degrades to explicit loads and fusion hurts.
    let p_input_count = p.generic().inputs(ctx).len();
    let temp_reads = c_inputs.iter().filter(|&&v| v == temp).count();
    if p_input_count + c_inputs.len() - temp_reads > MAX_FUSED_INPUTS {
        return false;
    }
    // The producer must not read back its own output inside the body
    // (its output body argument must be dead).
    let p_body = p.generic().body(ctx);
    let p_body_args = ctx.block_args(p_body).to_vec();
    let p_out_arg = p_body_args[p_maps.len() - 1];
    if ctx.user_ops(p_out_arg).iter().any(|&u| ctx.is_alive(u)) {
        return false;
    }
    fuse(ctx, producer, consumer, temp);
    true
}

/// Builds the merged generic at the consumer's position (so any values
/// defined between the pair still dominate it), then erases both ops.
fn fuse(ctx: &mut Context, producer: OpId, consumer: OpId, temp: ValueId) {
    let p = memref_stream::StreamGenericOp(producer);
    let c = memref_stream::StreamGenericOp(consumer);
    let p_inputs = p.generic().inputs(ctx).to_vec();
    let c_inputs = c.generic().inputs(ctx).to_vec();
    let c_outputs = c.outputs(ctx).to_vec();
    let p_maps = p.generic().indexing_maps(ctx);
    let c_maps = c.generic().indexing_maps(ctx);
    let bounds = c.bounds(ctx);
    let iters = c.generic().iterator_types(ctx);

    // Merged operand order: producer inputs, consumer inputs minus the
    // temporary, consumer outputs. Maps follow the same order.
    let mut operands = p_inputs.clone();
    let mut maps: Vec<Attribute> =
        p_maps[..p_inputs.len()].iter().cloned().map(Attribute::Map).collect();
    let mut kept_c_inputs = Vec::new();
    for (i, &input) in c_inputs.iter().enumerate() {
        if input != temp {
            kept_c_inputs.push(i);
            operands.push(input);
            maps.push(Attribute::Map(c_maps[i].clone()));
        }
    }
    let num_inputs = operands.len();
    operands.extend(c_outputs.iter().copied());
    maps.extend(c_maps[c_inputs.len()..].iter().cloned().map(Attribute::Map));

    let spec = OpSpec::new(memref_stream::GENERIC)
        .operands(operands.clone())
        .attr(structured::INDEXING_MAPS, Attribute::Array(maps))
        .attr(structured::ITERATOR_TYPES, Attribute::Iterators(iters))
        .attr(structured::NUM_INPUTS, Attribute::Int(num_inputs as i64))
        .attr(structured::BOUNDS, Attribute::DenseI64(bounds))
        .regions(1);
    let fused = ctx.insert_op_before(consumer, spec);
    let arg_types: Vec<mlb_ir::Type> =
        operands.iter().map(|&v| structured::body_element_type(ctx, v)).collect();
    let body = ctx.create_block(ctx.op(fused).regions[0], arg_types);
    let body_args = ctx.block_args(body).to_vec();

    // Clone the producer body; its input args map onto the first merged
    // args, its (dead) output arg needs no mapping.
    let p_body = p.generic().body(ctx);
    let p_body_args = ctx.block_args(p_body).to_vec();
    let mut map = HashMap::new();
    for (i, &a) in p_body_args[..p_inputs.len()].iter().enumerate() {
        map.insert(a, body_args[i]);
    }
    ctx.clone_block_ops(p_body, body, &mut map, true);
    let p_yield = ctx.terminator(p_body);
    let produced = ctx.op(p_yield).operands[0];
    let produced = *map.get(&produced).unwrap_or(&produced);

    // Clone the consumer body: `t` input args become the produced value,
    // kept inputs and outputs map positionally onto the merged args.
    let c_body = c.generic().body(ctx);
    let c_body_args = ctx.block_args(c_body).to_vec();
    let mut cmap = HashMap::new();
    for (slot, &i) in kept_c_inputs.iter().enumerate() {
        cmap.insert(c_body_args[i], body_args[p_inputs.len() + slot]);
    }
    for (i, &input) in c_inputs.iter().enumerate() {
        if input == temp {
            cmap.insert(c_body_args[i], produced);
        }
    }
    for (i, &a) in c_body_args[c_inputs.len()..].iter().enumerate() {
        cmap.insert(a, body_args[num_inputs + i]);
    }
    ctx.clone_block_ops(c_body, body, &mut cmap, true);
    let c_yield = ctx.terminator(c_body);
    let yields: Vec<ValueId> =
        ctx.op(c_yield).operands.iter().map(|v| *cmap.get(v).unwrap_or(v)).collect();
    ctx.append_op(body, OpSpec::new(memref_stream::YIELD).operands(yields));

    ctx.erase_op(consumer);
    ctx.erase_op(producer);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::convert_linalg::ConvertLinalgToMemrefStream;
    use mlb_dialects::{arith, builtin, linalg};
    use mlb_ir::{AffineMap, Type};

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        mlb_dialects::register_all(&mut r);
        r
    }

    /// Builds `t = x + y; z = max(t, 0)` through a temporary `t`.
    fn build_chain(ctx: &mut Context, mark_temp: bool) -> OpId {
        let (m, top) = builtin::build_module(ctx);
        let buf = Type::memref(vec![4, 8], Type::F64);
        let (f, entry) = func::build_func(
            ctx,
            top,
            "sum_relu",
            vec![buf.clone(), buf.clone(), buf.clone(), buf],
            vec![],
        );
        if mark_temp {
            func::set_temp_args(ctx, f, &[2]);
        }
        let x = ctx.block_args(entry)[0];
        let y = ctx.block_args(entry)[1];
        let t = ctx.block_args(entry)[2];
        let z = ctx.block_args(entry)[3];
        let id = AffineMap::identity(2);
        let par = vec![IteratorType::Parallel; 2];
        linalg::build_generic(
            ctx,
            entry,
            vec![x, y],
            vec![t],
            vec![id.clone(), id.clone(), id.clone()],
            par.clone(),
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[1])],
        );
        let zero = arith::constant_float(ctx, entry, 0.0, Type::F64);
        linalg::build_generic(
            ctx,
            entry,
            vec![t],
            vec![z],
            vec![id.clone(), id],
            par,
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::MAXIMUMF, args[0], zero)],
        );
        func::build_return(ctx, entry, vec![]);
        m
    }

    #[test]
    fn adjacent_elementwise_ops_fuse() {
        let mut ctx = Context::new();
        let r = registry();
        let m = build_chain(&mut ctx, true);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        assert_eq!(ctx.walk_named(m, memref_stream::GENERIC).len(), 2);
        MemrefStreamFuseElementwise.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let generics = ctx.walk_named(m, memref_stream::GENERIC);
        assert_eq!(generics.len(), 1, "chain should fuse into one generic");
        let s = memref_stream::StreamGenericOp(generics[0]);
        assert_eq!(s.generic().num_inputs(&ctx), 2, "temp operand should be gone");
        assert_eq!(s.outputs(&ctx).len(), 1);
        assert_eq!(s.bounds(&ctx), vec![4, 8]);
        // Body holds both compute ops plus the yield.
        let body = s.generic().body(&ctx);
        assert_eq!(ctx.block_ops(body).len(), 3);
    }

    #[test]
    fn unmarked_temporary_is_not_fused() {
        // Without TEMP_ARGS the intermediate buffer is an observable
        // output, so the producer write must survive.
        let mut ctx = Context::new();
        let r = registry();
        let m = build_chain(&mut ctx, false);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        MemrefStreamFuseElementwise.run(&mut ctx, &r, m).unwrap();
        assert_eq!(ctx.walk_named(m, memref_stream::GENERIC).len(), 2);
    }

    #[test]
    fn second_reader_blocks_fusion() {
        // A third generic also reading the temporary keeps the producer.
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let buf = Type::memref(vec![8], Type::F64);
        let (f, entry) = func::build_func(
            &mut ctx,
            top,
            "f",
            vec![buf.clone(), buf.clone(), buf.clone(), buf],
            vec![],
        );
        func::set_temp_args(&mut ctx, f, &[1]);
        let x = ctx.block_args(entry)[0];
        let t = ctx.block_args(entry)[1];
        let z1 = ctx.block_args(entry)[2];
        let z2 = ctx.block_args(entry)[3];
        let id = AffineMap::identity(1);
        let par = vec![IteratorType::Parallel];
        for (input, output) in [(x, t), (t, z1), (t, z2)] {
            linalg::build_generic(
                &mut ctx,
                entry,
                vec![input],
                vec![output],
                vec![id.clone(), id.clone()],
                par.clone(),
                None,
                |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[0])],
            );
        }
        func::build_return(&mut ctx, entry, vec![]);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        MemrefStreamFuseElementwise.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        assert_eq!(ctx.walk_named(m, memref_stream::GENERIC).len(), 3);
    }

    #[test]
    fn reduction_consumer_is_not_fused() {
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let vec_ty = Type::memref(vec![8], Type::F64);
        let scalar_ty = Type::memref(vec![1], Type::F64);
        let (f, entry) =
            func::build_func(&mut ctx, top, "f", vec![vec_ty.clone(), vec_ty, scalar_ty], vec![]);
        func::set_temp_args(&mut ctx, f, &[1]);
        let x = ctx.block_args(entry)[0];
        let t = ctx.block_args(entry)[1];
        let z = ctx.block_args(entry)[2];
        let id = AffineMap::identity(1);
        linalg::build_generic(
            &mut ctx,
            entry,
            vec![x],
            vec![t],
            vec![id.clone(), id.clone()],
            vec![IteratorType::Parallel],
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[0])],
        );
        let out_map = AffineMap::new(1, 0, vec![mlb_ir::AffineExpr::constant(0)]);
        linalg::build_generic(
            &mut ctx,
            entry,
            vec![t],
            vec![z],
            vec![id, out_map],
            vec![IteratorType::Reduction],
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[1])],
        );
        func::build_return(&mut ctx, entry, vec![]);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        MemrefStreamFuseElementwise.run(&mut ctx, &r, m).unwrap();
        assert_eq!(ctx.walk_named(m, memref_stream::GENERIC).len(), 2);
    }

    #[test]
    fn fusion_stops_at_ssr_capacity() {
        // sum(x, y) -> relu -> sum(·, w): full fusion would need three
        // input streams plus the output — one more data mover than the
        // hardware has. The pass must stop at two generics instead of
        // producing a slower fully-fused kernel.
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let buf = Type::memref(vec![8], Type::F64);
        let (f, entry) = func::build_func(
            &mut ctx,
            top,
            "f",
            vec![buf.clone(), buf.clone(), buf.clone(), buf.clone(), buf.clone(), buf],
            vec![],
        );
        // args: x, y, w, t1, t2, z — t1/t2 scratch.
        func::set_temp_args(&mut ctx, f, &[3, 4]);
        let x = ctx.block_args(entry)[0];
        let y = ctx.block_args(entry)[1];
        let w = ctx.block_args(entry)[2];
        let t1 = ctx.block_args(entry)[3];
        let t2 = ctx.block_args(entry)[4];
        let z = ctx.block_args(entry)[5];
        let id = AffineMap::identity(1);
        let par = vec![IteratorType::Parallel];
        for (inputs, output) in [(vec![x, y], t1), (vec![t1], t2), (vec![t2, w], z)] {
            let maps = vec![id.clone(); inputs.len() + 1];
            linalg::build_generic(
                &mut ctx,
                entry,
                inputs,
                vec![output],
                maps,
                par.clone(),
                None,
                {
                    |ctx, body, args| {
                        let v = if args.len() > 2 {
                            arith::binary(ctx, body, arith::ADDF, args[0], args[1])
                        } else {
                            arith::binary(ctx, body, arith::ADDF, args[0], args[0])
                        };
                        vec![v]
                    }
                },
            );
        }
        func::build_return(&mut ctx, entry, vec![]);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        MemrefStreamFuseElementwise.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let generics = ctx.walk_named(m, memref_stream::GENERIC);
        assert_eq!(generics.len(), 2, "capacity gate should stop one fusion");
        for g in generics {
            let s = memref_stream::StreamGenericOp(g);
            assert!(s.generic().inputs(&ctx).len() <= MAX_FUSED_INPUTS);
        }
    }

    #[test]
    fn three_stage_chain_fuses_to_one() {
        let mut ctx = Context::new();
        let r = registry();
        let (m, top) = builtin::build_module(&mut ctx);
        let buf = Type::memref(vec![6], Type::F64);
        let (f, entry) = func::build_func(
            &mut ctx,
            top,
            "f",
            vec![buf.clone(), buf.clone(), buf.clone(), buf],
            vec![],
        );
        func::set_temp_args(&mut ctx, f, &[1, 2]);
        let x = ctx.block_args(entry)[0];
        let t1 = ctx.block_args(entry)[1];
        let t2 = ctx.block_args(entry)[2];
        let z = ctx.block_args(entry)[3];
        let id = AffineMap::identity(1);
        for (input, output) in [(x, t1), (t1, t2), (t2, z)] {
            linalg::build_generic(
                &mut ctx,
                entry,
                vec![input],
                vec![output],
                vec![id.clone(), id.clone()],
                vec![IteratorType::Parallel],
                None,
                |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[0])],
            );
        }
        func::build_return(&mut ctx, entry, vec![]);
        ConvertLinalgToMemrefStream.run(&mut ctx, &r, m).unwrap();
        MemrefStreamFuseElementwise.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        let generics = ctx.walk_named(m, memref_stream::GENERIC);
        assert_eq!(generics.len(), 1, "three-op chain should fully fuse");
        let body = memref_stream::StreamGenericOp(generics[0]).generic().body(&ctx);
        assert_eq!(ctx.block_ops(body).len(), 4, "three adds + yield");
    }
}
