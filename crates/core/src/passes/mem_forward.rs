//! `rv-mem-forward`: block-local store-to-load forwarding and dead-store
//! elimination.
//!
//! This mirrors LLVM's scalar promotion of memory accumulators: after a
//! fixed-trip reduction loop is fully unrolled, the accumulator's
//! load/store pairs against one address collapse into register dataflow,
//! which is how the Clang flow reaches its best utilization on the
//! pooling kernels (Section 4.4: "Max Pool benefits the most due to
//! unrolling of some loops and rescheduling loads").
//!
//! Aliasing: addresses are keyed by `(base value, immediate)`; bases are
//! traced to their root pointer (a function argument, one per `memref`
//! operand). Distinct roots never alias — the same assumption MLIR makes
//! for distinct `memref` arguments. Accesses with the same root but
//! different `(base, imm)` keys are conservatively treated as aliasing.

use std::collections::HashMap;

use mlb_ir::{Attribute, Context, DialectRegistry, OpId, Pass, PassError, ValueId};
use mlb_riscv::{rv, rv_func};

/// The pass object.
#[derive(Debug, Default)]
pub struct RvMemForward;

impl Pass for RvMemForward {
    fn name(&self) -> &'static str {
        "rv-mem-forward"
    }

    fn run(
        &self,
        ctx: &mut Context,
        _registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        let mut blocks = Vec::new();
        for func in ctx.walk_named(root, rv_func::FUNC) {
            let mut stack = vec![func];
            while let Some(op) = stack.pop() {
                for &region in &ctx.op(op).regions.clone() {
                    for &block in ctx.region_blocks(region).to_vec().iter() {
                        blocks.push(block);
                        stack.extend(ctx.block_ops(block).iter().copied());
                    }
                }
            }
        }
        for block in blocks {
            forward_block(ctx, block);
        }
        Ok(())
    }
}

/// Traces an address value to its root pointer.
fn root_of(ctx: &Context, mut v: ValueId) -> ValueId {
    loop {
        let Some(def) = ctx.defining_op(v) else { return v };
        let op = ctx.op(def);
        match op.name.as_str() {
            rv::ADDI | rv::MV => v = op.operands[0],
            rv::ADD => {
                // Prefer the pointer-looking side: an operand that is
                // itself rooted in a block argument.
                let a = root_of_shallow(ctx, op.operands[0]);
                if matches!(ctx.value_kind(a), mlb_ir::ValueKind::BlockArg { .. }) {
                    v = op.operands[0];
                } else {
                    v = op.operands[1];
                }
            }
            _ => return v,
        }
    }
}

fn root_of_shallow(ctx: &Context, mut v: ValueId) -> ValueId {
    for _ in 0..64 {
        let Some(def) = ctx.defining_op(v) else { return v };
        let op = ctx.op(def);
        match op.name.as_str() {
            rv::ADDI | rv::MV | rv::ADD => v = op.operands[0],
            _ => return v,
        }
    }
    v
}

fn imm_of(ctx: &Context, op: OpId) -> i64 {
    ctx.op(op).attr("imm").and_then(Attribute::as_int).unwrap_or(0)
}

fn forward_block(ctx: &mut Context, block: mlb_ir::BlockId) {
    // Known memory contents: (base, imm) -> value in register.
    let mut known: HashMap<(ValueId, i64), ValueId> = HashMap::new();
    // Pending (possibly dead) store per exact location.
    let mut pending_store: HashMap<(ValueId, i64), OpId> = HashMap::new();

    for op in ctx.block_ops(block).to_vec() {
        if !ctx.is_alive(op) {
            continue;
        }
        let name = ctx.op(op).name.clone();
        match name.as_str() {
            rv::FLD | rv::FLW | rv::LW => {
                let base = ctx.op(op).operands[0];
                let key = (base, imm_of(ctx, op));
                if let Some(&value) = known.get(&key) {
                    // Forward: types must agree (fld forwarded from fsd).
                    let result = ctx.op(op).results[0];
                    if !ctx.value_type(result).is_allocated_register() {
                        ctx.replace_all_uses(result, value);
                        ctx.erase_op(op);
                        continue;
                    }
                }
                // A read of this root keeps earlier stores alive.
                let r = root_of(ctx, base);
                pending_store.retain(|&(b, _), _| root_of(ctx, b) != r);
            }
            rv::FSD | rv::FSW | rv::SW => {
                let value = ctx.op(op).operands[0];
                let base = ctx.op(op).operands[1];
                let key = (base, imm_of(ctx, op));
                let r = root_of(ctx, base);
                // The previous store to exactly this location is dead if
                // nothing read the root since.
                if let Some(prev) = pending_store.remove(&key) {
                    if ctx.is_alive(prev) {
                        ctx.erase_op(prev);
                    }
                }
                // Same-root entries with a different key may alias.
                known.retain(|&(b, i), _| (b, i) == key || root_of(ctx, b) != r);
                pending_store.retain(|&(b, i), _| (b, i) == key || root_of(ctx, b) != r);
                known.insert(key, value);
                pending_store.insert(key, op);
            }
            // Region ops (loops) and anything with stream side effects
            // clobber all memory knowledge.
            _ if !ctx.op(op).regions.is_empty()
                || name.starts_with("rv_snitch.")
                || name.starts_with("snitch_stream.") =>
            {
                known.clear();
                pending_store.clear();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_ir::OpSpec;

    fn setup() -> (Context, DialectRegistry, OpId, mlb_ir::BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        r.register(mlb_ir::OpInfo::new("builtin.module"));
        mlb_riscv::register_all(&mut r);
        let m = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let top = ctx.create_block(ctx.op(m).regions[0], vec![]);
        (ctx, r, m, top)
    }

    #[test]
    fn accumulator_promotes_to_register() {
        // store v0 -> [z]; x1 = load [z]; v1 = fmax(x1, w); store v1 -> [z]
        // becomes a pure register chain with one final store.
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) =
            rv_func::build_func(&mut ctx, top, "f", &[rv_func::AbiArg::Int, rv_func::AbiArg::Int]);
        let x = ctx.block_args(entry)[0];
        let z = ctx.block_args(entry)[1];
        let v0 = rv::fp_load(&mut ctx, entry, rv::FLD, x, 0);
        rv::fp_store(&mut ctx, entry, rv::FSD, v0, z, 0);
        let loaded = rv::fp_load(&mut ctx, entry, rv::FLD, z, 0);
        let w = rv::fp_load(&mut ctx, entry, rv::FLD, x, 8);
        let v1 = rv::fp_binary(&mut ctx, entry, rv::FMAX_D, loaded, w);
        rv::fp_store(&mut ctx, entry, rv::FSD, v1, z, 0);
        rv_func::build_ret(&mut ctx, entry);

        RvMemForward.run(&mut ctx, &r, m).unwrap();
        r.verify(&ctx, m).unwrap();
        // One load from z forwarded away; first store to z dead.
        let stores: Vec<OpId> = ctx.walk_named(m, rv::FSD);
        assert_eq!(stores.len(), 1);
        let max = ctx.walk_named(m, rv::FMAX_D)[0];
        assert_eq!(ctx.op(max).operands[0], v0, "load must forward the stored value");
    }

    #[test]
    fn different_roots_do_not_interfere() {
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) =
            rv_func::build_func(&mut ctx, top, "f", &[rv_func::AbiArg::Int, rv_func::AbiArg::Int]);
        let a = ctx.block_args(entry)[0];
        let b = ctx.block_args(entry)[1];
        let v = rv::fp_load(&mut ctx, entry, rv::FLD, a, 0);
        rv::fp_store(&mut ctx, entry, rv::FSD, v, a, 0);
        // A store to b must not kill the knowledge about a.
        rv::fp_store(&mut ctx, entry, rv::FSD, v, b, 0);
        let reloaded = rv::fp_load(&mut ctx, entry, rv::FLD, a, 0);
        rv::fp_store(&mut ctx, entry, rv::FSD, reloaded, b, 8);
        rv_func::build_ret(&mut ctx, entry);
        RvMemForward.run(&mut ctx, &r, m).unwrap();
        // The reload of a forwards to v.
        let last_store = *ctx.walk_named(m, rv::FSD).last().unwrap();
        assert_eq!(ctx.op(last_store).operands[0], v);
    }

    #[test]
    fn same_root_unknown_offset_invalidates() {
        let (mut ctx, r, m, top) = setup();
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "f", &[rv_func::AbiArg::Int]);
        let a = ctx.block_args(entry)[0];
        let p = rv::int_imm(&mut ctx, entry, rv::ADDI, a, 16);
        let v = rv::fp_load(&mut ctx, entry, rv::FLD, a, 0);
        rv::fp_store(&mut ctx, entry, rv::FSD, v, a, 16);
        // Store through a different base value with the same root: the
        // cached entry must die, so this load stays.
        rv::fp_store(&mut ctx, entry, rv::FSD, v, p, 0);
        let reload = rv::fp_load(&mut ctx, entry, rv::FLD, a, 16);
        rv::fp_store(&mut ctx, entry, rv::FSD, reload, a, 24);
        rv_func::build_ret(&mut ctx, entry);
        RvMemForward.run(&mut ctx, &r, m).unwrap();
        // Both loads survive (no unsafe forwarding).
        assert_eq!(ctx.walk_named(m, rv::FLD).len(), 2);
    }
}
