//! The multi-level, spill-free register allocator (Section 3.3).
//!
//! Registers are allocated in three linear passes over the structured IR
//! of one `rv_func.func`:
//!
//! 1. **Exclusion** — every register already pinned in the IR (ABI
//!    argument registers, `rv.get_register` results, the SSR data
//!    registers claimed by streaming code) is removed from the pools of
//!    15 caller-saved integer and 20 caller-saved FP registers. This is
//!    deliberately defensive: it lets partially-allocated code be
//!    processed generically without live-range analysis of the
//!    pre-allocated values.
//! 2. **Live-through collection** — for every structured loop
//!    (`rv_scf.for`, `rv_snitch.frep_outer`), the values defined outside
//!    the loop but used inside are recorded; their live ranges must
//!    extend over the whole loop because the body may execute many times.
//! 3. **Backward allocation** — a single backward walk assigns a
//!    register to each value at its last use and releases it at its
//!    definition. SSA with regions guarantees the walk respects use-def
//!    order, so whole function bodies allocate in one pass. Loops
//!    allocate their iteration chain (init operand, block argument,
//!    yielded value, loop result) to one register first, then the
//!    live-through values, then recurse into the body.
//!
//! There is no spilling: exhausting a pool is a hard error
//! ([`RegAllocError`]), which the evaluation shows never happens for the
//! paper's kernel suite (Table 2).

use std::collections::BTreeSet;
use std::fmt;

use mlb_ir::{Context, OpId, Type, ValueId};
use mlb_isa::{FpReg, IntReg};
use mlb_riscv::{rv_scf, rv_snitch};

/// Error produced when allocation would require spilling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegAllocError {
    /// Which register class ran out.
    pub class: RegClass,
    /// Name of the operation being allocated when the pool drained.
    pub op_name: String,
    /// Identity of the value that could not be given a register.
    pub value: String,
    /// Registers of the class already claimed at the failure point (out
    /// of the class's allocatable pool).
    pub live: usize,
    /// Size of the class's allocatable pool.
    pub pool: usize,
}

impl fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of {} registers while allocating {} in `{}` ({} of {} allocatable registers \
             live): spilling would be required",
            match self.class {
                RegClass::Int => "integer",
                RegClass::Fp => "floating-point",
            },
            self.value,
            self.op_name,
            self.live,
            self.pool
        )
    }
}

impl std::error::Error for RegAllocError {}

/// A register class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegClass {
    /// Integer (`x`) registers.
    Int,
    /// Floating-point (`f`) registers.
    Fp,
}

/// Statistics reported after allocating one function (Table 2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegStats {
    /// Distinct integer registers appearing in the allocated function.
    pub int_used: BTreeSet<IntReg>,
    /// Distinct FP registers appearing in the allocated function.
    pub fp_used: BTreeSet<FpReg>,
}

impl RegStats {
    /// Number of distinct integer registers used.
    pub fn num_int(&self) -> usize {
        self.int_used.len()
    }

    /// Number of distinct FP registers used.
    pub fn num_fp(&self) -> usize {
        self.fp_used.len()
    }
}

/// Allocates every register-typed value in `func` (an `rv_func.func`)
/// in place, refining `!rv.reg` types into `!rv.reg<...>`.
///
/// # Errors
///
/// Returns [`RegAllocError`] if a register pool is exhausted — the
/// allocator never spills.
pub fn allocate_function(ctx: &mut Context, func: OpId) -> Result<RegStats, RegAllocError> {
    let mut alloc = Allocator::new(ctx, func);
    let body_blocks: Vec<_> = ctx.region_blocks(ctx.op(func).regions[0]).to_vec();
    assert_eq!(body_blocks.len(), 1, "allocate before control-flow lowering");
    alloc.process_block(ctx, body_blocks[0])?;
    // Leftovers: values whose last use the walk never saw (dead results
    // processed top-down, e.g. unused loop results) keep whatever they
    // were given; anything still unallocated is a bug in the walk.
    Ok(collect_stats(ctx, func))
}

/// Collects the distinct registers used under `func`.
pub fn collect_stats(ctx: &Context, func: OpId) -> RegStats {
    let mut stats = RegStats::default();
    let mut record = |ty: &Type| match ty {
        Type::IntRegister(Some(r)) if r.index() != 0 => {
            stats.int_used.insert(*r);
        }
        Type::FpRegister(Some(r)) => {
            stats.fp_used.insert(*r);
        }
        _ => {}
    };
    let mut ops = vec![func];
    ops.extend(ctx.walk(func));
    for op in ops {
        for &v in &ctx.op(op).results {
            record(ctx.value_type(v));
        }
        for &region in &ctx.op(op).regions {
            for &block in ctx.region_blocks(region) {
                for &arg in ctx.block_args(block) {
                    record(ctx.value_type(arg));
                }
            }
        }
    }
    stats
}

struct Allocator {
    free_int: Vec<IntReg>,
    free_fp: Vec<FpReg>,
    /// Registers excluded in pass 1; they never re-enter the pools, even
    /// when the backward walk crosses their defining operation.
    pinned: RegStats,
    /// Registers owned by enclosing loops (iteration chains, induction
    /// variables): they must not be released while the loop body is
    /// being processed, even when the walk crosses a defining operation.
    locked_int: Vec<IntReg>,
    locked_fp: Vec<FpReg>,
}

impl Allocator {
    /// Pass 1: build the pools, excluding pre-allocated registers.
    fn new(ctx: &Context, func: OpId) -> Allocator {
        let used = collect_stats(ctx, func);
        let free_int = IntReg::allocatable()
            .into_iter()
            .filter(|r| !used.int_used.contains(r))
            .rev()
            .collect();
        let free_fp =
            FpReg::allocatable().into_iter().filter(|r| !used.fp_used.contains(r)).rev().collect();
        Allocator { free_int, free_fp, pinned: used, locked_int: Vec::new(), locked_fp: Vec::new() }
    }

    fn take_specific(&mut self, ty: &Type) {
        match ty {
            Type::IntRegister(Some(r)) => self.free_int.retain(|x| x != r),
            Type::FpRegister(Some(r)) => self.free_fp.retain(|x| x != r),
            _ => {}
        }
    }

    fn allocate_value(
        &mut self,
        ctx: &mut Context,
        v: ValueId,
        op_name: &str,
    ) -> Result<(), RegAllocError> {
        match ctx.value_type(v).clone() {
            Type::IntRegister(None) => {
                let pool = IntReg::allocatable().len();
                let r = self.free_int.pop().ok_or_else(|| RegAllocError {
                    class: RegClass::Int,
                    op_name: op_name.to_string(),
                    value: format!("{v:?}"),
                    live: pool - self.free_int.len(),
                    pool,
                })?;
                ctx.set_value_type(v, Type::IntRegister(Some(r)));
                Ok(())
            }
            Type::FpRegister(None) => {
                let pool = FpReg::allocatable().len();
                let r = self.free_fp.pop().ok_or_else(|| RegAllocError {
                    class: RegClass::Fp,
                    op_name: op_name.to_string(),
                    value: format!("{v:?}"),
                    live: pool - self.free_fp.len(),
                    pool,
                })?;
                ctx.set_value_type(v, Type::FpRegister(Some(r)));
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Releases the register of `v` back to the pool if it came from it.
    fn free_value(&mut self, ctx: &Context, v: ValueId) {
        match ctx.value_type(v) {
            Type::IntRegister(Some(r))
                if IntReg::allocatable().contains(r)
                    && !self.pinned.int_used.contains(r)
                    && !self.locked_int.contains(r)
                    && !self.free_int.contains(r) =>
            {
                self.free_int.push(*r);
            }
            Type::FpRegister(Some(r))
                if FpReg::allocatable().contains(r)
                    && !self.pinned.fp_used.contains(r)
                    && !self.locked_fp.contains(r)
                    && !self.free_fp.contains(r) =>
            {
                self.free_fp.push(*r);
            }
            _ => {}
        }
    }

    /// Pass 3: backward walk over one block.
    fn process_block(
        &mut self,
        ctx: &mut Context,
        block: mlb_ir::BlockId,
    ) -> Result<(), RegAllocError> {
        let ops: Vec<OpId> = ctx.block_ops(block).to_vec();
        for &op in ops.iter().rev() {
            let name = ctx.op(op).name.clone();
            if name == rv_scf::FOR || name == rv_snitch::FREP_OUTER {
                self.process_loop(ctx, op)?;
                continue;
            }
            // Two-address constraints: the accumulator operand of the
            // packed MAC/SUM instructions shares the result register.
            let results = ctx.op(op).results.clone();
            for &r in &results {
                // A result never used later still occupies a register at
                // the instruction itself.
                self.allocate_value(ctx, r, &name)?;
            }
            let mut transferred = false;
            if name == rv_snitch::VFMAC_S || name == rv_snitch::VFSUM_S {
                let acc_index = ctx.op(op).operands.len() - 1;
                let acc = ctx.op(op).operands[acc_index];
                if *ctx.value_type(acc) == Type::FpRegister(None) {
                    let result_ty = ctx.value_type(results[0]).clone();
                    self.take_specific(&result_ty);
                    ctx.set_value_type(acc, result_ty);
                    // Ownership moved to the accumulator operand; the
                    // register is released at the operand's definition,
                    // not here.
                    transferred = true;
                }
            }
            // Definition point: release the result registers (unless the
            // register now belongs to the in-place accumulator).
            for (i, &r) in results.iter().enumerate() {
                if transferred && i == 0 {
                    continue;
                }
                self.free_value(ctx, r);
            }
            // Uses: allocate operands on first (backward) encounter.
            let operands = ctx.op(op).operands.clone();
            for &o in &operands {
                self.allocate_value(ctx, o, &name)?;
            }
        }
        Ok(())
    }

    /// Allocates a structured loop (`rv_scf.for` or `frep_outer`).
    fn process_loop(&mut self, ctx: &mut Context, op: OpId) -> Result<(), RegAllocError> {
        let name = ctx.op(op).name.clone();
        let is_frep = name == rv_snitch::FREP_OUTER;
        let body = ctx.sole_block(ctx.op(op).regions[0]);
        let num_fixed = if is_frep { 1 } else { 3 }; // count vs lb/ub/step
        let inits: Vec<ValueId> = ctx.op(op).operands[num_fixed..].to_vec();
        let results: Vec<ValueId> = ctx.op(op).results.clone();
        let args: Vec<ValueId> = if is_frep {
            ctx.block_args(body).to_vec()
        } else {
            ctx.block_args(body)[1..].to_vec()
        };
        let yield_op = ctx.terminator(body);
        let yields: Vec<ValueId> = ctx.op(yield_op).operands.clone();

        // Step 1: unify the iteration chains so that the register of the
        // value before, during and after the loop matches (Figure 6, D).
        // The init operand joins the chain only when this loop is its
        // sole user — otherwise the loop body would clobber a register
        // that is still live (e.g. an outer loop's carried pointer), and
        // control-flow lowering instead emits a move at loop entry.
        let mut deferred_inits: Vec<ValueId> = Vec::new();
        for i in 0..inits.len() {
            // The init may join the chain only when this loop is its sole
            // user, it is a distinct value, and it is defined in the
            // loop's own block: a chain aliasing a value from an
            // enclosing region would clobber it when the enclosing loop
            // re-executes this one.
            let init_uses = ctx.uses(inits[i]);
            let same_block = match ctx.value_kind(inits[i]) {
                mlb_ir::ValueKind::OpResult { op: def, .. } => {
                    ctx.op(def).parent == ctx.op(op).parent
                }
                mlb_ir::ValueKind::BlockArg { .. } => false,
            };
            let init_private =
                init_uses.len() == 1 && init_uses[0].0 == op && inits[i] != args[i] && same_block;
            let chain: Vec<ValueId> = if init_private {
                vec![inits[i], args[i], yields[i], results[i]]
            } else {
                deferred_inits.push(inits[i]);
                vec![args[i], yields[i], results[i]]
            };
            let existing = chain.iter().find_map(|&v| {
                if ctx.value_type(v).is_allocated_register() {
                    Some(ctx.value_type(v).clone())
                } else {
                    None
                }
            });
            let ty = match existing {
                Some(ty) => ty,
                None => {
                    self.allocate_value(ctx, results[i], &name)?;
                    ctx.value_type(results[i]).clone()
                }
            };
            self.take_specific(&ty);
            for &v in &chain {
                let current = ctx.value_type(v).clone();
                if !current.is_allocated_register() {
                    ctx.set_value_type(v, ty.clone());
                }
            }
        }

        // The induction variable occupies its register for the entire
        // loop, even when unused (the lowered counter lives there).
        let iv = if is_frep { None } else { Some(ctx.block_args(body)[0]) };
        if let Some(iv) = iv {
            self.allocate_value(ctx, iv, &name)?;
        }

        // Step 2: values defined outside the loop but used inside must
        // outlive the whole loop body.
        let live_through = live_through_values(ctx, op);
        for v in &live_through {
            self.allocate_value(ctx, *v, &name)?;
        }
        // Loop bound operands read on every lowered iteration (the upper
        // bound, and a non-constant step) stay live through the body. A
        // constant step folds into the latch `addi`, and the lower bound
        // is consumed before the first iteration, so neither needs a
        // reserved register across the body.
        let fixed: Vec<ValueId> = ctx.op(op).operands[..num_fixed].to_vec();
        let mut deferred: Vec<ValueId> = Vec::new();
        if is_frep {
            // frep: the count register is read once at issue.
            deferred.push(fixed[0]);
        } else {
            deferred.push(fixed[0]); // lb
                                     // When the induction variable is unused by the body, the
                                     // lowering counts the induction register down from the upper
                                     // bound, so the bound itself dies at loop entry.
            let iv_dead = !ctx.has_uses(ctx.block_args(body)[0]);
            let lb_zero = mlb_riscv::rv::constant_int_value(ctx, fixed[0]) == Some(0);
            let step_one = mlb_riscv::rv::constant_int_value(ctx, fixed[2]) == Some(1);
            if iv_dead && lb_zero && step_one {
                deferred.push(fixed[1]);
            } else {
                self.allocate_value(ctx, fixed[1], &name)?; // ub
            }
            if step_one || mlb_riscv::rv::constant_int_value(ctx, fixed[2]).is_some() {
                deferred.push(fixed[2]);
            } else {
                self.allocate_value(ctx, fixed[2], &name)?;
            }
        }

        // Lock the chain and induction registers for the duration of the
        // body walk: values defined inside the body must never reuse
        // them (the block argument stays live until the loop ends).
        let locked_int_mark = self.locked_int.len();
        let locked_fp_mark = self.locked_fp.len();
        for &arg in args.iter().chain(iv.as_ref()) {
            match ctx.value_type(arg) {
                Type::IntRegister(Some(r)) => self.locked_int.push(*r),
                Type::FpRegister(Some(r)) => self.locked_fp.push(*r),
                _ => {}
            }
        }

        // Step 3: recurse into the body.
        self.process_block(ctx, body)?;

        self.locked_int.truncate(locked_int_mark);
        self.locked_fp.truncate(locked_fp_mark);
        // Non-private chains release here: the register is dead before
        // the loop (the entry move fills it).
        for i in 0..inits.len() {
            if deferred_inits.contains(&inits[i]) {
                self.free_value(ctx, args[i]);
            }
        }

        // Deferred bound operands and shared init values behave like
        // plain uses at the loop's position (they die when the loop
        // starts executing — a move transfers them into the chain).
        for v in deferred {
            if !folds_away(ctx, v) {
                self.allocate_value(ctx, v, &name)?;
            }
        }
        for v in deferred_inits {
            self.allocate_value(ctx, v, &name)?;
        }

        // The loop is fully processed: release the registers owned by the
        // loop itself. Iteration-chain registers transfer to the init
        // values (released at the init definitions); the IV is loop-local.
        if let Some(iv) = iv {
            self.free_value(ctx, iv);
        }
        // Results were "definitions" from the enclosing block's point of
        // view, but their registers stay claimed by the iteration chain
        // until the inits die; nothing more to free here.
        Ok(())
    }
}

/// Whether `v` is a constant that the control-flow lowering folds into
/// immediates everywhere it is used, so it never needs a register: a
/// `li`/`zero` constant used only as a foldable bound operand of
/// structured loops (lower bound; constant step; upper bound of a
/// countdown loop).
pub fn folds_away(ctx: &Context, v: ValueId) -> bool {
    if mlb_riscv::rv::constant_int_value(ctx, v).is_none() {
        return false;
    }
    let uses = ctx.uses(v);
    if uses.is_empty() {
        return false;
    }
    uses.iter().all(|&(user, slot)| {
        if ctx.op(user).name != rv_scf::FOR {
            return false;
        }
        let f = rv_scf::RvForOp(user);
        match slot {
            0 => true, // lower bound: folded into the counter init
            2 => true, // constant step: folded into the latch addi
            1 => {
                // upper bound: folded only in countdown form.
                let body = f.body(ctx);
                !ctx.has_uses(ctx.block_args(body)[0])
                    && mlb_riscv::rv::constant_int_value(ctx, f.lower_bound(ctx)) == Some(0)
                    && mlb_riscv::rv::constant_int_value(ctx, f.step(ctx)) == Some(1)
            }
            _ => false,
        }
    })
}

/// Values defined outside `loop_op` but used inside it (pass 2).
pub fn live_through_values(ctx: &Context, loop_op: OpId) -> Vec<ValueId> {
    let inner_ops: BTreeSet<OpId> = ctx.walk(loop_op).into_iter().collect();
    let inner_blocks: BTreeSet<mlb_ir::BlockId> = {
        let mut set = BTreeSet::new();
        let mut stack = vec![loop_op];
        while let Some(op) = stack.pop() {
            for &region in &ctx.op(op).regions {
                for &block in ctx.region_blocks(region) {
                    set.insert(block);
                    for &o in ctx.block_ops(block) {
                        stack.push(o);
                    }
                }
            }
        }
        set
    };
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for &op in &inner_ops {
        for &v in &ctx.op(op).operands {
            let defined_inside = match ctx.value_kind(v) {
                mlb_ir::ValueKind::OpResult { op: def, .. } => inner_ops.contains(&def),
                mlb_ir::ValueKind::BlockArg { block, .. } => inner_blocks.contains(&block),
            };
            if !defined_inside && seen.insert(v) && !folds_away(ctx, v) {
                out.push(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_ir::{DialectRegistry, OpSpec};
    use mlb_riscv::{rv, rv_func};

    fn setup() -> (Context, DialectRegistry, OpId, mlb_ir::BlockId) {
        let mut ctx = Context::new();
        let mut registry = DialectRegistry::new();
        registry.register(mlb_ir::OpInfo::new("builtin.module"));
        mlb_riscv::register_all(&mut registry);
        let module = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let top = ctx.create_block(ctx.op(module).regions[0], vec![]);
        (ctx, registry, module, top)
    }

    #[test]
    fn straight_line_allocation_reuses_registers() {
        let (mut ctx, registry, module, top) = setup();
        let (func, entry) = rv_func::build_func(&mut ctx, top, "f", &[rv_func::AbiArg::Int]);
        let base = ctx.block_args(entry)[0];
        // Two independent load-compute-store pairs should reuse registers.
        let a = rv::fp_load(&mut ctx, entry, rv::FLD, base, 0);
        let b = rv::fp_binary(&mut ctx, entry, rv::FADD_D, a, a);
        rv::fp_store(&mut ctx, entry, rv::FSD, b, base, 0);
        let c = rv::fp_load(&mut ctx, entry, rv::FLD, base, 8);
        let d = rv::fp_binary(&mut ctx, entry, rv::FADD_D, c, c);
        rv::fp_store(&mut ctx, entry, rv::FSD, d, base, 8);
        rv_func::build_ret(&mut ctx, entry);

        let stats = allocate_function(&mut ctx, func).unwrap();
        registry.verify(&ctx, module).unwrap();
        // a0 plus at most 2 FP registers (a/b can share with c/d).
        assert_eq!(stats.num_int(), 1);
        assert!(stats.num_fp() <= 2, "used {:?}", stats.fp_used);
        assert!(ctx.value_type(a).is_allocated_register());
        assert!(ctx.value_type(d).is_allocated_register());
    }

    #[test]
    fn values_alive_across_ops_get_distinct_registers() {
        let (mut ctx, _registry, _module, top) = setup();
        let (func, entry) = rv_func::build_func(&mut ctx, top, "f", &[]);
        let a = rv::li(&mut ctx, entry, 1);
        let b = rv::li(&mut ctx, entry, 2);
        let c = rv::li(&mut ctx, entry, 3);
        let ab = rv::int_binary(&mut ctx, entry, rv::ADD, a, b);
        let abc = rv::int_binary(&mut ctx, entry, rv::ADD, ab, c);
        let _ = rv::int_binary(&mut ctx, entry, rv::ADD, abc, a);
        rv_func::build_ret(&mut ctx, entry);
        allocate_function(&mut ctx, func).unwrap();
        // a, b and c are simultaneously live: all distinct.
        let ra = ctx.value_type(a).clone();
        let rb = ctx.value_type(b).clone();
        let rc = ctx.value_type(c).clone();
        assert_ne!(ra, rb);
        assert_ne!(rb, rc);
        assert_ne!(ra, rc);
    }

    #[test]
    fn loop_iteration_chain_shares_one_register() {
        let (mut ctx, registry, module, top) = setup();
        let (func, entry) = rv_func::build_func(&mut ctx, top, "f", &[]);
        let lb = rv::li(&mut ctx, entry, 0);
        let ub = rv::li(&mut ctx, entry, 8);
        let step = rv::li(&mut ctx, entry, 1);
        let zero = rv::get_register(&mut ctx, entry, Type::FpRegister(Some(FpReg::fa(0))));
        let init = rv::fp_binary(&mut ctx, entry, rv::FADD_D, zero, zero);
        let f =
            rv_scf::build_for(&mut ctx, entry, lb, ub, step, vec![init], |ctx, body, _iv, args| {
                vec![rv::fp_binary(ctx, body, rv::FADD_D, args[0], args[0])]
            });
        let result = ctx.op(f.0).results[0];
        let _use = rv::fp_binary(&mut ctx, entry, rv::FADD_D, result, result);
        rv_func::build_ret(&mut ctx, entry);

        allocate_function(&mut ctx, func).unwrap();
        registry.verify(&ctx, module).unwrap();
        let chain_reg = ctx.value_type(init).clone();
        assert!(chain_reg.is_allocated_register());
        assert_eq!(*ctx.value_type(f.iter_args(&ctx)[0]), chain_reg);
        assert_eq!(*ctx.value_type(result), chain_reg);
        let yielded = ctx.op(f.yield_op(&ctx)).operands[0];
        assert_eq!(*ctx.value_type(yielded), chain_reg);
    }

    #[test]
    fn live_through_values_keep_registers_across_loop() {
        let (mut ctx, _registry, _module, top) = setup();
        let (func, entry) = rv_func::build_func(&mut ctx, top, "f", &[rv_func::AbiArg::Int]);
        let base = ctx.block_args(entry)[0];
        let lb = rv::li(&mut ctx, entry, 0);
        let ub = rv::li(&mut ctx, entry, 4);
        let step = rv::li(&mut ctx, entry, 1);
        // `scale` is defined before the loop and used inside every
        // iteration: it must not share a register with body temporaries.
        let scale = rv::fp_load(&mut ctx, entry, rv::FLD, base, 0);
        let mut body_temp = None;
        rv_scf::build_for(&mut ctx, entry, lb, ub, step, vec![], |ctx, body, _iv, _| {
            let x = rv::fp_load(ctx, body, rv::FLD, base, 8);
            let y = rv::fp_binary(ctx, body, rv::FMUL_D, x, scale);
            rv::fp_store(ctx, body, rv::FSD, y, base, 8);
            body_temp = Some(y);
            vec![]
        });
        rv_func::build_ret(&mut ctx, entry);
        allocate_function(&mut ctx, func).unwrap();
        let scale_reg = ctx.value_type(scale).clone();
        let temp_reg = ctx.value_type(body_temp.unwrap()).clone();
        assert_ne!(scale_reg, temp_reg);
    }

    #[test]
    fn nested_loops_allocate_recursively() {
        let (mut ctx, registry, module, top) = setup();
        let (func, entry) = rv_func::build_func(&mut ctx, top, "f", &[]);
        let lb = rv::li(&mut ctx, entry, 0);
        let ub = rv::li(&mut ctx, entry, 4);
        let step = rv::li(&mut ctx, entry, 1);
        rv_scf::build_for(&mut ctx, entry, lb, ub, step, vec![], |ctx, body, _iv, _| {
            rv_scf::build_for(ctx, body, lb, ub, step, vec![], |ctx, inner, _iv, _| {
                let t = rv::li(ctx, inner, 7);
                let _ = rv::int_binary(ctx, inner, rv::ADD, t, t);
                vec![]
            });
            vec![]
        });
        rv_func::build_ret(&mut ctx, entry);
        let stats = allocate_function(&mut ctx, func).unwrap();
        registry.verify(&ctx, module).unwrap();
        // lb/ub/step + 2 IVs + 1 temp, all within the 15-register pool.
        assert!(stats.num_int() <= 7, "{:?}", stats.int_used);
    }

    #[test]
    fn frep_carried_values_unify() {
        let (mut ctx, _registry, _module, top) = setup();
        let (func, entry) = rv_func::build_func(&mut ctx, top, "f", &[]);
        let count = rv::li(&mut ctx, entry, 99);
        let ft0 = rv::get_register(&mut ctx, entry, Type::FpRegister(Some(FpReg::ft(0))));
        let init = rv::fp_binary(&mut ctx, entry, rv::FADD_D, ft0, ft0);
        let frep = rv_snitch::build_frep(&mut ctx, entry, count, vec![init], |ctx, body, args| {
            vec![rv::fp_ternary(ctx, body, rv::FMADD_D, ft0, ft0, args[0])]
        });
        rv_func::build_ret(&mut ctx, entry);
        allocate_function(&mut ctx, func).unwrap();
        let chain = ctx.value_type(init).clone();
        assert!(chain.is_allocated_register());
        assert_eq!(*ctx.value_type(frep.iter_args(&ctx)[0]), chain);
        assert_eq!(*ctx.value_type(ctx.op(frep.0).results[0]), chain);
        // ft0 was pre-allocated and must remain excluded.
        assert_ne!(chain, Type::FpRegister(Some(FpReg::ft(0))));
    }

    #[test]
    fn vfmac_accumulator_is_allocated_in_place() {
        let (mut ctx, _registry, _module, top) = setup();
        let (func, entry) = rv_func::build_func(&mut ctx, top, "f", &[rv_func::AbiArg::Int]);
        let base = ctx.block_args(entry)[0];
        let a = rv::fp_load(&mut ctx, entry, rv::FLD, base, 0);
        let b = rv::fp_load(&mut ctx, entry, rv::FLD, base, 8);
        let acc = rv::fp_load(&mut ctx, entry, rv::FLD, base, 16);
        let mac = rv::fp_ternary(&mut ctx, entry, rv_snitch::VFMAC_S, a, b, acc);
        rv::fp_store(&mut ctx, entry, rv::FSD, mac, base, 16);
        rv_func::build_ret(&mut ctx, entry);
        allocate_function(&mut ctx, func).unwrap();
        assert_eq!(ctx.value_type(acc), ctx.value_type(mac));
    }

    #[test]
    fn exhaustion_is_a_clean_error() {
        let (mut ctx, _registry, _module, top) = setup();
        let (func, entry) = rv_func::build_func(&mut ctx, top, "f", &[]);
        // 25 simultaneously live FP values cannot fit in 20 registers.
        let base = rv::li(&mut ctx, entry, 0);
        let seeds: Vec<ValueId> =
            (0..25).map(|i| rv::fp_load(&mut ctx, entry, rv::FLD, base, i * 8)).collect();
        let mut acc = seeds[0];
        for &s in &seeds[1..] {
            acc = rv::fp_binary(&mut ctx, entry, rv::FADD_D, acc, s);
        }
        // Keep all seeds live to the end.
        for &s in &seeds {
            let _ = rv::fp_binary(&mut ctx, entry, rv::FADD_D, s, s);
        }
        rv_func::build_ret(&mut ctx, entry);
        let err = allocate_function(&mut ctx, func).unwrap_err();
        assert_eq!(err.class, RegClass::Fp);
        assert!(err.to_string().contains("spilling"));
        // The enriched error names the value and the pool pressure.
        assert_eq!(err.pool, FpReg::allocatable().len());
        assert_eq!(err.live, err.pool, "pool must be fully claimed at the failure");
        assert!(!err.value.is_empty());
        assert!(err.to_string().contains(&err.value), "{err}");
        assert!(err.to_string().contains("20 of 20"), "{err}");
    }

    #[test]
    fn integer_exhaustion_is_a_clean_error() {
        let (mut ctx, _registry, _module, top) = setup();
        let (func, entry) = rv_func::build_func(&mut ctx, top, "f", &[]);
        // More simultaneously live integer values than the 15-register
        // caller-saved pool can hold.
        let seeds: Vec<ValueId> = (0..20).map(|i| rv::li(&mut ctx, entry, i)).collect();
        let mut acc = seeds[0];
        for &s in &seeds[1..] {
            acc = rv::int_binary(&mut ctx, entry, rv::ADD, acc, s);
        }
        for &s in &seeds {
            let _ = rv::int_binary(&mut ctx, entry, rv::ADD, s, s);
        }
        rv_func::build_ret(&mut ctx, entry);
        let err = allocate_function(&mut ctx, func).unwrap_err();
        assert_eq!(err.class, RegClass::Int);
        assert_eq!(err.pool, IntReg::allocatable().len());
        assert_eq!(err.live, err.pool);
        assert!(err.to_string().contains("out of integer registers"), "{err}");
    }

    #[test]
    fn table2_style_stats_count_distinct_registers() {
        let (mut ctx, _registry, _module, top) = setup();
        let (func, entry) = rv_func::build_func(
            &mut ctx,
            top,
            "fill",
            &[rv_func::AbiArg::Int, rv_func::AbiArg::Fp],
        );
        rv_func::build_ret(&mut ctx, entry);
        let stats = allocate_function(&mut ctx, func).unwrap();
        assert_eq!(stats.num_int(), 1); // a0
        assert_eq!(stats.num_fp(), 1); // fa0
    }
}
