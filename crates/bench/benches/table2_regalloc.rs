//! Table 2 (RQ2): the spill-free register allocator's usage across the
//! kernel suite — every kernel fits the 20 FP / 15 integer caller-saved
//! pools with registers to spare, and allocation never spills (spilling
//! is a hard compile error in this backend, so every row printed is by
//! construction spill-free).

use mlb_bench::{print_table, run, SEED};
use mlb_core::{Flow, PipelineOptions};
use mlb_kernels::{run_handwritten, Instance, Kind, Precision, Shape};

fn main() {
    // (kernel, precision, shape) rows in Table 2 order.
    let rows_spec = [
        (Kind::Fill, Precision::F64, Shape::nm(4, 4)),
        (Kind::Relu, Precision::F64, Shape::nm(4, 4)),
        (Kind::Sum, Precision::F64, Shape::nm(4, 4)),
        (Kind::MaxPool3x3, Precision::F64, Shape::nm(4, 4)),
        (Kind::SumPool3x3, Precision::F64, Shape::nm(4, 4)),
        (Kind::Conv3x3, Precision::F64, Shape::nm(4, 4)),
        (Kind::MatMul, Precision::F64, Shape::nmk(4, 16, 8)),
        (Kind::Relu, Precision::F32, Shape::nm(4, 8)),
        (Kind::Sum, Precision::F32, Shape::nm(4, 8)),
        (Kind::MatMulT, Precision::F32, Shape::nmk(4, 16, 16)),
    ];
    let mut rows = Vec::new();
    for (kind, precision, shape) in rows_spec {
        let instance = Instance::new(kind, shape, precision);
        // The 32-bit MatMulT row is the hand-written packed kernel
        // (Section 4.3 discusses exactly that variant); everything else
        // goes through the full compiler pipeline.
        let outcome = if kind == Kind::MatMulT {
            run_handwritten(&instance, SEED).unwrap_or_else(|e| panic!("{instance}: {e}"))
        } else {
            run(&instance, Flow::Ours(PipelineOptions::full()))
        };
        let (_, stats) = &outcome.compilation.functions[0];
        rows.push(vec![
            kind.to_string(),
            precision.bits().to_string(),
            format!(
                "{}x{}{}",
                shape.n,
                shape.m,
                if shape.k > 0 { format!("x{}", shape.k) } else { String::new() }
            ),
            format!("{}/20", stats.num_fp()),
            format!("{}/15", stats.num_int()),
            "no".to_string(),
        ]);
    }
    print_table(
        "Table 2: spill-free register allocation",
        &["Kernel", "Precision (bits)", "Shape", "FP registers", "Integer registers", "Spilled?"],
        &rows,
    );
    println!(
        "Paper reference: 3-8 FP / 3-8 integer registers for the 64-bit kernels,\n\
         up to 11 FP / 12 integer for the 32-bit MatMulT; never spilling."
    );
}
