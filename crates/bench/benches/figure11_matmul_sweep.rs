//! Figure 11: sustained throughput of the 64-bit MatMul kernel
//! (`C(1xN) = A(1xK) x B(KxN)`) over a grid of shapes.
//!
//! Paper: throughput exceeds 90% of the theoretical peak
//! (>= 1.80 FLOPs/cycle) as shapes grow; the smallest inner dimension or
//! column counts stay below 80% because setup costs dominate.

use mlb_bench::{print_table, run};
use mlb_core::{Flow, PipelineOptions};
use mlb_kernels::{Instance, Kind, Precision, Shape};

fn main() {
    let ns = [2, 4, 8, 16, 32];
    let ks = [8, 16, 32, 64, 128, 256];
    let mut rows = Vec::new();
    for &n in &ns {
        let mut row = vec![format!("N={n}")];
        for &k in &ks {
            let instance = Instance::new(Kind::MatMul, Shape::nmk(1, n, k), Precision::F64);
            let outcome = run(&instance, Flow::Ours(PipelineOptions::full()));
            row.push(format!("{:.2}", outcome.counters.throughput()));
        }
        rows.push(row);
    }
    let mut header = vec!["FLOPs/cycle".to_string()];
    header.extend(ks.iter().map(|k| format!("K={k}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table("Figure 11: MatMul (M=1) sustained throughput", &header_refs, &rows);
    println!(
        "Theoretical peak: 2.0 FLOPs/cycle (one fmadd per cycle).\n\
         Paper reference: >= 1.80 (90%) for large shapes; < 1.60 (80%) when either\n\
         dimension is smallest, as accelerator setup dominates."
    );
}
