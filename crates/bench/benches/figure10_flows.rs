//! Figure 10 (RQ3): FPU utilization of the end-to-end micro-kernel
//! compiler against the MLIR-like and Clang-like comparison flows, per
//! kernel, across input widths.
//!
//! Paper: our flow reaches up to ~90-95% while the comparison flows do
//! not exceed ~42%; parallel kernels approach 100% as sizes grow, and
//! the reduction kernels climb more slowly.

use mlb_bench::{pct, print_table, run};
use mlb_core::{Flow, PipelineOptions};
use mlb_kernels::{Instance, Kind, Precision, Shape};

fn main() {
    let kernels = [
        Kind::Sum,
        Kind::Fill,
        Kind::Relu,
        Kind::Conv3x3,
        Kind::MaxPool3x3,
        Kind::SumPool3x3,
        Kind::MatMul,
    ];
    let widths = [4, 8, 16, 32, 64];
    let mut rows = Vec::new();
    for kind in kernels {
        for m in widths {
            let shape = match kind {
                Kind::MatMul => Shape::nmk(4, m, 16),
                _ => Shape::nm(4, m),
            };
            let instance = Instance::new(kind, shape, Precision::F64);
            let ours = run(&instance, Flow::Ours(PipelineOptions::full()));
            let mlir = run(&instance, Flow::MlirLike);
            let clang = run(&instance, Flow::ClangLike);
            rows.push(vec![
                kind.to_string(),
                format!("{}x{m}", shape.n),
                pct(ours.utilization()),
                pct(mlir.utilization()),
                pct(clang.utilization()),
                ours.counters.cycles.to_string(),
                mlir.counters.cycles.to_string(),
                clang.counters.cycles.to_string(),
            ]);
        }
    }
    print_table(
        "Figure 10: FPU utilization per flow",
        &[
            "Kernel",
            "Shape",
            "Ours util %",
            "MLIR util %",
            "Clang util %",
            "Ours cycles",
            "MLIR cycles",
            "Clang cycles",
        ],
        &rows,
    );
    println!(
        "Paper reference: ours up to ~90-95%, rising with width; MLIR/Clang flows\n\
         similar to each other and far below (paper peak ~42% on Max Pool)."
    );
}
