//! Table 4: how the backend's implementation features map onto the core
//! IR concepts (qualitative; printed with the implementing modules of
//! this repository for cross-reference).

use mlb_bench::print_table;

fn main() {
    let rows = vec![
        vec![
            "Instructions (standard and Snitch)".into(),
            "Operations".into(),
            "mlb-riscv::rv, mlb-riscv::rv_snitch".into(),
        ],
        vec![
            "Instruction operands".into(),
            "SSA values".into(),
            "mlb-ir::context (typed values)".into(),
        ],
        vec![
            "Registers (standard and Snitch SSRs)".into(),
            "Attributes / types".into(),
            "mlb-ir::types (register types), mlb-isa::regs".into(),
        ],
        vec![
            "Scoping (instruction semantics)".into(),
            "Blocks and regions".into(),
            "mlb-ir::context (regions), rv_scf / frep bodies".into(),
        ],
        vec![
            "Snitch FREP and branch instructions".into(),
            "Control flow dialects".into(),
            "mlb-riscv::rv_cf, mlb-riscv::rv_snitch::frep_outer".into(),
        ],
        vec![
            "Snitch semantics".into(),
            "Custom dialects".into(),
            "mlb-riscv::snitch_stream, mlb-dialects::memref_stream".into(),
        ],
        vec![
            "Target code generation".into(),
            "Progressive lowering".into(),
            "mlb-core::pipeline (pass ladder)".into(),
        ],
        vec![
            "Register allocation".into(),
            "Progressive lowering".into(),
            "mlb-core::regalloc (structured, spill-free)".into(),
        ],
        vec![
            "Target-specific optimizations".into(),
            "Progressive lowering".into(),
            "mlb-core::passes (streams, frep, fuse-fill, unroll-and-jam)".into(),
        ],
    ];
    print_table(
        "Table 4: implementation features vs IR concepts",
        &["Implementation feature", "Concept", "Module in this repository"],
        &rows,
    );
}
