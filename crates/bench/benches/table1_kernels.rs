//! Table 1: the evaluated DNN micro-kernel suite — characteristics,
//! input shapes and FLOP formulas.

use mlb_bench::print_table;
use mlb_kernels::{Instance, Kind, Precision, Shape};

fn main() {
    let rows: Vec<Vec<String>> = Kind::all()
        .into_iter()
        .map(|kind| {
            let (shape, shapes_text, flops_text) = match kind {
                Kind::MatMul | Kind::MatMulT => {
                    (Shape::nmk(4, 16, 8), "NK, KM".to_string(), "2NMK".to_string())
                }
                Kind::Conv3x3 => {
                    (Shape::nm(4, 4), "(N+2)(M+2), 3x3".to_string(), "18NM".to_string())
                }
                Kind::MaxPool3x3 | Kind::SumPool3x3 => {
                    (Shape::nm(4, 4), "(N+2)(M+2)".to_string(), "9NM".to_string())
                }
                Kind::Fill => (Shape::nm(4, 4), "NM".to_string(), "0".to_string()),
                _ => (Shape::nm(4, 4), "NM (x2 inputs)".to_string(), "NM".to_string()),
            };
            let example = Instance::new(kind, shape, Precision::F64);
            vec![
                kind.to_string(),
                kind.characteristics().to_string(),
                shapes_text,
                flops_text,
                format!("{} (at {})", example.flops(), example),
            ]
        })
        .collect();
    print_table(
        "Table 1: kernel suite",
        &["Kernel", "Characteristics", "Input shapes", "FLOPs", "Example FLOP count"],
        &rows,
    );
}
