//! Table 3: incremental impact of each pipeline optimization on the
//! MatMul kernel with 1x200 and 200x5 64-bit inputs.
//!
//! Paper trajectory: loads 3000 -> 1000 -> 5 -> 5 -> 0 -> 0; stores
//! 1005 -> 1000 -> 5 -> 5 -> 0 -> 0; occupancy 2.49% -> 90.67%.

use mlb_bench::{pct, print_table, run};
use mlb_core::{Flow, PipelineOptions};
use mlb_kernels::{Instance, Kind, Precision, Shape};

fn main() {
    let instance = Instance::new(Kind::MatMul, Shape::nmk(1, 5, 200), Precision::F64);
    let mut rows = Vec::new();
    for (label, opts) in PipelineOptions::ablation_ladder() {
        let outcome = run(&instance, Flow::Ours(opts));
        let c = &outcome.counters;
        let (_, stats) = &outcome.compilation.functions[0];
        // Static frep instructions in the emitted assembly (the paper
        // counts assembly operations; loads/stores/fmadd are dynamic).
        let static_frep = outcome.compilation.assembly.matches("frep.o").count();
        rows.push(vec![
            label.to_string(),
            format!("{}/20", stats.num_fp()),
            format!("{}/15", stats.num_int()),
            c.loads().to_string(),
            c.stores().to_string(),
            c.fmadd.to_string(),
            static_frep.to_string(),
            c.cycles.to_string(),
            pct(c.fpu_utilization()),
        ]);
    }
    print_table(
        "Table 3: MatMul (1x200 x 200x5, f64) optimization ladder",
        &[
            "Optimizations",
            "FP regs",
            "Int regs",
            "Loads",
            "Stores",
            "FMAdd",
            "FRep",
            "Cycles",
            "Occupancy %",
        ],
        &rows,
    );
    println!(
        "Paper reference (same kernel): 3/20+13/15 regs, 3000/1005 loads/stores,\n\
         40161 cycles, 2.49% at the baseline; 8/20+7/15, 0/0, 1115 cycles, 90.67%\n\
         with the full pipeline."
    );
}
