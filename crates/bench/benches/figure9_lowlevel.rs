//! Figure 9 (RQ1): hand-written kernels in the assembly-level dialects.
//!
//! Paper: Sum and ReLU reach 95% FPU utilization with constant cycle
//! overhead independent of size; MatMulT reaches 74% utilization but only
//! 2.45 FLOPs/cycle due to the extra vector packing instructions.

use mlb_bench::{pct, print_table};
use mlb_kernels::{run_handwritten, Instance, Kind, Precision, Shape};

fn main() {
    let mut rows = Vec::new();
    for kind in [Kind::Sum, Kind::Relu] {
        for m in [16, 32, 64, 128, 256] {
            let instance = Instance::new(kind, Shape::nm(8, m), Precision::F32);
            let outcome = run_handwritten(&instance, mlb_bench::SEED)
                .unwrap_or_else(|e| panic!("{instance}: {e}"));
            let overhead = outcome.counters.cycles.saturating_sub(instance.min_cycles());
            rows.push(vec![
                instance.to_string(),
                outcome.counters.cycles.to_string(),
                instance.min_cycles().to_string(),
                overhead.to_string(),
                format!("{:.2}", outcome.counters.throughput()),
                pct(outcome.utilization()),
            ]);
        }
    }
    for k in [16, 32, 64, 128] {
        let instance = Instance::new(Kind::MatMulT, Shape::nmk(4, 16, k), Precision::F32);
        let outcome = run_handwritten(&instance, mlb_bench::SEED)
            .unwrap_or_else(|e| panic!("{instance}: {e}"));
        let overhead = outcome.counters.cycles.saturating_sub(instance.min_cycles());
        rows.push(vec![
            instance.to_string(),
            outcome.counters.cycles.to_string(),
            instance.min_cycles().to_string(),
            overhead.to_string(),
            format!("{:.2}", outcome.counters.throughput()),
            pct(outcome.utilization()),
        ]);
    }
    print_table(
        "Figure 9: hand-written low-level kernels (packed f32)",
        &["Kernel", "Cycles", "Min cycles", "Overhead", "FLOPs/cycle", "FPU util %"],
        &rows,
    );
    println!(
        "Paper reference: Sum/ReLU ~95% utilization with size-independent overhead;\n\
         MatMulT high utilization but reduced throughput (paper: 2.45 FLOPs/cycle)\n\
         because packing/reduction instructions occupy the FPU without useful FLOPs."
    );
}
