//! Criterion micro-benchmarks for the infrastructure itself: end-to-end
//! compilation latency per flow and simulator execution throughput.
//! (These complement the paper-reproduction tables, which measure the
//! *generated code*; here we measure the *compiler* and *simulator*.)

use criterion::{criterion_group, criterion_main, Criterion};
use mlb_core::{compile, Flow, PipelineOptions};
use mlb_ir::Context;
use mlb_kernels::{Instance, Kind, Precision, Shape};
use mlb_sim::{Engine, ExecProgram, Machine};

fn bench_compile(c: &mut Criterion) {
    let instance = Instance::new(Kind::MatMul, Shape::nmk(1, 5, 200), Precision::F64);
    let mut group = c.benchmark_group("compile-matmul");
    group.bench_function("full-pipeline", |b| {
        b.iter(|| {
            let mut ctx = Context::new();
            let module = instance.build_module(&mut ctx);
            compile(&mut ctx, module, Flow::Ours(PipelineOptions::full())).unwrap()
        })
    });
    group.bench_function("baseline-pipeline", |b| {
        b.iter(|| {
            let mut ctx = Context::new();
            let module = instance.build_module(&mut ctx);
            compile(&mut ctx, module, Flow::Ours(PipelineOptions::baseline())).unwrap()
        })
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let instance = Instance::new(Kind::MatMul, Shape::nmk(1, 5, 200), Precision::F64);
    let mut ctx = Context::new();
    let module = instance.build_module(&mut ctx);
    let compiled = compile(&mut ctx, module, Flow::Ours(PipelineOptions::full())).unwrap();
    // Predecode once outside the loop: the measurement covers the
    // execution engine, not the CFG scan it amortizes away.
    let exec = ExecProgram::new(mlb_sim::assemble(&compiled.assembly).unwrap());
    let mut group = c.benchmark_group("simulate-matmul-1x5x200");
    for (name, engine) in [("superblock", Engine::Superblock), ("checked", Engine::Checked)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut machine = Machine::new();
                machine.set_engine(engine);
                machine.write_f64_slice(mlb_isa::TCDM_BASE, &[1.0; 256]).unwrap();
                machine
                    .call_predecoded(
                        &exec,
                        "matmul",
                        &[
                            mlb_isa::TCDM_BASE,
                            mlb_isa::TCDM_BASE + 2048,
                            mlb_isa::TCDM_BASE + 16384,
                        ],
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_simulator);
criterion_main!(benches);
