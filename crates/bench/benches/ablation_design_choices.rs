//! Design-choice ablations beyond the paper's Table 3, for the design
//! decisions DESIGN.md calls out:
//!
//! 1. the unroll-and-jam factor (the paper argues at least
//!    FPU-pipeline-depth + 1 = 4 independent chains are needed;
//!    Section 3.4);
//! 2. the stream access-pattern optimizations (contiguous-dimension
//!    collapse and the zero-stride repeat counter; Section 3.2 argues
//!    they shrink the accelerator configuration).

use mlb_bench::{pct, print_table, run};
use mlb_core::{Flow, PipelineOptions};
use mlb_kernels::{Instance, Kind, Precision, Shape};

fn main() {
    // --- 1. unroll factor sweep -----------------------------------------
    let instance = Instance::new(Kind::MatMul, Shape::nmk(1, 8, 200), Precision::F64);
    let mut rows = Vec::new();
    for factor in [1, 2, 4, 8] {
        let opts = PipelineOptions { unroll_factor: Some(factor), ..PipelineOptions::full() };
        let outcome = run(&instance, Flow::Ours(opts));
        let (_, regs) = &outcome.compilation.functions[0];
        rows.push(vec![
            factor.to_string(),
            outcome.counters.cycles.to_string(),
            pct(outcome.utilization()),
            format!("{:.2}", outcome.counters.throughput()),
            format!("{}/20", regs.num_fp()),
        ]);
    }
    print_table(
        "Unroll-and-jam factor (MatMul 1x8x200 f64; FPU pipeline depth 3)",
        &["Factor", "Cycles", "FPU util %", "FLOPs/cycle", "FP registers"],
        &rows,
    );
    println!(
        "Expectation: factors below depth+1 = 4 leave RAW stalls in the reduction\n\
         chain; factor 4 removes them; factor 8 only adds register pressure."
    );

    // --- 2. stream pattern optimizations --------------------------------
    let mut rows = Vec::new();
    for kind in [Kind::MatMul, Kind::Conv3x3] {
        let shape = match kind {
            Kind::MatMul => Shape::nmk(1, 5, 200),
            _ => Shape::nm(4, 16),
        };
        let instance = Instance::new(kind, shape, Precision::F64);
        for optimize in [true, false] {
            let opts = PipelineOptions { stream_pattern_opts: optimize, ..PipelineOptions::full() };
            let outcome = run(&instance, Flow::Ours(opts));
            rows.push(vec![
                instance.to_string(),
                if optimize { "on" } else { "off" }.to_string(),
                outcome.counters.scfgwi.to_string(),
                outcome.counters.ssr_reads.to_string(),
                outcome.counters.cycles.to_string(),
                pct(outcome.utilization()),
            ]);
        }
    }
    print_table(
        "Stream pattern optimizations (contiguous collapse + repeat counter)",
        &["Kernel", "Opts", "scfgwi writes", "SSR element reads", "Cycles", "FPU util %"],
        &rows,
    );
    println!(
        "Expectation: disabling the optimizations programs more SSR dimensions\n\
         (more scfgwi writes) and re-reads repeated elements from the TCDM\n\
         instead of using the repeat counter."
    );
}
