//! Shared helpers for the paper-reproduction benchmark targets.
//!
//! Each `benches/` target regenerates one table or figure of the paper's
//! evaluation (Section 4); see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured numbers.

use mlb_core::Flow;
use mlb_kernels::{compile_and_run, Instance, RunOutcome};

/// Deterministic seed shared by all benchmark runs.
pub const SEED: u64 = 0x5eed_cafe;

/// Runs one instance under one flow, panicking with context on failure
/// (benchmarks must not silently skip points).
pub fn run(instance: &Instance, flow: Flow) -> RunOutcome {
    compile_and_run(instance, flow, SEED)
        .unwrap_or_else(|e| panic!("{instance} under {flow:?}: {e}"))
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

/// Prints a markdown table: header row plus rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!("|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9067), "90.7");
        assert_eq!(pct(0.0), "0.0");
    }
}
