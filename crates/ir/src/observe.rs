//! Pipeline observability: per-pass timing, size deltas and IR snapshots.
//!
//! A [`PipelineObserver`] hooks into [`PassManager::run_observed`]
//! (see [`crate::pass`]) and receives one [`PassEvent`] per executed
//! pass: wall-clock time, operation/block-count deltas, the rewrite
//! counters accumulated during the pass and — depending on the
//! observer's [`IrSnapshotMode`] — the printed IR after the pass. This
//! mirrors MLIR's `-mlir-timing` / `--print-ir-after-all`
//! instrumentation and backs the `mlbc --pass-timing` /
//! `--print-ir-after-all` / `--print-ir-after-change` flags.
//!
//! The default observer path costs nothing beyond two `walk`s per pass:
//! IR is only printed when a snapshot mode other than
//! [`IrSnapshotMode::None`] asks for it.

use crate::context::{Context, OpId, RewriteStats};

/// Whether (and when) the IR is printed after each pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IrSnapshotMode {
    /// Never print; `PassEvent::changed` and `ir_after` stay `None`.
    #[default]
    None,
    /// Print after every pass, keep the text only when the pass changed
    /// the IR (MLIR's `--print-ir-after-change`).
    OnChange,
    /// Keep the printed IR after every pass (`--print-ir-after-all`).
    All,
}

/// What one pass did, as observed by the pass manager.
#[derive(Debug, Clone)]
pub struct PassEvent {
    /// Position of the pass in its pipeline (0-based; restarts when a
    /// driver runs a second pipeline over the same module).
    pub index: usize,
    /// The pass name ([`crate::pass::Pass::name`]).
    pub pass: &'static str,
    /// Wall-clock time spent inside the pass, in nanoseconds.
    pub nanos: u128,
    /// Operations under (and including) the root before the pass.
    pub ops_before: usize,
    /// Operations under (and including) the root after the pass.
    pub ops_after: usize,
    /// Blocks under the root before the pass.
    pub blocks_before: usize,
    /// Blocks under the root after the pass.
    pub blocks_after: usize,
    /// Rewrite-driver activity during this pass (pattern applications
    /// and DCE erasures; see [`RewriteStats`]).
    pub rewrites: RewriteStats,
    /// Whether the printed IR changed across the pass. `None` when the
    /// snapshot mode is [`IrSnapshotMode::None`] (change detection
    /// requires printing).
    pub changed: Option<bool>,
    /// The IR after the pass, when the snapshot mode keeps it.
    pub ir_after: Option<String>,
}

/// Observer of a pass pipeline execution.
pub trait PipelineObserver {
    /// How much IR printing the observer wants (consulted once per
    /// pipeline run, before the first pass).
    fn snapshot_mode(&self) -> IrSnapshotMode {
        IrSnapshotMode::None
    }

    /// Called after each pass that ran successfully.
    fn on_pass(&mut self, event: PassEvent);

    /// Called after each pass that ran successfully, with the live IR.
    ///
    /// Unlike [`PassEvent::ir_after`], which carries printed text, this
    /// hook sees the actual [`Context`] — observers that need a
    /// structural snapshot (e.g. the stage-level differential tester,
    /// which re-executes each stage) can clone it here. The default does
    /// nothing, so observers that only want events pay no cost.
    fn on_ir(&mut self, ctx: &Context, root: OpId, pass: &'static str, index: usize) {
        let _ = (ctx, root, pass, index);
    }
}

/// Observer that ignores everything (the plain `PassManager::run` path).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl PipelineObserver for NoopObserver {
    fn on_pass(&mut self, _event: PassEvent) {}
}

/// Observer that records every [`PassEvent`] in order.
///
/// Drivers that retry a pipeline (e.g. the Clang-like flow falling back
/// to a non-unrolled schedule) surface the abandoned attempt's events
/// too; `PassEvent::index` restarting at 0 marks each pipeline start.
#[derive(Debug, Default)]
pub struct PipelineRecorder {
    mode: IrSnapshotMode,
    /// The recorded events, in execution order.
    pub events: Vec<PassEvent>,
}

impl PipelineRecorder {
    /// Creates a recorder with the given snapshot mode.
    pub fn new(mode: IrSnapshotMode) -> PipelineRecorder {
        PipelineRecorder { mode, events: Vec::new() }
    }

    /// Total wall-clock nanoseconds across all recorded passes.
    pub fn total_nanos(&self) -> u128 {
        self.events.iter().map(|e| e.nanos).sum()
    }
}

impl PipelineObserver for PipelineRecorder {
    fn snapshot_mode(&self) -> IrSnapshotMode {
        self.mode
    }

    fn on_pass(&mut self, event: PassEvent) {
        self.events.push(event);
    }
}

/// Counts the operations under and including `root`.
pub fn count_ops(ctx: &Context, root: OpId) -> usize {
    ctx.walk(root).len() + 1
}

/// Counts the blocks in all regions under (and including) `root`.
pub fn count_blocks(ctx: &Context, root: OpId) -> usize {
    let mut ops = vec![root];
    ops.extend(ctx.walk(root));
    ops.iter().flat_map(|&op| &ctx.op(op).regions).map(|&r| ctx.region_blocks(r).len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OpSpec;

    #[test]
    fn counts_cover_nested_regions() {
        let mut ctx = Context::new();
        let m = ctx.create_detached_op(OpSpec::new("t.module").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        let inner = ctx.append_op(b, OpSpec::new("t.loop").regions(1));
        let ib = ctx.create_block(ctx.op(inner).regions[0], vec![]);
        ctx.append_op(ib, OpSpec::new("t.body"));
        assert_eq!(count_ops(&ctx, m), 3);
        assert_eq!(count_blocks(&ctx, m), 2);
    }
}
