#![warn(missing_docs)]

//! SSA-with-regions compiler IR infrastructure.
//!
//! This crate plays the role xDSL/MLIR play in the paper: it provides the
//! static single assignment (SSA) intermediate representation with regions
//! (Section 2.1) on which all dialects, the register allocator and the
//! progressive lowering pipeline are built.
//!
//! # Overview
//!
//! - [`Context`] owns all IR entities (operations, blocks, regions,
//!   values) behind copyable ids.
//! - [`Type`] and [`Attribute`] form the type and attribute vocabulary,
//!   spanning high-level types (`memref`), stream types and the register
//!   types that bridge SSA semantics and physical registers.
//! - [`DialectRegistry`] records per-operation traits and verifiers; each
//!   dialect crate contributes registrations.
//! - [`printer`]/[`parser`] round-trip the IR through an MLIR-style
//!   generic textual form.
//! - [`rewrite`] provides greedy pattern application and DCE; [`pass`]
//!   provides the pass manager used to assemble lowering pipelines.
//!
//! # Example
//!
//! ```
//! use mlb_ir::{Context, OpSpec, Type, Attribute};
//!
//! let mut ctx = Context::new();
//! let module = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
//! let body = ctx.create_block(ctx.op(module).regions[0], vec![]);
//! let cst = ctx.append_op(
//!     body,
//!     OpSpec::new("arith.constant")
//!         .attr("value", Attribute::Float(1.0))
//!         .results(vec![Type::F64]),
//! );
//! let text = mlb_ir::print_op(&ctx, module);
//! assert!(text.contains("arith.constant"));
//! # let _ = cst;
//! ```

pub mod affine;
pub mod attributes;
pub mod context;
pub mod interp;
pub mod location;
pub mod observe;
pub mod parser;
pub mod pass;
pub mod printer;
pub mod registry;
pub mod rewrite;
pub mod types;

pub use affine::{AffineExpr, AffineMap};
pub use attributes::{Attribute, IteratorType, StreamPattern, StridePattern};
pub use context::{
    BlockId, Context, IrChange, OpId, OpSpec, Operation, RegionId, RewriteStats, ValueId, ValueKind,
};
pub use interp::{ExecRegistry, Flow, InterpError, Interpreter, StreamMover, Value};
pub use location::Location;
pub use observe::{IrSnapshotMode, NoopObserver, PassEvent, PipelineObserver, PipelineRecorder};
pub use parser::{parse_module, parse_module_with_locations, ParseError};
pub use pass::{Pass, PassError, PassManager};
pub use printer::print_op;
pub use registry::{DialectRegistry, OpInfo, VerifyError};
pub use rewrite::{
    apply_patterns_greedily, eliminate_dead_code, ConvergenceError, DriverMode, RewritePattern,
};
pub use types::{FunctionType, MemRefType, Type};
