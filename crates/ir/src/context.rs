//! IR storage: operations, blocks, regions and values.
//!
//! The [`Context`] owns every IR entity in index-addressed arenas. Entities
//! are referred to by lightweight copyable ids ([`OpId`], [`BlockId`],
//! [`RegionId`], [`ValueId`]), which keeps the deeply-recursive region
//! structure of MLIR-style IR simple to mutate from Rust.
//!
//! The structural invariants are the usual SSA-with-regions ones
//! (Section 2.1 of the paper): an operation has ordered operands and
//! results, an attribute dictionary, a list of regions and a list of
//! successor blocks; a region is a list of blocks; a block is a list of
//! operations plus block arguments; every value is defined either by an
//! operation result or a block argument.

use std::collections::BTreeMap;

use crate::attributes::Attribute;
use crate::location::Location;
use crate::types::Type;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// The raw arena index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

id_type!(
    /// Identifies an operation in a [`Context`].
    OpId
);
id_type!(
    /// Identifies a basic block in a [`Context`].
    BlockId
);
id_type!(
    /// Identifies a region in a [`Context`].
    RegionId
);
id_type!(
    /// Identifies an SSA value in a [`Context`].
    ValueId
);

/// Where a value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// The `index`-th result of operation `op`.
    OpResult {
        /// Defining operation.
        op: OpId,
        /// Result position.
        index: usize,
    },
    /// The `index`-th argument of block `block`.
    BlockArg {
        /// Owning block.
        block: BlockId,
        /// Argument position.
        index: usize,
    },
}

#[derive(Debug, Clone)]
struct ValueData {
    kind: ValueKind,
    ty: Type,
}

/// An operation: the uniform unit of computation at every abstraction level,
/// from `linalg.generic` down to individual `rv` assembly instructions.
#[derive(Debug, Clone)]
pub struct Operation {
    /// Fully-qualified name, e.g. `"arith.mulf"` or `"rv.fmadd.d"`.
    pub name: String,
    /// SSA operands.
    pub operands: Vec<ValueId>,
    /// SSA results.
    pub results: Vec<ValueId>,
    /// Compile-time constant attributes.
    pub attrs: BTreeMap<String, Attribute>,
    /// Nested regions.
    pub regions: Vec<RegionId>,
    /// Successor blocks (unstructured control flow only).
    pub successors: Vec<BlockId>,
    /// The block this operation currently lives in, if attached.
    pub parent: Option<BlockId>,
    /// Source provenance (see [`Location`]).
    pub loc: Location,
}

impl Operation {
    /// The dialect prefix of the operation name (`"arith"` for
    /// `"arith.mulf"`).
    pub fn dialect(&self) -> &str {
        self.name.split('.').next().unwrap_or("")
    }

    /// Looks up an attribute by name.
    pub fn attr(&self, key: &str) -> Option<&Attribute> {
        self.attrs.get(key)
    }
}

#[derive(Debug, Clone)]
struct BlockData {
    args: Vec<ValueId>,
    ops: Vec<OpId>,
    parent: RegionId,
}

#[derive(Debug, Clone)]
struct RegionData {
    blocks: Vec<BlockId>,
    parent: OpId,
}

/// A specification for creating an operation.
///
/// ```
/// use mlb_ir::{Context, OpSpec, Type, Attribute};
/// let mut ctx = Context::new();
/// let module = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
/// let body = ctx.create_block(ctx.op(module).regions[0], vec![]);
/// let op = ctx.append_op(
///     body,
///     OpSpec::new("arith.constant")
///         .attr("value", Attribute::Float(1.0))
///         .results(vec![Type::F64]),
/// );
/// assert_eq!(ctx.op(op).name, "arith.constant");
/// ```
#[derive(Debug, Clone)]
pub struct OpSpec {
    /// Operation name.
    pub name: String,
    /// Operand values.
    pub operands: Vec<ValueId>,
    /// Types of the results to create.
    pub result_types: Vec<Type>,
    /// Attribute dictionary.
    pub attrs: BTreeMap<String, Attribute>,
    /// Number of (initially empty) regions.
    pub num_regions: usize,
    /// Successor blocks.
    pub successors: Vec<BlockId>,
    /// Source provenance of the new operation.
    pub loc: Location,
}

impl OpSpec {
    /// Starts a specification for the operation `name`.
    pub fn new(name: impl Into<String>) -> OpSpec {
        OpSpec {
            name: name.into(),
            operands: Vec::new(),
            result_types: Vec::new(),
            attrs: BTreeMap::new(),
            num_regions: 0,
            successors: Vec::new(),
            loc: Location::Unknown,
        }
    }

    /// Sets the operands.
    pub fn operands(mut self, operands: Vec<ValueId>) -> OpSpec {
        self.operands = operands;
        self
    }

    /// Sets the result types.
    pub fn results(mut self, result_types: Vec<Type>) -> OpSpec {
        self.result_types = result_types;
        self
    }

    /// Adds an attribute.
    pub fn attr(mut self, key: impl Into<String>, value: Attribute) -> OpSpec {
        self.attrs.insert(key.into(), value);
        self
    }

    /// Sets the number of regions to create.
    pub fn regions(mut self, n: usize) -> OpSpec {
        self.num_regions = n;
        self
    }

    /// Sets the successor blocks.
    pub fn successors(mut self, successors: Vec<BlockId>) -> OpSpec {
        self.successors = successors;
        self
    }

    /// Sets the source provenance.
    pub fn loc(mut self, loc: Location) -> OpSpec {
        self.loc = loc;
        self
    }
}

/// Cumulative counters of the rewrite infrastructure.
///
/// Maintained by [`crate::rewrite::apply_patterns_greedily`] and
/// [`crate::rewrite::eliminate_dead_code`]; monotonically increasing over
/// the life of a [`Context`]. Pipeline instrumentation snapshots them
/// before and after a pass and reports the difference (see
/// [`crate::observe::PassEvent`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RewriteStats {
    /// Successful [`crate::rewrite::RewritePattern`] applications.
    pub pattern_applications: u64,
    /// Operations erased by dead-code elimination sweeps.
    pub dce_erased: u64,
    /// Operations pulled off the driver's worklist (or visited by a
    /// legacy re-walk sweep) and considered for rewriting.
    pub ops_visited: u64,
    /// Individual `match_and_rewrite` invocations (successful or not).
    pub match_attempts: u64,
    /// Operations re-enqueued because a rewrite touched their operands,
    /// users or region neighbourhood (worklist driver only).
    pub requeued: u64,
}

impl RewriteStats {
    /// Counter-wise difference `self - earlier`.
    pub fn delta_since(&self, earlier: RewriteStats) -> RewriteStats {
        RewriteStats {
            pattern_applications: self.pattern_applications - earlier.pattern_applications,
            dce_erased: self.dce_erased - earlier.dce_erased,
            ops_visited: self.ops_visited - earlier.ops_visited,
            match_attempts: self.match_attempts - earlier.match_attempts,
            requeued: self.requeued - earlier.requeued,
        }
    }
}

/// One structural mutation, recorded while a change journal is active.
///
/// The worklist rewrite driver activates the journal around pattern
/// invocations and uses the recorded changes to re-enqueue exactly the
/// operations a rewrite could have affected (see
/// [`crate::rewrite::apply_patterns_greedily`]). Patterns must therefore
/// mutate IR through [`Context`] APIs — in particular
/// [`Context::push_operand`] / [`Context::set_operand`] rather than
/// writing `op_mut(op).operands` directly.
#[derive(Debug, Clone)]
pub enum IrChange {
    /// A new operation was created (detached or attached).
    Created(OpId),
    /// An operation, with everything nested in it, was erased.
    /// `released` lists every value whose use count dropped because an
    /// erased operation's operand list went away.
    Erased {
        /// Values that lost at least one use.
        released: Vec<ValueId>,
    },
    /// Every use of `old` was redirected to `new`.
    ReplacedUses {
        /// The value that lost all its uses.
        old: ValueId,
        /// The value that gained them.
        new: ValueId,
    },
    /// An operand list changed in place (push or single-slot update).
    OperandsChanged {
        /// The operation whose operand list changed.
        op: OpId,
        /// Values that lost a use in the change (single-slot updates).
        released: Vec<ValueId>,
    },
    /// An operation moved to a new position.
    Moved(OpId),
    /// A value's type was replaced in place.
    TypeChanged(ValueId),
}

/// Owns all IR entities and provides structural mutation.
///
/// `Clone` snapshots the whole IR — used by drivers that need to retry a
/// pipeline with different options (ids remain valid in the clone).
#[derive(Debug, Default, Clone)]
pub struct Context {
    ops: Vec<Option<Operation>>,
    blocks: Vec<Option<BlockData>>,
    regions: Vec<Option<RegionData>>,
    values: Vec<ValueData>,
    /// Per-value user lists, indexed like `values`. Each entry appears
    /// once per using operand slot (so a value used twice by one op is
    /// listed twice), which makes `has_uses` O(1) and `replace_all_uses`
    /// O(uses) instead of O(all ops).
    users: Vec<Vec<OpId>>,
    /// Active change journal, if any (see [`IrChange`]).
    journal: Option<Vec<IrChange>>,
    /// Ambient source location inherited by ops created without one
    /// (see [`Context::set_builder_loc`]).
    builder_loc: Location,
    /// Which greedy rewrite driver this context's compilations use (see
    /// [`crate::rewrite::DriverMode`]). Deliberately a per-context field
    /// rather than thread or process state: contexts are per-request, so
    /// concurrent compilations with different drivers stay isolated.
    driver_mode: crate::rewrite::DriverMode,
    pub(crate) rewrite_stats: RewriteStats,
}

impl Context {
    /// Creates an empty context.
    pub fn new() -> Context {
        Context::default()
    }

    /// The rewrite driver [`crate::rewrite::apply_patterns_greedily`]
    /// runs for IR owned by this context.
    pub fn driver_mode(&self) -> crate::rewrite::DriverMode {
        self.driver_mode
    }

    /// Selects the rewrite driver for this context (default:
    /// [`crate::rewrite::DriverMode::Worklist`]).
    pub fn set_driver_mode(&mut self, mode: crate::rewrite::DriverMode) {
        self.driver_mode = mode;
    }

    /// The cumulative rewrite-driver counters (see [`RewriteStats`]).
    pub fn rewrite_stats(&self) -> RewriteStats {
        self.rewrite_stats
    }

    // ----- change journal --------------------------------------------------

    /// Starts (or restarts) the change journal. Subsequent structural
    /// mutations are recorded as [`IrChange`] entries until
    /// [`Context::journal_end`].
    pub fn journal_begin(&mut self) {
        self.journal = Some(Vec::new());
    }

    /// Takes the changes recorded so far, leaving the journal active.
    /// Returns an empty list when no journal is active.
    pub fn journal_drain(&mut self) -> Vec<IrChange> {
        match &mut self.journal {
            Some(j) => std::mem::take(j),
            None => Vec::new(),
        }
    }

    /// Stops journaling and discards any undrained entries.
    pub fn journal_end(&mut self) {
        self.journal = None;
    }

    fn journal_push(&mut self, change: IrChange) {
        if let Some(j) = &mut self.journal {
            j.push(change);
        }
    }

    // ----- use tracking ----------------------------------------------------

    fn new_value(&mut self, kind: ValueKind, ty: Type) -> ValueId {
        let v = ValueId(self.values.len() as u32);
        self.values.push(ValueData { kind, ty });
        self.users.push(Vec::new());
        v
    }

    fn add_user(&mut self, value: ValueId, op: OpId) {
        self.users[value.index()].push(op);
    }

    fn remove_user(&mut self, value: ValueId, op: OpId) {
        let list = &mut self.users[value.index()];
        if let Some(pos) = list.iter().position(|&u| u == op) {
            list.swap_remove(pos);
        }
    }

    /// The operations currently using `value`, one entry per using
    /// operand slot (an op using the value twice appears twice).
    /// Unordered; use [`Context::uses`] for a deterministic ordering.
    pub fn user_ops(&self, value: ValueId) -> &[OpId] {
        &self.users[value.index()]
    }

    // ----- accessors -------------------------------------------------------

    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the operation has been erased.
    pub fn op(&self, id: OpId) -> &Operation {
        self.ops[id.index()].as_ref().expect("operation was erased")
    }

    /// Mutable access to an operation.
    ///
    /// # Panics
    ///
    /// Panics if the operation has been erased.
    pub fn op_mut(&mut self, id: OpId) -> &mut Operation {
        self.ops[id.index()].as_mut().expect("operation was erased")
    }

    /// Whether the operation still exists (has not been erased).
    pub fn is_alive(&self, id: OpId) -> bool {
        self.ops[id.index()].is_some()
    }

    /// The type of a value.
    pub fn value_type(&self, v: ValueId) -> &Type {
        &self.values[v.index()].ty
    }

    /// Replaces the type of a value in place.
    ///
    /// Register allocation uses this to refine unallocated register types
    /// into allocated ones.
    pub fn set_value_type(&mut self, v: ValueId, ty: Type) {
        self.values[v.index()].ty = ty;
        self.journal_push(IrChange::TypeChanged(v));
    }

    /// How the value is defined.
    pub fn value_kind(&self, v: ValueId) -> ValueKind {
        self.values[v.index()].kind
    }

    /// The operation defining this value, if it is an op result.
    pub fn defining_op(&self, v: ValueId) -> Option<OpId> {
        match self.value_kind(v) {
            ValueKind::OpResult { op, .. } => Some(op),
            ValueKind::BlockArg { .. } => None,
        }
    }

    /// The operations of a block, in order.
    pub fn block_ops(&self, b: BlockId) -> &[OpId] {
        &self.block(b).ops
    }

    /// The arguments of a block.
    pub fn block_args(&self, b: BlockId) -> &[ValueId] {
        &self.block(b).args
    }

    /// The region owning a block.
    pub fn block_parent(&self, b: BlockId) -> RegionId {
        self.block(b).parent
    }

    /// The blocks of a region, in order.
    pub fn region_blocks(&self, r: RegionId) -> &[BlockId] {
        &self.region(r).blocks
    }

    /// The operation owning a region.
    pub fn region_parent(&self, r: RegionId) -> OpId {
        self.region(r).parent
    }

    /// The single block of a region.
    ///
    /// # Panics
    ///
    /// Panics if the region does not have exactly one block.
    pub fn sole_block(&self, r: RegionId) -> BlockId {
        let blocks = self.region_blocks(r);
        assert_eq!(blocks.len(), 1, "expected a single-block region");
        blocks[0]
    }

    /// The operation enclosing this operation, if any.
    pub fn parent_op(&self, op: OpId) -> Option<OpId> {
        let block = self.op(op).parent?;
        Some(self.region_parent(self.block_parent(block)))
    }

    /// The source provenance of an operation.
    pub fn loc(&self, op: OpId) -> &Location {
        &self.op(op).loc
    }

    /// Replaces the source provenance of an operation.
    ///
    /// Not journalled: provenance is metadata, not IR structure, so
    /// stamping it never re-enqueues worklist items.
    pub fn set_loc(&mut self, op: OpId, loc: Location) {
        self.op_mut(op).loc = loc;
    }

    /// The provenance effective at `op`: its own location if known,
    /// otherwise the nearest enclosing operation's known location.
    ///
    /// This is what assembly emission uses, so instructions synthesized
    /// outside any rewrite pattern (register-allocator moves, lowered
    /// branches) still attribute to their enclosing function at worst.
    pub fn effective_loc(&self, op: OpId) -> &Location {
        let mut cur = op;
        loop {
            if self.op(cur).loc.is_known() {
                return &self.op(cur).loc;
            }
            match self.parent_op(cur) {
                Some(parent) => cur = parent,
                None => return &self.op(op).loc,
            }
        }
    }

    /// Sets the ambient location that ops created without an explicit
    /// one inherit (see [`OpSpec::loc`]). Conversion passes that build
    /// replacement IR op-by-op set this to the source op's
    /// [`Context::effective_loc`] before emitting its replacements, so
    /// provenance survives lowerings that construct new functions and
    /// blocks from scratch. Cleared with [`Context::clear_builder_loc`];
    /// pattern drivers additionally stamp created ops themselves.
    pub fn set_builder_loc(&mut self, loc: Location) {
        self.builder_loc = loc;
    }

    /// Resets the ambient creation location to unknown.
    pub fn clear_builder_loc(&mut self) {
        self.builder_loc = Location::Unknown;
    }

    /// The terminator (last operation) of a block.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty.
    pub fn terminator(&self, b: BlockId) -> OpId {
        *self.block_ops(b).last().expect("block has no terminator")
    }

    fn block(&self, b: BlockId) -> &BlockData {
        self.blocks[b.index()].as_ref().expect("block was erased")
    }

    fn block_mut(&mut self, b: BlockId) -> &mut BlockData {
        self.blocks[b.index()].as_mut().expect("block was erased")
    }

    fn region(&self, r: RegionId) -> &RegionData {
        self.regions[r.index()].as_ref().expect("region was erased")
    }

    // ----- creation --------------------------------------------------------

    /// Creates an operation that is not attached to any block (used for
    /// top-level module ops).
    pub fn create_detached_op(&mut self, spec: OpSpec) -> OpId {
        let id = OpId(self.ops.len() as u32);
        let mut op = Operation {
            name: spec.name,
            operands: spec.operands,
            results: Vec::with_capacity(spec.result_types.len()),
            attrs: spec.attrs,
            regions: Vec::with_capacity(spec.num_regions),
            successors: spec.successors,
            parent: None,
            loc: if spec.loc.is_known() { spec.loc } else { self.builder_loc.clone() },
        };
        for (index, ty) in spec.result_types.into_iter().enumerate() {
            let v = self.new_value(ValueKind::OpResult { op: id, index }, ty);
            op.results.push(v);
        }
        for _ in 0..spec.num_regions {
            let r = RegionId(self.regions.len() as u32);
            self.regions.push(Some(RegionData { blocks: Vec::new(), parent: id }));
            op.regions.push(r);
        }
        for i in 0..op.operands.len() {
            self.add_user(op.operands[i], id);
        }
        self.ops.push(Some(op));
        self.journal_push(IrChange::Created(id));
        id
    }

    /// Appends a new (empty) region to an operation.
    pub fn add_region(&mut self, op: OpId) -> RegionId {
        let r = RegionId(self.regions.len() as u32);
        self.regions.push(Some(RegionData { blocks: Vec::new(), parent: op }));
        self.op_mut(op).regions.push(r);
        r
    }

    /// Creates a block with the given argument types at the end of `region`.
    pub fn create_block(&mut self, region: RegionId, arg_types: Vec<Type>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        let mut args = Vec::with_capacity(arg_types.len());
        for (index, ty) in arg_types.into_iter().enumerate() {
            let v = self.new_value(ValueKind::BlockArg { block: id, index }, ty);
            args.push(v);
        }
        self.blocks.push(Some(BlockData { args, ops: Vec::new(), parent: region }));
        self.regions[region.index()].as_mut().expect("region was erased").blocks.push(id);
        id
    }

    /// Appends a new block argument to an existing block.
    pub fn add_block_arg(&mut self, block: BlockId, ty: Type) -> ValueId {
        let index = self.block(block).args.len();
        let v = self.new_value(ValueKind::BlockArg { block, index }, ty);
        self.block_mut(block).args.push(v);
        v
    }

    /// Creates an operation and appends it to `block`.
    pub fn append_op(&mut self, block: BlockId, spec: OpSpec) -> OpId {
        let id = self.create_detached_op(spec);
        self.op_mut(id).parent = Some(block);
        self.block_mut(block).ops.push(id);
        id
    }

    /// Creates an operation and inserts it before `before` in its block.
    ///
    /// # Panics
    ///
    /// Panics if `before` is detached.
    pub fn insert_op_before(&mut self, before: OpId, spec: OpSpec) -> OpId {
        let block = self.op(before).parent.expect("insertion anchor is detached");
        let pos = self.op_position(before);
        let id = self.create_detached_op(spec);
        self.op_mut(id).parent = Some(block);
        self.block_mut(block).ops.insert(pos, id);
        id
    }

    /// The position of an operation inside its parent block.
    ///
    /// # Panics
    ///
    /// Panics if the operation is detached.
    pub fn op_position(&self, op: OpId) -> usize {
        let block = self.op(op).parent.expect("operation is detached");
        self.block(block)
            .ops
            .iter()
            .position(|&o| o == op)
            .expect("operation not found in its parent block")
    }

    // ----- mutation --------------------------------------------------------

    /// Detaches an operation from its parent block without erasing it.
    pub fn detach_op(&mut self, op: OpId) {
        if let Some(block) = self.op(op).parent {
            let pos = self.op_position(op);
            self.block_mut(block).ops.remove(pos);
            self.op_mut(op).parent = None;
        }
    }

    /// Moves an operation (and everything nested in it) before `before`.
    pub fn move_op_before(&mut self, op: OpId, before: OpId) {
        self.detach_op(op);
        let block = self.op(before).parent.expect("anchor is detached");
        let pos = self.op_position(before);
        self.op_mut(op).parent = Some(block);
        self.block_mut(block).ops.insert(pos, op);
        self.journal_push(IrChange::Moved(op));
    }

    /// Moves an operation to the end of `block`.
    pub fn move_op_to_end(&mut self, op: OpId, block: BlockId) {
        self.detach_op(op);
        self.op_mut(op).parent = Some(block);
        self.block_mut(block).ops.push(op);
        self.journal_push(IrChange::Moved(op));
    }

    /// Detaches `block` from its region and appends it to `region`.
    ///
    /// Used by control-flow lowering to hoist structured-loop bodies into
    /// the flat block list of a function.
    pub fn move_block_to_region(&mut self, block: BlockId, region: RegionId) {
        let old_region = self.block(block).parent;
        let old = self.regions[old_region.index()].as_mut().expect("region was erased");
        old.blocks.retain(|&b| b != block);
        self.block_mut(block).parent = region;
        self.regions[region.index()].as_mut().expect("region was erased").blocks.push(block);
    }

    /// Inserts an (already created, detached) block after `after` within
    /// its region.
    ///
    /// # Panics
    ///
    /// Panics if `after` is not in the same region as `block`.
    pub fn move_block_after(&mut self, block: BlockId, after: BlockId) {
        let region = self.block(after).parent;
        self.move_block_to_region(block, region);
        let blocks = &mut self.regions[region.index()].as_mut().expect("region").blocks;
        blocks.retain(|&b| b != block);
        let pos = blocks.iter().position(|&b| b == after).expect("anchor block not in region");
        blocks.insert(pos + 1, block);
    }

    /// Clones the operations of `from` (excluding any trailing terminator
    /// if `skip_terminator`) into `to`, rewriting operand references
    /// through `value_map` and recording result mappings there. Nested
    /// regions are cloned recursively.
    pub fn clone_block_ops(
        &mut self,
        from: BlockId,
        to: BlockId,
        value_map: &mut std::collections::HashMap<ValueId, ValueId>,
        skip_terminator: bool,
    ) {
        let ops: Vec<OpId> = self.block_ops(from).to_vec();
        let count = if skip_terminator { ops.len().saturating_sub(1) } else { ops.len() };
        for &op in &ops[..count] {
            self.clone_op_into(op, to, value_map);
        }
    }

    /// Clones one operation (with nested regions) at the end of `block`.
    pub fn clone_op_into(
        &mut self,
        op: OpId,
        block: BlockId,
        value_map: &mut std::collections::HashMap<ValueId, ValueId>,
    ) -> OpId {
        let old = self.op(op).clone();
        let operands: Vec<ValueId> =
            old.operands.iter().map(|v| *value_map.get(v).unwrap_or(v)).collect();
        let result_types: Vec<Type> =
            old.results.iter().map(|&r| self.value_type(r).clone()).collect();
        let spec = OpSpec {
            name: old.name.clone(),
            operands,
            result_types,
            attrs: old.attrs.clone(),
            num_regions: old.regions.len(),
            successors: old.successors.clone(),
            loc: old.loc.clone(),
        };
        let new = self.append_op(block, spec);
        for (i, &r) in old.results.iter().enumerate() {
            let nr = self.op(new).results[i];
            value_map.insert(r, nr);
        }
        for (ri, &old_region) in old.regions.iter().enumerate() {
            let new_region = self.op(new).regions[ri];
            for &old_block in &self.region_blocks(old_region).to_vec() {
                let arg_types: Vec<Type> = self
                    .block_args(old_block)
                    .iter()
                    .map(|&a| self.value_type(a).clone())
                    .collect();
                let new_block = self.create_block(new_region, arg_types);
                for (ai, &a) in self.block_args(old_block).to_vec().iter().enumerate() {
                    let na = self.block_args(new_block)[ai];
                    value_map.insert(a, na);
                }
                self.clone_block_ops(old_block, new_block, value_map, false);
            }
        }
        new
    }

    /// Erases an operation and all nested regions, blocks and operations.
    ///
    /// The caller is responsible for ensuring no remaining operation uses
    /// the results (checked by [`Context::verify_structure`] and debug
    /// assertions in tests, not here, to allow bulk teardown in any order).
    pub fn erase_op(&mut self, op: OpId) {
        let _ = self.erase_op_collecting(op);
    }

    /// Erases like [`Context::erase_op`] and additionally returns the
    /// values whose use counts dropped; used by dead-code elimination to
    /// cascade into newly-dead defining ops.
    pub(crate) fn erase_op_collecting(&mut self, op: OpId) -> Vec<ValueId> {
        let mut released = Vec::new();
        self.erase_op_inner(op, &mut released);
        if self.journal.is_some() {
            self.journal_push(IrChange::Erased { released: released.clone() });
        }
        released
    }

    fn erase_op_inner(&mut self, op: OpId, released: &mut Vec<ValueId>) {
        self.detach_op(op);
        let erased = self.ops[op.index()].take().expect("operation was erased");
        for &v in &erased.operands {
            self.remove_user(v, op);
            released.push(v);
        }
        for r in erased.regions {
            let blocks = self.region(r).blocks.clone();
            for b in blocks {
                let ops = self.block(b).ops.clone();
                for o in ops {
                    // Nested ops: detach cheaply by clearing, then recurse.
                    self.op_mut(o).parent = None;
                    self.erase_op_inner(o, released);
                }
                self.blocks[b.index()] = None;
            }
            self.regions[r.index()] = None;
        }
    }

    /// Replaces every use of `old` with `new` in all live operations.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        if old == new {
            return;
        }
        let moved = std::mem::take(&mut self.users[old.index()]);
        for &user in &moved {
            for operand in &mut self.ops[user.index()].as_mut().expect("user was erased").operands {
                if *operand == old {
                    *operand = new;
                }
            }
        }
        self.users[new.index()].extend(moved);
        self.journal_push(IrChange::ReplacedUses { old, new });
    }

    /// All `(operation, operand_index)` pairs currently using `value`,
    /// ordered by (operation id, operand index).
    pub fn uses(&self, value: ValueId) -> Vec<(OpId, usize)> {
        let mut user_ops: Vec<OpId> = self.users[value.index()].clone();
        user_ops.sort_unstable();
        user_ops.dedup();
        let mut out = Vec::new();
        for user in user_ops {
            for (j, &operand) in self.op(user).operands.iter().enumerate() {
                if operand == value {
                    out.push((user, j));
                }
            }
        }
        out
    }

    /// Whether `value` has any use.
    pub fn has_uses(&self, value: ValueId) -> bool {
        !self.users[value.index()].is_empty()
    }

    /// Appends `value` to the operand list of `op`, keeping use lists
    /// consistent. Passes must use this (or [`Context::set_operand`])
    /// instead of mutating `op_mut(op).operands` directly.
    pub fn push_operand(&mut self, op: OpId, value: ValueId) {
        self.op_mut(op).operands.push(value);
        self.add_user(value, op);
        self.journal_push(IrChange::OperandsChanged { op, released: Vec::new() });
    }

    /// Replaces operand `index` of `op` with `value`, keeping use lists
    /// consistent.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_operand(&mut self, op: OpId, index: usize, value: ValueId) {
        let old = std::mem::replace(&mut self.op_mut(op).operands[index], value);
        let released = if old == value {
            Vec::new()
        } else {
            self.remove_user(old, op);
            self.add_user(value, op);
            vec![old]
        };
        self.journal_push(IrChange::OperandsChanged { op, released });
    }

    // ----- traversal -------------------------------------------------------

    /// All operations nested in `root` (excluding `root`), pre-order.
    pub fn walk(&self, root: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        self.walk_into(root, &mut out);
        out
    }

    fn walk_into(&self, root: OpId, out: &mut Vec<OpId>) {
        for &r in &self.op(root).regions {
            for &b in self.region_blocks(r) {
                for &o in self.block_ops(b) {
                    out.push(o);
                    self.walk_into(o, out);
                }
            }
        }
    }

    /// All operations nested in `root` whose name is `name`, pre-order.
    pub fn walk_named(&self, root: OpId, name: &str) -> Vec<OpId> {
        self.walk(root).into_iter().filter(|&o| self.op(o).name == name).collect()
    }

    /// Checks structural invariants under `root`:
    /// every operand is a live value defined by a live entity, parent links
    /// are consistent, and result/argument back-references hold.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn verify_structure(&self, root: OpId) -> Result<(), String> {
        let mut all = vec![root];
        all.extend(self.walk(root));
        for &op_id in &all {
            let op = self.op(op_id);
            for (i, &v) in op.operands.iter().enumerate() {
                match self.value_kind(v) {
                    ValueKind::OpResult { op: def, .. } => {
                        if !self.is_alive(def) {
                            return Err(format!(
                                "operand {i} of {} uses a value from an erased op",
                                op.name
                            ));
                        }
                    }
                    ValueKind::BlockArg { block, .. } => {
                        if self.blocks[block.index()].is_none() {
                            return Err(format!(
                                "operand {i} of {} uses an argument of an erased block",
                                op.name
                            ));
                        }
                    }
                }
            }
            for (index, &v) in op.results.iter().enumerate() {
                if self.value_kind(v) != (ValueKind::OpResult { op: op_id, index }) {
                    return Err(format!("result {index} of {} has a bad back-reference", op.name));
                }
            }
            for &r in &op.regions {
                if self.region_parent(r) != op_id {
                    return Err(format!("region of {} has a bad parent link", op.name));
                }
                for &b in self.region_blocks(r) {
                    if self.block_parent(b) != r {
                        return Err(format!("block in {} has a bad parent link", op.name));
                    }
                    for &o in self.block_ops(b) {
                        if self.op(o).parent != Some(b) {
                            return Err(format!("op {} has a bad parent link", self.op(o).name));
                        }
                    }
                }
            }
        }
        self.verify_use_lists()
    }

    /// Checks that the per-value user lists exactly mirror the operand
    /// lists of all live operations (one user entry per operand slot).
    fn verify_use_lists(&self) -> Result<(), String> {
        let mut expected: std::collections::HashMap<(ValueId, OpId), usize> =
            std::collections::HashMap::new();
        for (i, slot) in self.ops.iter().enumerate() {
            if let Some(op) = slot {
                for &v in &op.operands {
                    *expected.entry((v, OpId(i as u32))).or_insert(0) += 1;
                }
            }
        }
        let mut actual: std::collections::HashMap<(ValueId, OpId), usize> =
            std::collections::HashMap::new();
        for (i, list) in self.users.iter().enumerate() {
            for &user in list {
                *actual.entry((ValueId(i as u32), user)).or_insert(0) += 1;
            }
        }
        if expected != actual {
            for (&(v, op), &n) in &expected {
                if actual.get(&(v, op)).copied().unwrap_or(0) != n {
                    return Err(format!(
                        "use list out of sync: value %{} used {n}x by op {} but {}x tracked",
                        v.index(),
                        self.ops[op.index()].as_ref().map_or("<erased>", |o| o.name.as_str()),
                        actual.get(&(v, op)).copied().unwrap_or(0),
                    ));
                }
            }
            for (&(v, op), &n) in &actual {
                if expected.get(&(v, op)).copied().unwrap_or(0) != n {
                    return Err(format!(
                        "use list out of sync: value %{} tracked {n}x for op {} but not used",
                        v.index(),
                        self.ops[op.index()].as_ref().map_or("<erased>", |o| o.name.as_str()),
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_module(ctx: &mut Context) -> (OpId, BlockId) {
        let module = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let body = ctx.create_block(ctx.op(module).regions[0], vec![]);
        (module, body)
    }

    #[test]
    fn create_and_query() {
        let mut ctx = Context::new();
        let (module, body) = small_module(&mut ctx);
        let c = ctx.append_op(
            body,
            OpSpec::new("arith.constant")
                .attr("value", Attribute::Float(2.0))
                .results(vec![Type::F64]),
        );
        let v = ctx.op(c).results[0];
        let m = ctx.append_op(
            body,
            OpSpec::new("arith.mulf").operands(vec![v, v]).results(vec![Type::F64]),
        );
        assert_eq!(ctx.block_ops(body), &[c, m]);
        assert_eq!(ctx.op(m).operands, vec![v, v]);
        assert_eq!(*ctx.value_type(v), Type::F64);
        assert_eq!(ctx.defining_op(v), Some(c));
        assert_eq!(ctx.parent_op(c), Some(module));
        assert!(ctx.verify_structure(module).is_ok());
    }

    #[test]
    fn uses_and_replace_all_uses() {
        let mut ctx = Context::new();
        let (_, body) = small_module(&mut ctx);
        let c1 = ctx.append_op(body, OpSpec::new("arith.constant").results(vec![Type::F64]));
        let c2 = ctx.append_op(body, OpSpec::new("arith.constant").results(vec![Type::F64]));
        let v1 = ctx.op(c1).results[0];
        let v2 = ctx.op(c2).results[0];
        let add = ctx.append_op(
            body,
            OpSpec::new("arith.addf").operands(vec![v1, v1]).results(vec![Type::F64]),
        );
        assert_eq!(ctx.uses(v1).len(), 2);
        assert!(!ctx.has_uses(v2));
        ctx.replace_all_uses(v1, v2);
        assert_eq!(ctx.op(add).operands, vec![v2, v2]);
        assert!(!ctx.has_uses(v1));
    }

    #[test]
    fn erase_nested() {
        let mut ctx = Context::new();
        let (module, body) = small_module(&mut ctx);
        let func = ctx.append_op(body, OpSpec::new("func.func").regions(1));
        let fbody = ctx.create_block(ctx.op(func).regions[0], vec![Type::F64]);
        let arg = ctx.block_args(fbody)[0];
        let _ret = ctx.append_op(fbody, OpSpec::new("func.return").operands(vec![arg]));
        ctx.erase_op(func);
        assert!(!ctx.is_alive(func));
        assert!(ctx.block_ops(body).is_empty());
        assert!(ctx.verify_structure(module).is_ok());
    }

    #[test]
    fn insertion_and_movement() {
        let mut ctx = Context::new();
        let (_, body) = small_module(&mut ctx);
        let a = ctx.append_op(body, OpSpec::new("t.a"));
        let c = ctx.append_op(body, OpSpec::new("t.c"));
        let b = ctx.insert_op_before(c, OpSpec::new("t.b"));
        assert_eq!(
            ctx.block_ops(body).iter().map(|&o| ctx.op(o).name.clone()).collect::<Vec<_>>(),
            ["t.a", "t.b", "t.c"]
        );
        ctx.move_op_before(c, a);
        assert_eq!(
            ctx.block_ops(body).iter().map(|&o| ctx.op(o).name.clone()).collect::<Vec<_>>(),
            ["t.c", "t.a", "t.b"]
        );
        ctx.move_op_to_end(c, body);
        assert_eq!(
            ctx.block_ops(body).iter().map(|&o| ctx.op(o).name.clone()).collect::<Vec<_>>(),
            ["t.a", "t.b", "t.c"]
        );
        assert_eq!(ctx.op_position(b), 1);
    }

    #[test]
    fn walk_is_preorder() {
        let mut ctx = Context::new();
        let (module, body) = small_module(&mut ctx);
        let outer = ctx.append_op(body, OpSpec::new("scf.for").regions(1));
        let obody = ctx.create_block(ctx.op(outer).regions[0], vec![Type::Index]);
        let inner = ctx.append_op(obody, OpSpec::new("scf.for").regions(1));
        let ibody = ctx.create_block(ctx.op(inner).regions[0], vec![Type::Index]);
        let leaf = ctx.append_op(ibody, OpSpec::new("arith.addf"));
        let after = ctx.append_op(body, OpSpec::new("func.return"));
        assert_eq!(ctx.walk(module), vec![outer, inner, leaf, after]);
        assert_eq!(ctx.walk_named(module, "scf.for"), vec![outer, inner]);
    }

    #[test]
    fn structure_verifier_catches_dangling_operand() {
        let mut ctx = Context::new();
        let (module, body) = small_module(&mut ctx);
        let c = ctx.append_op(body, OpSpec::new("arith.constant").results(vec![Type::F64]));
        let v = ctx.op(c).results[0];
        let _user = ctx
            .append_op(body, OpSpec::new("arith.negf").operands(vec![v]).results(vec![Type::F64]));
        ctx.erase_op(c);
        let err = ctx.verify_structure(module).unwrap_err();
        assert!(err.contains("erased op"), "{err}");
    }

    #[test]
    fn block_arg_addition() {
        let mut ctx = Context::new();
        let (_, body) = small_module(&mut ctx);
        let f = ctx.append_op(body, OpSpec::new("func.func").regions(1));
        let fb = ctx.create_block(ctx.op(f).regions[0], vec![Type::F64]);
        let extra = ctx.add_block_arg(fb, Type::Index);
        assert_eq!(ctx.block_args(fb).len(), 2);
        assert_eq!(*ctx.value_type(extra), Type::Index);
        assert_eq!(ctx.value_kind(extra), ValueKind::BlockArg { block: fb, index: 1 });
    }

    #[test]
    fn clone_op_with_region() {
        let mut ctx = Context::new();
        let (_, body) = small_module(&mut ctx);
        let c = ctx.append_op(body, OpSpec::new("arith.constant").results(vec![Type::F64]));
        let v = ctx.op(c).results[0];
        let outer = ctx.append_op(body, OpSpec::new("scf.for").operands(vec![v]).regions(1));
        let inner_block = ctx.create_block(ctx.op(outer).regions[0], vec![Type::Index]);
        let arg = ctx.block_args(inner_block)[0];
        ctx.append_op(body, OpSpec::new("t.end"));
        ctx.append_op(inner_block, OpSpec::new("t.use").operands(vec![arg, v]));

        let mut map = std::collections::HashMap::new();
        let cloned = ctx.clone_op_into(outer, body, &mut map);
        let cloned_block = ctx.sole_block(ctx.op(cloned).regions[0]);
        let cloned_use = ctx.block_ops(cloned_block)[0];
        // The arg reference was remapped; the outer reference kept.
        assert_eq!(ctx.op(cloned_use).operands[0], ctx.block_args(cloned_block)[0]);
        assert_eq!(ctx.op(cloned_use).operands[1], v);
    }

    #[test]
    fn move_block_between_regions() {
        let mut ctx = Context::new();
        let (_, body) = small_module(&mut ctx);
        let f = ctx.append_op(body, OpSpec::new("func.func").regions(1));
        let region = ctx.op(f).regions[0];
        let b0 = ctx.create_block(region, vec![]);
        let loop_op = ctx.append_op(b0, OpSpec::new("scf.for").regions(1));
        let inner = ctx.create_block(ctx.op(loop_op).regions[0], vec![]);
        ctx.move_block_after(inner, b0);
        assert_eq!(ctx.region_blocks(region), &[b0, inner]);
        assert!(ctx.region_blocks(ctx.op(loop_op).regions[0]).is_empty());
        assert_eq!(ctx.block_parent(inner), region);
    }

    #[test]
    fn terminator_accessor() {
        let mut ctx = Context::new();
        let (_, body) = small_module(&mut ctx);
        let _a = ctx.append_op(body, OpSpec::new("t.a"));
        let b = ctx.append_op(body, OpSpec::new("t.b"));
        assert_eq!(ctx.terminator(body), b);
    }
}
