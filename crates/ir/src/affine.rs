//! Affine expressions and maps.
//!
//! `linalg.generic` and `memref_stream.generic` describe the relationship
//! between the iteration space and operand data with affine maps
//! (Section 2.2). The backend evaluates and differentiates these maps to
//! derive the stream stride patterns programmed into the SSR address
//! generators (Section 3.2).

use std::fmt;

/// An affine expression over dimension and symbol variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AffineExpr {
    /// The `d<n>`-th dimension variable.
    Dim(usize),
    /// The `s<n>`-th symbol variable.
    Sym(usize),
    /// An integer constant.
    Const(i64),
    /// Sum of two expressions.
    Add(Box<AffineExpr>, Box<AffineExpr>),
    /// Product of two expressions (at least one side must be constant for
    /// the expression to remain affine; this is checked by [`AffineExpr::is_affine`]).
    Mul(Box<AffineExpr>, Box<AffineExpr>),
    /// Floor division by a constant.
    FloorDiv(Box<AffineExpr>, i64),
    /// Euclidean remainder by a constant.
    Mod(Box<AffineExpr>, i64),
}

impl AffineExpr {
    /// `d<n>` dimension variable.
    pub fn dim(n: usize) -> AffineExpr {
        AffineExpr::Dim(n)
    }

    /// Integer constant.
    pub fn constant(c: i64) -> AffineExpr {
        AffineExpr::Const(c)
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: AffineExpr) -> AffineExpr {
        AffineExpr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self * c`.
    pub fn mul_const(self, c: i64) -> AffineExpr {
        AffineExpr::Mul(Box::new(self), Box::new(AffineExpr::Const(c)))
    }

    /// Evaluates the expression with the given dimension and symbol values.
    ///
    /// # Panics
    ///
    /// Panics if a dimension/symbol index is out of range or on division by
    /// a non-positive constant.
    pub fn eval(&self, dims: &[i64], syms: &[i64]) -> i64 {
        match self {
            AffineExpr::Dim(n) => dims[*n],
            AffineExpr::Sym(n) => syms[*n],
            AffineExpr::Const(c) => *c,
            AffineExpr::Add(a, b) => a.eval(dims, syms) + b.eval(dims, syms),
            AffineExpr::Mul(a, b) => a.eval(dims, syms) * b.eval(dims, syms),
            AffineExpr::FloorDiv(a, c) => {
                assert!(*c > 0, "floordiv by non-positive constant");
                a.eval(dims, syms).div_euclid(*c)
            }
            AffineExpr::Mod(a, c) => {
                assert!(*c > 0, "mod by non-positive constant");
                a.eval(dims, syms).rem_euclid(*c)
            }
        }
    }

    /// Whether the expression is affine: products require a constant side
    /// and div/mod require constant divisors (enforced structurally).
    pub fn is_affine(&self) -> bool {
        match self {
            AffineExpr::Dim(_) | AffineExpr::Sym(_) | AffineExpr::Const(_) => true,
            AffineExpr::Add(a, b) => a.is_affine() && b.is_affine(),
            AffineExpr::Mul(a, b) => {
                (matches!(**a, AffineExpr::Const(_)) || matches!(**b, AffineExpr::Const(_)))
                    && a.is_affine()
                    && b.is_affine()
            }
            AffineExpr::FloorDiv(a, _) | AffineExpr::Mod(a, _) => a.is_affine(),
        }
    }

    /// Whether the expression is a pure linear combination of dims plus a
    /// constant (no div/mod, no symbols). Linear expressions have exact
    /// per-dimension strides.
    pub fn is_linear_in_dims(&self) -> bool {
        match self {
            AffineExpr::Dim(_) | AffineExpr::Const(_) => true,
            AffineExpr::Sym(_) => false,
            AffineExpr::Add(a, b) => a.is_linear_in_dims() && b.is_linear_in_dims(),
            AffineExpr::Mul(a, b) => {
                (matches!(**a, AffineExpr::Const(_)) && b.is_linear_in_dims())
                    || (matches!(**b, AffineExpr::Const(_)) && a.is_linear_in_dims())
            }
            _ => false,
        }
    }

    /// The largest dimension index used, plus one (0 if none).
    pub fn num_dims_used(&self) -> usize {
        match self {
            AffineExpr::Dim(n) => n + 1,
            AffineExpr::Sym(_) | AffineExpr::Const(_) => 0,
            AffineExpr::Add(a, b) | AffineExpr::Mul(a, b) => {
                a.num_dims_used().max(b.num_dims_used())
            }
            AffineExpr::FloorDiv(a, _) | AffineExpr::Mod(a, _) => a.num_dims_used(),
        }
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffineExpr::Dim(n) => write!(f, "d{n}"),
            AffineExpr::Sym(n) => write!(f, "s{n}"),
            AffineExpr::Const(c) => write!(f, "{c}"),
            AffineExpr::Add(a, b) => write!(f, "({a} + {b})"),
            AffineExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            AffineExpr::FloorDiv(a, c) => write!(f, "({a} floordiv {c})"),
            AffineExpr::Mod(a, c) => write!(f, "({a} mod {c})"),
        }
    }
}

/// An affine map `(d0, …, dN-1)[s0, …] -> (e0, …, eM-1)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineMap {
    /// Number of dimension variables.
    pub num_dims: usize,
    /// Number of symbol variables.
    pub num_syms: usize,
    /// Result expressions.
    pub results: Vec<AffineExpr>,
}

impl AffineMap {
    /// Creates a map, validating that every result is affine and in range.
    ///
    /// # Panics
    ///
    /// Panics if a result expression is not affine or refers to an
    /// out-of-range dimension.
    pub fn new(num_dims: usize, num_syms: usize, results: Vec<AffineExpr>) -> AffineMap {
        for e in &results {
            assert!(e.is_affine(), "non-affine map result: {e}");
            assert!(
                e.num_dims_used() <= num_dims,
                "map result {e} uses out-of-range dimension (num_dims = {num_dims})"
            );
        }
        AffineMap { num_dims, num_syms, results }
    }

    /// The identity map on `n` dimensions.
    ///
    /// ```
    /// use mlb_ir::affine::AffineMap;
    /// let id = AffineMap::identity(3);
    /// assert_eq!(id.eval(&[4, 5, 6], &[]), vec![4, 5, 6]);
    /// ```
    pub fn identity(n: usize) -> AffineMap {
        AffineMap::new(n, 0, (0..n).map(AffineExpr::Dim).collect())
    }

    /// A map from `num_dims` dimensions selecting the given dimensions.
    pub fn projection(num_dims: usize, dims: &[usize]) -> AffineMap {
        AffineMap::new(num_dims, 0, dims.iter().map(|&d| AffineExpr::Dim(d)).collect())
    }

    /// A map with no results (used for zero-rank outputs).
    pub fn empty(num_dims: usize) -> AffineMap {
        AffineMap::new(num_dims, 0, vec![])
    }

    /// Evaluates all results.
    pub fn eval(&self, dims: &[i64], syms: &[i64]) -> Vec<i64> {
        assert_eq!(dims.len(), self.num_dims, "wrong number of dims");
        assert_eq!(syms.len(), self.num_syms, "wrong number of symbols");
        self.results.iter().map(|e| e.eval(dims, syms)).collect()
    }

    /// Whether all results are linear in the dimensions.
    pub fn is_linear(&self) -> bool {
        self.results.iter().all(AffineExpr::is_linear_in_dims)
    }

    /// For a linear map, the coefficient of dimension `d` in each result,
    /// computed by finite differences (exact for linear maps).
    pub fn dim_coefficients(&self, d: usize) -> Vec<i64> {
        assert!(self.is_linear(), "dim_coefficients requires a linear map");
        let zeros = vec![0i64; self.num_dims];
        let mut unit = zeros.clone();
        unit[d] = 1;
        let at_zero = self.eval(&zeros, &[]);
        let at_unit = self.eval(&unit, &[]);
        at_unit.iter().zip(&at_zero).map(|(a, b)| a - b).collect()
    }

    /// Composes `self` after `inner`: `(self ∘ inner)(d) = self(inner(d))`.
    ///
    /// # Panics
    ///
    /// Panics if `inner` produces a different number of results than
    /// `self` has dimensions, or if either map uses symbols.
    pub fn compose(&self, inner: &AffineMap) -> AffineMap {
        assert_eq!(self.num_dims, inner.results.len());
        assert_eq!(self.num_syms, 0);
        assert_eq!(inner.num_syms, 0);
        let results = self.results.iter().map(|e| substitute_dims(e, &inner.results)).collect();
        AffineMap::new(inner.num_dims, 0, results)
    }
}

fn substitute_dims(expr: &AffineExpr, subs: &[AffineExpr]) -> AffineExpr {
    match expr {
        AffineExpr::Dim(n) => subs[*n].clone(),
        AffineExpr::Sym(n) => AffineExpr::Sym(*n),
        AffineExpr::Const(c) => AffineExpr::Const(*c),
        AffineExpr::Add(a, b) => {
            AffineExpr::Add(Box::new(substitute_dims(a, subs)), Box::new(substitute_dims(b, subs)))
        }
        AffineExpr::Mul(a, b) => {
            AffineExpr::Mul(Box::new(substitute_dims(a, subs)), Box::new(substitute_dims(b, subs)))
        }
        AffineExpr::FloorDiv(a, c) => AffineExpr::FloorDiv(Box::new(substitute_dims(a, subs)), *c),
        AffineExpr::Mod(a, c) => AffineExpr::Mod(Box::new(substitute_dims(a, subs)), *c),
    }
}

impl fmt::Display for AffineMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for i in 0..self.num_dims {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "d{i}")?;
        }
        f.write_str(")")?;
        if self.num_syms > 0 {
            f.write_str("[")?;
            for i in 0..self.num_syms {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "s{i}")?;
            }
            f.write_str("]")?;
        }
        f.write_str(" -> (")?;
        for (i, e) in self.results.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{e}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_simple() {
        // (d0, d1, d2) -> (d0 * 5 + d2, d1)  — the MatMul map in Fig. 7.
        let m = AffineMap::new(
            3,
            0,
            vec![AffineExpr::dim(0).mul_const(5).add(AffineExpr::dim(2)), AffineExpr::dim(1)],
        );
        assert_eq!(m.eval(&[2, 7, 3], &[]), vec![13, 7]);
    }

    #[test]
    fn identity_and_projection() {
        assert_eq!(AffineMap::identity(2).eval(&[3, 4], &[]), vec![3, 4]);
        let p = AffineMap::projection(3, &[1]);
        assert_eq!(p.eval(&[10, 20, 30], &[]), vec![20]);
    }

    #[test]
    fn dim_coefficients_of_linear_map() {
        let m = AffineMap::new(
            3,
            0,
            vec![AffineExpr::dim(0).mul_const(5).add(AffineExpr::dim(2)), AffineExpr::dim(1)],
        );
        assert_eq!(m.dim_coefficients(0), vec![5, 0]);
        assert_eq!(m.dim_coefficients(1), vec![0, 1]);
        assert_eq!(m.dim_coefficients(2), vec![1, 0]);
    }

    #[test]
    fn floordiv_and_mod_eval() {
        let e = AffineExpr::FloorDiv(Box::new(AffineExpr::dim(0)), 3);
        assert_eq!(e.eval(&[7], &[]), 2);
        assert_eq!(e.eval(&[-1], &[]), -1);
        let e = AffineExpr::Mod(Box::new(AffineExpr::dim(0)), 3);
        assert_eq!(e.eval(&[7], &[]), 1);
        assert_eq!(e.eval(&[-1], &[]), 2);
    }

    #[test]
    fn non_affine_rejected() {
        let e = AffineExpr::Mul(Box::new(AffineExpr::dim(0)), Box::new(AffineExpr::dim(1)));
        assert!(!e.is_affine());
    }

    #[test]
    #[should_panic]
    fn map_with_non_affine_result_panics() {
        let e = AffineExpr::Mul(Box::new(AffineExpr::dim(0)), Box::new(AffineExpr::dim(1)));
        let _ = AffineMap::new(2, 0, vec![e]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_dim_panics() {
        let _ = AffineMap::new(1, 0, vec![AffineExpr::dim(1)]);
    }

    #[test]
    fn compose_maps() {
        // outer: (d0, d1) -> (d0 + d1); inner: (d0, d1, d2) -> (d0*2, d2)
        let outer = AffineMap::new(2, 0, vec![AffineExpr::dim(0).add(AffineExpr::dim(1))]);
        let inner = AffineMap::new(3, 0, vec![AffineExpr::dim(0).mul_const(2), AffineExpr::dim(2)]);
        let composed = outer.compose(&inner);
        assert_eq!(composed.num_dims, 3);
        assert_eq!(composed.eval(&[3, 100, 4], &[]), vec![10]);
    }

    #[test]
    fn display() {
        let m = AffineMap::new(
            3,
            0,
            vec![AffineExpr::dim(0).mul_const(5).add(AffineExpr::dim(2)), AffineExpr::dim(1)],
        );
        assert_eq!(m.to_string(), "(d0, d1, d2) -> (((d0 * 5) + d2), d1)");
    }

    #[test]
    fn linearity() {
        assert!(AffineMap::identity(2).is_linear());
        let m = AffineMap::new(1, 0, vec![AffineExpr::Mod(Box::new(AffineExpr::dim(0)), 2)]);
        assert!(!m.is_linear());
    }
}
