//! Dialect and operation registry.
//!
//! Each dialect registers [`OpInfo`] records describing its operations:
//! structural traits (terminator, purity) and a verification callback. The
//! registry is what makes the backend *extensible*: adding an accelerator
//! dialect (Section 3.2) is registering more records, never touching the
//! core.

use std::collections::HashMap;
use std::fmt;

use crate::context::{Context, OpId};

/// Error produced by operation verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The offending operation's name.
    pub op_name: String,
    /// Description of the violation.
    pub message: String,
}

impl VerifyError {
    /// Creates a verification error for the given operation.
    pub fn new(ctx: &Context, op: OpId, message: impl Into<String>) -> VerifyError {
        VerifyError { op_name: ctx.op(op).name.clone(), message: message.into() }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.op_name, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verification callback for one operation kind.
pub type VerifyFn = fn(&Context, OpId) -> Result<(), VerifyError>;

/// Static description of one operation kind.
#[derive(Debug, Clone)]
pub struct OpInfo {
    /// Fully-qualified operation name.
    pub name: &'static str,
    /// Whether this operation must terminate its block.
    pub is_terminator: bool,
    /// Whether the operation is side-effect free (erasable when unused).
    pub pure: bool,
    /// Per-operation structural verification.
    pub verify: VerifyFn,
}

impl OpInfo {
    /// Creates an [`OpInfo`] with no traits and a vacuous verifier.
    pub fn new(name: &'static str) -> OpInfo {
        OpInfo { name, is_terminator: false, pure: false, verify: |_, _| Ok(()) }
    }

    /// Marks the operation as a block terminator.
    pub fn terminator(mut self) -> OpInfo {
        self.is_terminator = true;
        self
    }

    /// Marks the operation as side-effect free.
    pub fn pure(mut self) -> OpInfo {
        self.pure = true;
        self
    }

    /// Sets the verification callback.
    pub fn with_verify(mut self, verify: VerifyFn) -> OpInfo {
        self.verify = verify;
        self
    }
}

/// Maps operation names to their [`OpInfo`].
#[derive(Debug, Default)]
pub struct DialectRegistry {
    ops: HashMap<&'static str, OpInfo>,
}

impl DialectRegistry {
    /// Creates an empty registry.
    pub fn new() -> DialectRegistry {
        DialectRegistry::default()
    }

    /// Registers an operation kind.
    ///
    /// # Panics
    ///
    /// Panics if the operation name is already registered.
    pub fn register(&mut self, info: OpInfo) {
        let prev = self.ops.insert(info.name, info);
        if let Some(prev) = prev {
            panic!("operation {} registered twice", prev.name);
        }
    }

    /// Looks up an operation kind.
    pub fn info(&self, name: &str) -> Option<&OpInfo> {
        self.ops.get(name)
    }

    /// Whether the operation with this name is registered and pure.
    pub fn is_pure(&self, name: &str) -> bool {
        self.info(name).map(|i| i.pure).unwrap_or(false)
    }

    /// Whether the operation with this name is a terminator.
    pub fn is_terminator(&self, name: &str) -> bool {
        self.info(name).map(|i| i.is_terminator).unwrap_or(false)
    }

    /// Number of registered operation kinds.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Verifies `root` and every operation nested in it.
    ///
    /// Checks, in order: context structural invariants, that every op is
    /// registered, that non-empty blocks end (only) in terminators, and each
    /// op's own verifier.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify(&self, ctx: &Context, root: OpId) -> Result<(), VerifyError> {
        ctx.verify_structure(root)
            .map_err(|message| VerifyError { op_name: ctx.op(root).name.clone(), message })?;
        let mut all = vec![root];
        all.extend(ctx.walk(root));
        for &op_id in &all {
            let op = ctx.op(op_id);
            let info = self.info(&op.name).ok_or_else(|| VerifyError {
                op_name: op.name.clone(),
                message: "operation is not registered with any dialect".to_string(),
            })?;
            (info.verify)(ctx, op_id)?;
            // Terminator placement.
            for &region in &op.regions {
                for &block in ctx.region_blocks(region) {
                    let ops = ctx.block_ops(block);
                    for (i, &nested) in ops.iter().enumerate() {
                        let is_last = i + 1 == ops.len();
                        let name = &ctx.op(nested).name;
                        if self.is_terminator(name) && !is_last {
                            return Err(VerifyError {
                                op_name: name.clone(),
                                message: "terminator is not the last operation in its block"
                                    .to_string(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OpSpec;
    use crate::types::Type;

    fn test_registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        r.register(OpInfo::new("t.module"));
        r.register(OpInfo::new("t.pure").pure());
        r.register(OpInfo::new("t.term").terminator());
        r.register(OpInfo::new("t.needs_operand").with_verify(|ctx, op| {
            if ctx.op(op).operands.is_empty() {
                Err(VerifyError::new(ctx, op, "expected at least one operand"))
            } else {
                Ok(())
            }
        }));
        r
    }

    #[test]
    fn traits() {
        let r = test_registry();
        assert!(r.is_pure("t.pure"));
        assert!(!r.is_pure("t.term"));
        assert!(r.is_terminator("t.term"));
        assert!(!r.is_terminator("t.unknown"));
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic]
    fn duplicate_registration_panics() {
        let mut r = test_registry();
        r.register(OpInfo::new("t.pure"));
    }

    #[test]
    fn verify_unregistered_op_fails() {
        let r = test_registry();
        let mut ctx = Context::new();
        let m = ctx.create_detached_op(OpSpec::new("t.module").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        ctx.append_op(b, OpSpec::new("t.bogus"));
        let err = r.verify(&ctx, m).unwrap_err();
        assert!(err.message.contains("not registered"));
    }

    #[test]
    fn verify_misplaced_terminator_fails() {
        let r = test_registry();
        let mut ctx = Context::new();
        let m = ctx.create_detached_op(OpSpec::new("t.module").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        ctx.append_op(b, OpSpec::new("t.term"));
        ctx.append_op(b, OpSpec::new("t.pure"));
        let err = r.verify(&ctx, m).unwrap_err();
        assert!(err.message.contains("terminator"), "{err}");
    }

    #[test]
    fn verify_runs_op_verifier() {
        let r = test_registry();
        let mut ctx = Context::new();
        let m = ctx.create_detached_op(OpSpec::new("t.module").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        ctx.append_op(b, OpSpec::new("t.needs_operand"));
        let err = r.verify(&ctx, m).unwrap_err();
        assert_eq!(err.op_name, "t.needs_operand");

        // Fix it up and verify again.
        let mut ctx = Context::new();
        let m = ctx.create_detached_op(OpSpec::new("t.module").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        let c = ctx.append_op(b, OpSpec::new("t.pure").results(vec![Type::F64]));
        let v = ctx.op(c).results[0];
        ctx.append_op(b, OpSpec::new("t.needs_operand").operands(vec![v]));
        assert!(r.verify(&ctx, m).is_ok());
    }

    #[test]
    fn error_display() {
        let e = VerifyError { op_name: "t.x".into(), message: "boom".into() };
        assert_eq!(e.to_string(), "t.x: boom");
    }
}
