//! Compile-time attribute values attached to operations.
//!
//! Attributes are a key–value map of compile-time constants on each
//! operation. As in MLIR/xDSL, dialect-specific attribute kinds (affine
//! maps, iterator types, stream stride patterns) are part of the attribute
//! vocabulary; in this Rust implementation the vocabulary is a closed enum
//! shared by all dialects.

use std::fmt;

use crate::affine::AffineMap;
use crate::types::Type;

/// Iterator kinds of a `linalg.generic`/`memref_stream.generic` dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IteratorType {
    /// Iterations are independent.
    Parallel,
    /// Iterations combine into an accumulator.
    Reduction,
    /// Produced by unroll-and-jam: a parallel dimension whose iterations
    /// are interleaved in the loop body (Figure 7).
    Interleaved,
}

impl fmt::Display for IteratorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IteratorType::Parallel => "parallel",
            IteratorType::Reduction => "reduction",
            IteratorType::Interleaved => "interleaved",
        })
    }
}

/// A `memref_stream`-level access pattern: iteration-space upper bounds and
/// the affine map from iteration indices to element indices (Figure 7).
///
/// Bounds are in iteration order, *outermost first*.
#[derive(Debug, Clone, PartialEq, Hash, Eq)]
pub struct StridePattern {
    /// Iteration-space upper bounds, outermost first.
    pub ub: Vec<i64>,
    /// Map from iteration indices to operand element indices.
    pub index_map: AffineMap,
}

impl StridePattern {
    /// Creates a pattern, checking that the map has one dim per bound.
    ///
    /// # Panics
    ///
    /// Panics if `index_map.num_dims != ub.len()`.
    pub fn new(ub: Vec<i64>, index_map: AffineMap) -> StridePattern {
        assert_eq!(
            index_map.num_dims,
            ub.len(),
            "stride pattern map must have one dimension per bound"
        );
        StridePattern { ub, index_map }
    }
}

impl fmt::Display for StridePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The `affine_map<...>` wrapper matches what the parser expects,
        // keeping the attribute print/parse round-trippable.
        write!(
            f,
            "#memref_stream.stride_pattern<ub = {:?}, index_map = affine_map<{}>>",
            self.ub, self.index_map
        )
    }
}

/// A `snitch_stream`-level access pattern in *hardware* terms: loop bounds
/// and byte strides per dimension, plus an innermost repetition count.
///
/// Dimension 0 is the **innermost** loop, matching the SSR configuration
/// register file. Strides are the raw address deltas applied when a
/// dimension increments, i.e. already compensated for inner-dimension
/// wrap-around the way the hardware expects.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreamPattern {
    /// Iteration counts per dimension, innermost first. Never empty.
    pub ub: Vec<i64>,
    /// Byte-address delta applied when the corresponding dimension
    /// increments (hardware semantics, see above).
    pub strides: Vec<i64>,
    /// Each element is delivered `repeat + 1` times (SSR repeat register).
    pub repeat: i64,
}

impl StreamPattern {
    /// Creates a hardware stream pattern.
    ///
    /// # Panics
    ///
    /// Panics if `ub` and `strides` differ in length, are empty, or if any
    /// bound or the repeat count is not positive / non-negative.
    pub fn new(ub: Vec<i64>, strides: Vec<i64>, repeat: i64) -> StreamPattern {
        assert_eq!(ub.len(), strides.len(), "bounds and strides must pair up");
        assert!(!ub.is_empty(), "stream pattern needs at least one dimension");
        assert!(ub.iter().all(|&b| b > 0), "stream bounds must be positive");
        assert!(repeat >= 0, "repeat count must be non-negative");
        StreamPattern { ub, strides, repeat }
    }

    /// Builds the hardware pattern from *logical* bounds and byte strides
    /// (innermost first), compensating strides for inner wrap-around.
    ///
    /// In logical terms the address for indices `i0..iN` (i0 innermost) is
    /// `sum(i_d * logical_stride_d)`; hardware instead adds `strides[d]`
    /// once whenever dimension `d` increments, so
    /// `hw[d] = logical[d] - sum_{k<d} (ub[k]-1) * logical[k]`.
    pub fn from_logical(ub: Vec<i64>, logical_strides: Vec<i64>, repeat: i64) -> StreamPattern {
        assert_eq!(ub.len(), logical_strides.len());
        let mut hw = logical_strides.clone();
        for d in 1..hw.len() {
            let inner_span: i64 = (0..d).map(|k| (ub[k] - 1) * logical_strides[k]).sum();
            hw[d] = logical_strides[d] - inner_span;
        }
        StreamPattern::new(ub, hw, repeat)
    }

    /// Total number of elements delivered by the stream (including repeats).
    pub fn num_elements(&self) -> i64 {
        self.ub.iter().product::<i64>() * (self.repeat + 1)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.ub.len()
    }

    /// The sequence of byte offsets the hardware address generator emits,
    /// starting from offset 0 (repeats included). Used by tests and the
    /// simulator cross-check.
    pub fn offsets(&self) -> Vec<i64> {
        let rank = self.rank();
        let mut idx = vec![0i64; rank];
        let mut addr = 0i64;
        let mut out = Vec::with_capacity(self.num_elements() as usize);
        loop {
            for _ in 0..=self.repeat {
                out.push(addr);
            }
            // Increment the multi-dimensional counter, innermost first,
            // applying the hardware stride of the dimension that steps.
            let mut d = 0;
            loop {
                if d == rank {
                    return out;
                }
                if idx[d] + 1 < self.ub[d] {
                    idx[d] += 1;
                    addr += self.strides[d];
                    break;
                }
                idx[d] = 0;
                d += 1;
            }
        }
    }
}

impl fmt::Display for StreamPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#snitch_stream.pattern<ub = {:?}, strides = {:?}, repeat = {}>",
            self.ub, self.strides, self.repeat
        )
    }
}

/// A compile-time constant attached to an operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Attribute {
    /// Presence-only marker.
    Unit,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// String.
    Str(String),
    /// A type used as an attribute (e.g. function signatures).
    Type(Type),
    /// Reference to a symbol, printed `@name`.
    Symbol(String),
    /// Ordered list of attributes.
    Array(Vec<Attribute>),
    /// Dense list of integers.
    DenseI64(Vec<i64>),
    /// Affine map.
    Map(AffineMap),
    /// Iterator types of a structured op.
    Iterators(Vec<IteratorType>),
    /// `memref_stream` access pattern.
    StridePattern(StridePattern),
    /// `snitch_stream` hardware access pattern.
    StreamPattern(StreamPattern),
}

impl Attribute {
    /// The integer payload, if this is an [`Attribute::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attribute::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, if this is an [`Attribute::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Attribute::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is an [`Attribute::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attribute::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The symbol payload, if this is an [`Attribute::Symbol`].
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            Attribute::Symbol(s) => Some(s),
            _ => None,
        }
    }

    /// The type payload, if this is an [`Attribute::Type`].
    pub fn as_type(&self) -> Option<&Type> {
        match self {
            Attribute::Type(t) => Some(t),
            _ => None,
        }
    }

    /// The array payload, if this is an [`Attribute::Array`].
    pub fn as_array(&self) -> Option<&[Attribute]> {
        match self {
            Attribute::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The dense-integer payload, if this is an [`Attribute::DenseI64`].
    pub fn as_dense_i64(&self) -> Option<&[i64]> {
        match self {
            Attribute::DenseI64(v) => Some(v),
            _ => None,
        }
    }

    /// The affine-map payload, if this is an [`Attribute::Map`].
    pub fn as_map(&self) -> Option<&AffineMap> {
        match self {
            Attribute::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The iterator-types payload, if this is an [`Attribute::Iterators`].
    pub fn as_iterators(&self) -> Option<&[IteratorType]> {
        match self {
            Attribute::Iterators(v) => Some(v),
            _ => None,
        }
    }

    /// The stride-pattern payload, if present.
    pub fn as_stride_pattern(&self) -> Option<&StridePattern> {
        match self {
            Attribute::StridePattern(p) => Some(p),
            _ => None,
        }
    }

    /// The hardware stream-pattern payload, if present.
    pub fn as_stream_pattern(&self) -> Option<&StreamPattern> {
        match self {
            Attribute::StreamPattern(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribute::Unit => f.write_str("unit"),
            Attribute::Bool(b) => write!(f, "{b}"),
            Attribute::Int(v) => write!(f, "{v}"),
            Attribute::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Attribute::Str(s) => write!(f, "{s:?}"),
            Attribute::Type(t) => write!(f, "{t}"),
            Attribute::Symbol(s) => write!(f, "@{s}"),
            Attribute::Array(items) => {
                f.write_str("[")?;
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str("]")
            }
            Attribute::DenseI64(v) => {
                f.write_str("dense<[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]>")
            }
            Attribute::Map(m) => write!(f, "affine_map<{m}>"),
            Attribute::Iterators(its) => {
                f.write_str("iterators<")?;
                for (i, it) in its.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{it}")?;
                }
                f.write_str(">")
            }
            Attribute::StridePattern(p) => write!(f, "{p}"),
            Attribute::StreamPattern(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineExpr;

    #[test]
    fn accessors() {
        assert_eq!(Attribute::Int(5).as_int(), Some(5));
        assert_eq!(Attribute::Int(5).as_float(), None);
        assert_eq!(Attribute::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Attribute::Symbol("f".into()).as_symbol(), Some("f"));
        assert_eq!(Attribute::DenseI64(vec![1, 2]).as_dense_i64(), Some(&[1i64, 2][..]));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Attribute::Float(1.0).to_string(), "1.0");
        assert_eq!(Attribute::Float(0.5).to_string(), "0.5");
        assert_eq!(Attribute::Symbol("main".into()).to_string(), "@main");
        assert_eq!(
            Attribute::Iterators(vec![IteratorType::Parallel, IteratorType::Reduction]).to_string(),
            "iterators<parallel, reduction>"
        );
        assert_eq!(Attribute::DenseI64(vec![1, 200, 5]).to_string(), "dense<[1, 200, 5]>");
    }

    #[test]
    fn stream_pattern_offsets_1d() {
        // 4 contiguous f64 elements.
        let p = StreamPattern::new(vec![4], vec![8], 0);
        assert_eq!(p.offsets(), vec![0, 8, 16, 24]);
        assert_eq!(p.num_elements(), 4);
    }

    #[test]
    fn stream_pattern_offsets_repeat() {
        let p = StreamPattern::new(vec![2], vec![8], 2);
        assert_eq!(p.offsets(), vec![0, 0, 0, 8, 8, 8]);
        assert_eq!(p.num_elements(), 6);
    }

    #[test]
    fn stream_pattern_hardware_stride_compensation() {
        // Logical: walk a 3x2 row-major f64 matrix column-by-column:
        // inner dim rows (stride 16 bytes? no:) — walk rows inner (stride 2*8=16),
        // columns outer (stride 8).
        let p = StreamPattern::from_logical(vec![3, 2], vec![16, 8], 0);
        // Offsets: (r,c) visited r inner: 0,16,32, then col 1: 8,24,40.
        assert_eq!(p.offsets(), vec![0, 16, 32, 8, 24, 40]);
        // Hardware stride for dim 1 compensates the 2*16 inner walk: 8-32 = -24.
        assert_eq!(p.strides, vec![16, -24]);
    }

    #[test]
    fn from_logical_matches_direct_dot_product() {
        let ub = vec![3, 4, 2];
        let logical = vec![8, 24, 96];
        let p = StreamPattern::from_logical(ub.clone(), logical.clone(), 0);
        let offsets = p.offsets();
        let mut i = 0;
        for d2 in 0..ub[2] {
            for d1 in 0..ub[1] {
                for d0 in 0..ub[0] {
                    let expect = d0 * logical[0] + d1 * logical[1] + d2 * logical[2];
                    assert_eq!(offsets[i], expect);
                    i += 1;
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_strides_panic() {
        let _ = StreamPattern::new(vec![2, 3], vec![8], 0);
    }

    #[test]
    fn stride_pattern_validated() {
        let p = StridePattern::new(vec![4, 5], AffineMap::identity(2));
        assert_eq!(p.ub, vec![4, 5]);
    }

    #[test]
    #[should_panic]
    fn stride_pattern_dim_mismatch_panics() {
        let _ = StridePattern::new(vec![4], AffineMap::identity(2));
    }

    #[test]
    fn stride_pattern_display() {
        let m = AffineMap::new(2, 0, vec![AffineExpr::dim(1)]);
        let p = StridePattern::new(vec![2, 3], m);
        assert!(p.to_string().contains("ub = [2, 3]"));
        assert!(p.to_string().contains("index_map = affine_map<"));
    }
}
