//! Textual IR output in MLIR-style generic form.
//!
//! Every operation prints as
//! `%r0, %r1 = "dialect.op"(%a, %b)[^succ] ({ regions }) {attrs} : (tys) -> (tys)`,
//! with blocks introduced by `^bbN(%arg: type, ...):`. The format is
//! self-contained and round-trips through [`crate::parser::parse_module`],
//! which the property tests exercise.

use std::collections::HashMap;
use std::fmt::Write;

use crate::context::{BlockId, Context, OpId, ValueId};

/// Prints `root` (and everything nested) in generic textual form.
pub fn print_op(ctx: &Context, root: OpId) -> String {
    let mut p = Printer::new(ctx);
    p.number_op(root);
    let mut out = String::new();
    p.print_op(&mut out, root, 0);
    out
}

struct Printer<'c> {
    ctx: &'c Context,
    value_names: HashMap<ValueId, usize>,
    block_names: HashMap<BlockId, usize>,
}

impl<'c> Printer<'c> {
    fn new(ctx: &'c Context) -> Printer<'c> {
        Printer { ctx, value_names: HashMap::new(), block_names: HashMap::new() }
    }

    /// Assigns sequential names to all values and blocks in definition
    /// order so references are stable and forward-readable.
    fn number_op(&mut self, op: OpId) {
        for &r in &self.ctx.op(op).results {
            let n = self.value_names.len();
            self.value_names.insert(r, n);
        }
        for &region in &self.ctx.op(op).regions {
            for &block in self.ctx.region_blocks(region) {
                let bn = self.block_names.len();
                self.block_names.insert(block, bn);
                for &arg in self.ctx.block_args(block) {
                    let n = self.value_names.len();
                    self.value_names.insert(arg, n);
                }
                for &nested in self.ctx.block_ops(block) {
                    self.number_op(nested);
                }
            }
        }
    }

    fn value_name(&self, v: ValueId) -> String {
        match self.value_names.get(&v) {
            Some(n) => format!("%{n}"),
            None => "%<dangling>".to_string(),
        }
    }

    fn block_name(&self, b: BlockId) -> String {
        match self.block_names.get(&b) {
            Some(n) => format!("^bb{n}"),
            None => "^<dangling>".to_string(),
        }
    }

    fn print_op(&self, out: &mut String, op_id: OpId, indent: usize) {
        let op = self.ctx.op(op_id);
        let pad = "  ".repeat(indent);
        out.push_str(&pad);
        if !op.results.is_empty() {
            let names: Vec<String> = op.results.iter().map(|&r| self.value_name(r)).collect();
            let _ = write!(out, "{} = ", names.join(", "));
        }
        let _ = write!(out, "\"{}\"(", op.name);
        let operands: Vec<String> = op.operands.iter().map(|&o| self.value_name(o)).collect();
        out.push_str(&operands.join(", "));
        out.push(')');
        if !op.successors.is_empty() {
            out.push('[');
            let succs: Vec<String> = op.successors.iter().map(|&s| self.block_name(s)).collect();
            out.push_str(&succs.join(", "));
            out.push(']');
        }
        if !op.regions.is_empty() {
            out.push_str(" (");
            for (i, &region) in op.regions.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\n");
                for &block in self.ctx.region_blocks(region) {
                    let _ = write!(out, "{pad}{}", self.block_name(block));
                    let args = self.ctx.block_args(block);
                    if !args.is_empty() {
                        out.push('(');
                        for (j, &arg) in args.iter().enumerate() {
                            if j > 0 {
                                out.push_str(", ");
                            }
                            let _ = write!(
                                out,
                                "{}: {}",
                                self.value_name(arg),
                                self.ctx.value_type(arg)
                            );
                        }
                        out.push(')');
                    }
                    out.push_str(":\n");
                    for &nested in self.ctx.block_ops(block) {
                        self.print_op(out, nested, indent + 1);
                    }
                }
                let _ = write!(out, "{pad}}}");
            }
            out.push(')');
        }
        if !op.attrs.is_empty() {
            out.push_str(" {");
            for (i, (k, v)) in op.attrs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{k} = {v}");
            }
            out.push('}');
        }
        out.push_str(" : (");
        let in_tys: Vec<String> =
            op.operands.iter().map(|&o| self.ctx.value_type(o).to_string()).collect();
        out.push_str(&in_tys.join(", "));
        out.push_str(") -> (");
        let out_tys: Vec<String> =
            op.results.iter().map(|&r| self.ctx.value_type(r).to_string()).collect();
        out.push_str(&out_tys.join(", "));
        out.push(')');
        // Provenance trailer. Emitted only when present, so location-free
        // IR (and every golden snapshot) stays byte-identical.
        if op.loc.is_known() {
            let _ = write!(out, " loc({})", op.loc);
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Attribute;
    use crate::context::OpSpec;
    use crate::types::Type;

    #[test]
    fn prints_flat_op() {
        let mut ctx = Context::new();
        let m = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        let c = ctx.append_op(
            b,
            OpSpec::new("arith.constant")
                .attr("value", Attribute::Float(2.5))
                .results(vec![Type::F64]),
        );
        let v = ctx.op(c).results[0];
        ctx.append_op(b, OpSpec::new("arith.mulf").operands(vec![v, v]).results(vec![Type::F64]));
        let text = print_op(&ctx, m);
        assert!(text.contains("\"builtin.module\"() ({"));
        assert!(text.contains("%0 = \"arith.constant\"() {value = 2.5} : () -> (f64)"));
        assert!(text.contains("%1 = \"arith.mulf\"(%0, %0) : (f64, f64) -> (f64)"));
    }

    #[test]
    fn prints_block_args_and_successors() {
        let mut ctx = Context::new();
        let f = ctx.create_detached_op(OpSpec::new("func.func").regions(1));
        let region = ctx.op(f).regions[0];
        let entry = ctx.create_block(region, vec![Type::F64]);
        let exit = ctx.create_block(region, vec![]);
        ctx.append_op(entry, OpSpec::new("rv_cf.j").successors(vec![exit]));
        ctx.append_op(exit, OpSpec::new("rv.ret"));
        let text = print_op(&ctx, f);
        assert!(text.contains("^bb0(%0: f64):"), "{text}");
        assert!(text.contains("\"rv_cf.j\"()[^bb1]"), "{text}");
        assert!(text.contains("^bb1:"), "{text}");
    }
}
