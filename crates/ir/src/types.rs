//! The type system of the IR.
//!
//! Mirroring the paper's design, the type system spans *all* abstraction
//! levels: high-level value types (`f64`, `memref<5x200xf64>`), stream types
//! produced by `memref_stream.streaming_region`, and the register types of
//! the `rv` dialects that bridge SSA semantics and physical registers
//! (Section 3.1, Figure 6). A register type is either *unallocated*
//! (`!rv.reg`) or carries a concrete register (`!rv.reg<a0>`); register
//! allocation is the in-place refinement of the former into the latter.

use std::fmt;

use mlb_isa::{FpReg, IntReg};

/// A shaped reference to a memory buffer, e.g. `memref<5x200xf64>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemRefType {
    /// Dimension sizes, outermost first. All shapes are static.
    pub shape: Vec<i64>,
    /// Element type.
    pub element: Box<Type>,
}

impl MemRefType {
    /// Creates a memref type with the given shape and element type.
    pub fn new(shape: Vec<i64>, element: Type) -> MemRefType {
        MemRefType { shape, element: Box::new(element) }
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> i64 {
        self.shape.iter().product()
    }

    /// Row-major strides in *elements*, innermost stride 1.
    ///
    /// ```
    /// use mlb_ir::types::{MemRefType, Type};
    /// let t = MemRefType::new(vec![5, 200], Type::F64);
    /// assert_eq!(t.element_strides(), vec![200, 1]);
    /// ```
    pub fn element_strides(&self) -> Vec<i64> {
        let mut strides = vec![1; self.shape.len()];
        for i in (0..self.shape.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.shape[i + 1];
        }
        strides
    }

    /// Size of the buffer in bytes.
    pub fn size_in_bytes(&self) -> i64 {
        self.num_elements() * self.element.size_in_bytes() as i64
    }
}

/// A function signature type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FunctionType {
    /// Parameter types.
    pub inputs: Vec<Type>,
    /// Result types.
    pub results: Vec<Type>,
}

/// A type in the IR.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Arbitrary-width signless integer, e.g. `i32`.
    Integer(u32),
    /// Platform index type.
    Index,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
    /// Shaped buffer reference.
    MemRef(MemRefType),
    /// Function signature.
    Function(FunctionType),
    /// An integer register of the `rv` dialect, possibly unallocated.
    IntRegister(Option<IntReg>),
    /// A floating-point register of the `rv` dialect, possibly unallocated.
    FpRegister(Option<FpReg>),
    /// A readable stream of elements, `!memref_stream.readable<f64>`.
    ReadableStream(Box<Type>),
    /// A writable stream of elements, `!memref_stream.writable<f64>`.
    WritableStream(Box<Type>),
    /// The absence of a value (used by ops with no meaningful result).
    None,
}

impl Type {
    /// Convenience constructor for `memref<...>`.
    pub fn memref(shape: Vec<i64>, element: Type) -> Type {
        Type::MemRef(MemRefType::new(shape, element))
    }

    /// Convenience constructor for function types.
    pub fn function(inputs: Vec<Type>, results: Vec<Type>) -> Type {
        Type::Function(FunctionType { inputs, results })
    }

    /// The `i32` type.
    pub fn i32() -> Type {
        Type::Integer(32)
    }

    /// The `i1` (boolean) type.
    pub fn i1() -> Type {
        Type::Integer(1)
    }

    /// Whether this is a floating-point scalar type.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// Whether this is an (possibly unallocated) register type.
    pub fn is_register(&self) -> bool {
        matches!(self, Type::IntRegister(_) | Type::FpRegister(_))
    }

    /// Whether this register type has been assigned a physical register.
    pub fn is_allocated_register(&self) -> bool {
        matches!(self, Type::IntRegister(Some(_)) | Type::FpRegister(Some(_)))
    }

    /// Size of a value of this type in bytes.
    ///
    /// # Panics
    ///
    /// Panics for types without a data layout (functions, streams, `None`).
    pub fn size_in_bytes(&self) -> usize {
        match self {
            Type::Integer(bits) => (*bits as usize).div_ceil(8),
            Type::Index => 4,
            Type::F32 => 4,
            Type::F64 => 8,
            Type::MemRef(m) => m.size_in_bytes() as usize,
            other => panic!("type {other} has no data layout"),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Integer(w) => write!(f, "i{w}"),
            Type::Index => f.write_str("index"),
            Type::F32 => f.write_str("f32"),
            Type::F64 => f.write_str("f64"),
            Type::MemRef(m) => {
                f.write_str("memref<")?;
                for d in &m.shape {
                    write!(f, "{d}x")?;
                }
                write!(f, "{}>", m.element)
            }
            Type::Function(ft) => {
                f.write_str("(")?;
                for (i, t) in ft.inputs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{t}")?;
                }
                f.write_str(") -> (")?;
                for (i, t) in ft.results.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{t}")?;
                }
                f.write_str(")")
            }
            Type::IntRegister(None) => f.write_str("!rv.reg"),
            Type::IntRegister(Some(r)) => write!(f, "!rv.reg<{r}>"),
            Type::FpRegister(None) => f.write_str("!rv.freg"),
            Type::FpRegister(Some(r)) => write!(f, "!rv.freg<{r}>"),
            Type::ReadableStream(t) => write!(f, "!memref_stream.readable<{t}>"),
            Type::WritableStream(t) => write!(f, "!memref_stream.writable<{t}>"),
            Type::None => f.write_str("none"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Type::Integer(32).to_string(), "i32");
        assert_eq!(Type::F64.to_string(), "f64");
        assert_eq!(Type::memref(vec![5, 200], Type::F64).to_string(), "memref<5x200xf64>");
        assert_eq!(Type::IntRegister(None).to_string(), "!rv.reg");
        assert_eq!(Type::IntRegister(Some(IntReg::a(0))).to_string(), "!rv.reg<a0>");
        assert_eq!(Type::FpRegister(Some(FpReg::ft(3))).to_string(), "!rv.freg<ft3>");
        assert_eq!(
            Type::ReadableStream(Box::new(Type::F64)).to_string(),
            "!memref_stream.readable<f64>"
        );
        assert_eq!(
            Type::function(vec![Type::F64, Type::F32], vec![Type::Index]).to_string(),
            "(f64, f32) -> (index)"
        );
    }

    #[test]
    fn memref_strides_row_major() {
        let t = MemRefType::new(vec![2, 3, 4], Type::F64);
        assert_eq!(t.element_strides(), vec![12, 4, 1]);
        assert_eq!(t.num_elements(), 24);
        assert_eq!(t.size_in_bytes(), 24 * 8);
    }

    #[test]
    fn scalar_memref() {
        let t = MemRefType::new(vec![], Type::F32);
        assert_eq!(t.element_strides(), Vec::<i64>::new());
        assert_eq!(t.num_elements(), 1);
    }

    #[test]
    fn size_in_bytes() {
        assert_eq!(Type::F32.size_in_bytes(), 4);
        assert_eq!(Type::F64.size_in_bytes(), 8);
        assert_eq!(Type::Integer(1).size_in_bytes(), 1);
        assert_eq!(Type::Index.size_in_bytes(), 4);
    }

    #[test]
    fn register_predicates() {
        assert!(Type::IntRegister(None).is_register());
        assert!(!Type::IntRegister(None).is_allocated_register());
        assert!(Type::FpRegister(Some(FpReg::fa(0))).is_allocated_register());
        assert!(!Type::F64.is_register());
    }
}
