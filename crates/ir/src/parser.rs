//! Parser for the generic textual form produced by [`crate::printer`].
//!
//! The parser accepts exactly the grammar the printer emits, which is
//! enough to round-trip any module (exercised by property tests) and to
//! write IR fixtures by hand in tests.

use std::collections::HashMap;
use std::fmt;

use crate::affine::{AffineExpr, AffineMap};
use crate::attributes::{Attribute, IteratorType, StreamPattern, StridePattern};
use crate::context::{BlockId, Context, OpId, OpSpec, ValueId};
use crate::location::Location;
use crate::types::Type;

/// The resolved source position of a [`ParseError`], with the
/// offending line for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceLocation {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte) within the line.
    pub column: usize,
    /// The offending line's text, without its trailing newline.
    pub excerpt: String,
}

/// Error produced when parsing textual IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error occurred.
    pub offset: usize,
    /// Description of what went wrong.
    pub message: String,
    /// Resolved `line:column` position and line excerpt. Filled by
    /// [`parse_module`], which owns the input text; errors built deeper
    /// in the parser carry only the byte offset.
    pub location: Option<SourceLocation>,
}

impl ParseError {
    /// An error at a raw byte offset, without a resolved position.
    fn at(offset: usize, message: impl Into<String>) -> ParseError {
        ParseError { offset, message: message.into(), location: None }
    }

    /// Resolves [`ParseError::offset`] against the original `input`
    /// into a `line:column` position plus the offending line.
    fn with_source(mut self, input: &str) -> ParseError {
        let offset = self.offset.min(input.len());
        let line_start = input[..offset].rfind('\n').map_or(0, |p| p + 1);
        let line_end = input[offset..].find('\n').map_or(input.len(), |p| offset + p);
        self.location = Some(SourceLocation {
            line: input[..offset].matches('\n').count() + 1,
            column: offset - line_start + 1,
            excerpt: input[line_start..line_end].trim_end().to_string(),
        });
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.location {
            Some(loc) => {
                write!(
                    f,
                    "parse error at line {}, column {}: {}\n  | {}\n  | {}^",
                    loc.line,
                    loc.column,
                    self.message,
                    loc.excerpt,
                    " ".repeat(loc.column.saturating_sub(1)),
                )
            }
            None => write!(f, "parse error at byte {}: {}", self.offset, self.message),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a single top-level operation (usually `builtin.module`) from
/// `input` into `ctx`.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem, with
/// its `line:column` position and the offending line resolved.
pub fn parse_module(ctx: &mut Context, input: &str) -> Result<OpId, ParseError> {
    parse_module_inner(ctx, input, None).map_err(|e| e.with_source(input))
}

/// Parses like [`parse_module`] and additionally stamps every operation
/// with a [`Location`]: an explicit `loc(...)` trailer if the text has
/// one, otherwise `file` plus the 1-based line of the operation's name
/// token.
///
/// Plain [`parse_module`] leaves locations untouched (explicit trailers
/// are still honoured there), so printing IR that never had locations
/// stays byte-stable across a parse/print round trip.
///
/// # Errors
///
/// Returns a [`ParseError`] exactly as [`parse_module`] does.
pub fn parse_module_with_locations(
    ctx: &mut Context,
    input: &str,
    file: &str,
) -> Result<OpId, ParseError> {
    let mut line_starts = vec![0usize];
    line_starts.extend(input.char_indices().filter(|&(_, c)| c == '\n').map(|(i, _)| i + 1));
    let auto = AutoLoc { file: file.into(), line_starts };
    parse_module_inner(ctx, input, Some(auto)).map_err(|e| e.with_source(input))
}

fn parse_module_inner(
    ctx: &mut Context,
    input: &str,
    auto: Option<AutoLoc>,
) -> Result<OpId, ParseError> {
    let tokens = tokenize(input)?;
    let mut p =
        Parser { ctx, tokens, pos: 0, values: HashMap::new(), blocks: HashMap::new(), auto };
    let op = p.parse_op(None)?;
    p.expect_eof()?;
    Ok(op)
}

/// File name plus line-start offsets for deriving automatic
/// [`Location::File`] positions from token offsets.
struct AutoLoc {
    file: std::sync::Arc<str>,
    line_starts: Vec<usize>,
}

impl AutoLoc {
    fn loc_at(&self, offset: usize) -> Location {
        let line = self.line_starts.partition_point(|&start| start <= offset) as u32;
        Location::File { file: self.file.clone(), line }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Punct(char),
    Arrow, // ->
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    offset: usize,
}

fn tokenize(input: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        i += 1;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(ParseError::at(start, "unterminated string"));
                }
                i += 1;
                toks.push(SpannedTok { tok: Tok::Str(s), offset: start });
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                toks.push(SpannedTok { tok: Tok::Arrow, offset: i });
                i += 2;
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                    if i >= bytes.len() || !bytes[i].is_ascii_digit() {
                        toks.push(SpannedTok { tok: Tok::Punct('-'), offset: start });
                        continue;
                    }
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| {
                        ParseError::at(start, format!("bad float literal `{text}`"))
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| {
                        ParseError::at(start, format!("bad integer literal `{text}`"))
                    })?)
                };
                toks.push(SpannedTok { tok, offset: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                toks.push(SpannedTok {
                    tok: Tok::Ident(input[start..i].to_string()),
                    offset: start,
                });
            }
            '%' | '^' | '@' | '(' | ')' | '[' | ']' | '{' | '}' | '<' | '>' | ',' | '=' | ':'
            | '!' | '#' | '*' | '+' => {
                toks.push(SpannedTok { tok: Tok::Punct(c), offset: i });
                i += 1;
            }
            other => return Err(ParseError::at(i, format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

struct Parser<'c> {
    ctx: &'c mut Context,
    tokens: Vec<SpannedTok>,
    pos: usize,
    values: HashMap<String, ValueId>,
    blocks: HashMap<String, BlockId>,
    /// When set, ops without an explicit `loc(...)` trailer get a
    /// file/line location derived from their name token.
    auto: Option<AutoLoc>,
}

impl<'c> Parser<'c> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map(|t| t.offset).unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::at(self.offset(), message)
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.bump() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(ParseError::at(
                self.tokens.get(self.pos - 1).map(|t| t.offset).unwrap_or(usize::MAX),
                format!("expected `{c}`, found {other:?}"),
            )),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(v),
            other => Err(self.error(format!("expected integer, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`, found `{id}`")))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.pos < self.tokens.len() {
            Err(self.error("trailing input after top-level operation"))
        } else {
            Ok(())
        }
    }

    // %name — returns the textual name.
    fn parse_value_ref(&mut self) -> Result<String, ParseError> {
        self.expect_punct('%')?;
        match self.bump() {
            Some(Tok::Int(v)) => Ok(v.to_string()),
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected value name, found {other:?}"))),
        }
    }

    fn parse_block_ref(&mut self) -> Result<String, ParseError> {
        self.expect_punct('^')?;
        self.expect_ident()
    }

    fn lookup_value(&self, name: &str) -> Result<ValueId, ParseError> {
        self.values
            .get(name)
            .copied()
            .ok_or_else(|| ParseError::at(self.offset(), format!("use of undefined value %{name}")))
    }

    /// op ::= (res (`,` res)* `=`)? strname `(` operands `)` succ? regions? attrs? `:` fntype
    fn parse_op(&mut self, parent: Option<BlockId>) -> Result<OpId, ParseError> {
        // Results.
        let mut result_names = Vec::new();
        if self.peek() == Some(&Tok::Punct('%')) {
            loop {
                result_names.push(self.parse_value_ref()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct('=')?;
        }
        let name_offset = self.offset();
        let name = match self.bump() {
            Some(Tok::Str(s)) => s,
            other => return Err(self.error(format!("expected quoted op name, found {other:?}"))),
        };
        self.expect_punct('(')?;
        let mut operand_names = Vec::new();
        if self.peek() != Some(&Tok::Punct(')')) {
            loop {
                operand_names.push(self.parse_value_ref()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
        }
        self.expect_punct(')')?;

        // Successors.
        let mut successor_names = Vec::new();
        if self.eat_punct('[') {
            loop {
                successor_names.push(self.parse_block_ref()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct(']')?;
        }

        // Regions (collected as token ranges, parsed after op creation).
        let mut region_ranges: Vec<(usize, usize)> = Vec::new();
        if self.peek() == Some(&Tok::Punct('(')) {
            // Lookahead: region list starts with `({`.
            if matches!(self.tokens.get(self.pos + 1).map(|t| &t.tok), Some(Tok::Punct('{'))) {
                self.expect_punct('(')?;
                loop {
                    let start = self.pos;
                    self.skip_balanced_braces()?;
                    region_ranges.push((start, self.pos));
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                self.expect_punct(')')?;
            }
        }

        // Attributes.
        let mut attrs = std::collections::BTreeMap::new();
        if self.eat_punct('{') {
            if self.peek() != Some(&Tok::Punct('}')) {
                loop {
                    let key = self.expect_ident()?;
                    self.expect_punct('=')?;
                    let value = self.parse_attribute()?;
                    attrs.insert(key, value);
                    if !self.eat_punct(',') {
                        break;
                    }
                }
            }
            self.expect_punct('}')?;
        }

        // Function type.
        self.expect_punct(':')?;
        self.expect_punct('(')?;
        let mut operand_types = Vec::new();
        if self.peek() != Some(&Tok::Punct(')')) {
            loop {
                operand_types.push(self.parse_type()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
        }
        self.expect_punct(')')?;
        match self.bump() {
            Some(Tok::Arrow) => {}
            other => return Err(self.error(format!("expected `->`, found {other:?}"))),
        }
        self.expect_punct('(')?;
        let mut result_types = Vec::new();
        if self.peek() != Some(&Tok::Punct(')')) {
            loop {
                result_types.push(self.parse_type()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
        }
        self.expect_punct(')')?;

        // Optional provenance trailer: `loc(...)`.
        let mut loc = Location::Unknown;
        if matches!(self.peek(), Some(Tok::Ident(id)) if id == "loc") {
            self.bump();
            self.expect_punct('(')?;
            loc = self.parse_location()?;
            self.expect_punct(')')?;
        }
        if !loc.is_known() {
            if let Some(auto) = &self.auto {
                loc = auto.loc_at(name_offset);
            }
        }

        if result_types.len() != result_names.len() {
            return Err(self.error(format!(
                "operation `{name}` declares {} results but {} result types",
                result_names.len(),
                result_types.len()
            )));
        }
        if operand_types.len() != operand_names.len() {
            return Err(self.error(format!(
                "operation `{name}` has {} operands but {} operand types",
                operand_names.len(),
                operand_types.len()
            )));
        }

        let operands =
            operand_names.iter().map(|n| self.lookup_value(n)).collect::<Result<Vec<_>, _>>()?;
        let successors = successor_names
            .iter()
            .map(|n| {
                self.blocks.get(n).copied().ok_or_else(|| {
                    ParseError::at(self.offset(), format!("use of undefined block ^{n}"))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;

        let spec = OpSpec {
            name,
            operands,
            result_types,
            attrs,
            num_regions: region_ranges.len(),
            successors,
            loc,
        };
        let op = match parent {
            Some(block) => self.ctx.append_op(block, spec),
            None => self.ctx.create_detached_op(spec),
        };
        for (i, &r) in self.ctx.op(op).results.clone().iter().enumerate() {
            self.values.insert(result_names[i].clone(), r);
        }

        // Parse regions now that results are bound.
        let end = self.pos;
        for (ri, &(start, stop)) in region_ranges.iter().enumerate() {
            self.pos = start;
            let region = self.ctx.op(op).regions[ri];
            self.parse_region(region, stop)?;
        }
        self.pos = end;
        Ok(op)
    }

    /// location ::= `"file"` `:` line | `fused` `<` `"pattern"` `>` `[` location `]` | `unknown`
    fn parse_location(&mut self) -> Result<Location, ParseError> {
        match self.bump() {
            Some(Tok::Str(file)) => {
                self.expect_punct(':')?;
                let line = self.expect_int()?;
                if line < 0 {
                    return Err(self.error("negative line number in location"));
                }
                Ok(Location::file(file, line as u32))
            }
            Some(Tok::Ident(id)) if id == "fused" => {
                self.expect_punct('<')?;
                let pattern = match self.bump() {
                    Some(Tok::Str(s)) => s,
                    other => {
                        return Err(
                            self.error(format!("expected quoted pattern name, found {other:?}"))
                        )
                    }
                };
                self.expect_punct('>')?;
                self.expect_punct('[')?;
                let base = self.parse_location()?;
                self.expect_punct(']')?;
                Ok(Location::Fused { pattern: pattern.into(), base: std::sync::Arc::new(base) })
            }
            Some(Tok::Ident(id)) if id == "unknown" => Ok(Location::Unknown),
            other => Err(self.error(format!("expected location, found {other:?}"))),
        }
    }

    /// Skips a `{ ... }` group, balancing braces.
    fn skip_balanced_braces(&mut self) -> Result<(), ParseError> {
        self.expect_punct('{')?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some(Tok::Punct('{')) => depth += 1,
                Some(Tok::Punct('}')) => depth -= 1,
                Some(_) => {}
                None => return Err(self.error("unbalanced `{` in region")),
            }
        }
        Ok(())
    }

    /// region ::= `{` block+ `}` — two passes: create blocks, then fill.
    fn parse_region(
        &mut self,
        region: crate::context::RegionId,
        stop: usize,
    ) -> Result<(), ParseError> {
        self.expect_punct('{')?;
        // Pass 1: scan for top-level block headers (`^name (args)? :`) at
        // depth 0 and create the blocks so successors can resolve.
        let scan_start = self.pos;
        let mut depth = 0usize;
        let mut headers: Vec<(String, Vec<Type>)> = Vec::new();
        while self.pos < stop - 1 {
            match self.peek() {
                Some(Tok::Punct('{')) => {
                    depth += 1;
                    self.pos += 1;
                }
                Some(Tok::Punct('}')) => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    self.pos += 1;
                }
                Some(Tok::Punct('^')) if depth == 0 => {
                    // Could be a block header or a successor list entry.
                    // Successor entries only occur inside `[`..`]`, which we
                    // skip below, so this is a header.
                    let name = {
                        self.pos += 1;
                        self.expect_ident()?
                    };
                    let mut args = Vec::new();
                    if self.eat_punct('(') {
                        loop {
                            let _ = self.parse_value_ref()?;
                            self.expect_punct(':')?;
                            args.push(self.parse_type()?);
                            if !self.eat_punct(',') {
                                break;
                            }
                        }
                        self.expect_punct(')')?;
                    }
                    self.expect_punct(':')?;
                    headers.push((name, args));
                }
                Some(Tok::Punct('[')) => {
                    // Skip successor lists so `^` inside is not a header.
                    self.pos += 1;
                    while self.peek() != Some(&Tok::Punct(']')) {
                        if self.bump().is_none() {
                            return Err(self.error("unterminated successor list"));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
                None => return Err(self.error("unterminated region")),
            }
        }
        for (name, arg_types) in &headers {
            let block = self.ctx.create_block(region, arg_types.clone());
            self.blocks.insert(name.clone(), block);
        }

        // Pass 2: parse for real.
        self.pos = scan_start;
        let mut current = 0usize;
        while self.peek() != Some(&Tok::Punct('}')) {
            if self.peek() == Some(&Tok::Punct('^')) {
                let name = {
                    self.pos += 1;
                    self.expect_ident()?
                };
                let block = self.blocks[&name];
                if self.eat_punct('(') {
                    let mut idx = 0;
                    loop {
                        let arg_name = self.parse_value_ref()?;
                        self.expect_punct(':')?;
                        let _ = self.parse_type()?;
                        self.values.insert(arg_name, self.ctx.block_args(block)[idx]);
                        idx += 1;
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                    self.expect_punct(')')?;
                }
                self.expect_punct(':')?;
                current = self.ctx.region_blocks(region).iter().position(|&b| b == block).unwrap();
                continue;
            }
            let blocks = self.ctx.region_blocks(region).to_vec();
            let block =
                *blocks.get(current).ok_or_else(|| self.error("operation outside any block"))?;
            self.parse_op(Some(block))?;
        }
        self.expect_punct('}')?;
        Ok(())
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        match self.bump() {
            Some(Tok::Ident(id)) => match id.as_str() {
                "index" => Ok(Type::Index),
                "f32" => Ok(Type::F32),
                "f64" => Ok(Type::F64),
                "none" => Ok(Type::None),
                "memref" => {
                    self.expect_punct('<')?;
                    let mut shape = Vec::new();
                    // `memref<4x8xf64>` tokenizes as Int(4), Ident("x8xf64"):
                    // only the first dimension is a standalone token; the
                    // remaining `x`-separated chain lives in one identifier.
                    let element = if let Some(Tok::Int(_)) = self.peek() {
                        shape.push(self.expect_int()?);
                        let chain = match self.bump() {
                            Some(Tok::Ident(s)) if s.starts_with('x') => s,
                            other => {
                                return Err(self.error(format!("bad memref shape, found {other:?}")))
                            }
                        };
                        let mut rest = chain.as_str();
                        loop {
                            rest = rest.strip_prefix('x').ok_or_else(|| {
                                self.error(format!("bad memref shape chain `{chain}`"))
                            })?;
                            let digits: String =
                                rest.chars().take_while(char::is_ascii_digit).collect();
                            // A leading `i` type like `i32` also starts after
                            // digits-free prefix; digits followed by `x` mean a
                            // dimension, otherwise it is the element type
                            // (e.g. `f64`, `i32`, `index`).
                            if !digits.is_empty() && rest[digits.len()..].starts_with('x') {
                                shape.push(digits.parse().unwrap());
                                rest = &rest[digits.len()..];
                            } else {
                                break self.type_from_ident(rest)?;
                            }
                        }
                    } else {
                        self.parse_type()?
                    };
                    self.expect_punct('>')?;
                    Ok(Type::memref(shape, element))
                }
                other
                    if other.starts_with('i')
                        && other[1..].chars().all(|c| c.is_ascii_digit())
                        && other.len() > 1 =>
                {
                    Ok(Type::Integer(other[1..].parse().unwrap()))
                }
                other => Err(self.error(format!("unknown type `{other}`"))),
            },
            Some(Tok::Punct('!')) => {
                let name = self.expect_ident()?;
                match name.as_str() {
                    "rv.reg" => {
                        if self.eat_punct('<') {
                            let reg = self.expect_ident()?;
                            self.expect_punct('>')?;
                            let reg = reg.parse().map_err(|e| self.error(format!("{e}")))?;
                            Ok(Type::IntRegister(Some(reg)))
                        } else {
                            Ok(Type::IntRegister(None))
                        }
                    }
                    "rv.freg" => {
                        if self.eat_punct('<') {
                            let reg = self.expect_ident()?;
                            self.expect_punct('>')?;
                            let reg = reg.parse().map_err(|e| self.error(format!("{e}")))?;
                            Ok(Type::FpRegister(Some(reg)))
                        } else {
                            Ok(Type::FpRegister(None))
                        }
                    }
                    "memref_stream.readable" => {
                        self.expect_punct('<')?;
                        let t = self.parse_type()?;
                        self.expect_punct('>')?;
                        Ok(Type::ReadableStream(Box::new(t)))
                    }
                    "memref_stream.writable" => {
                        self.expect_punct('<')?;
                        let t = self.parse_type()?;
                        self.expect_punct('>')?;
                        Ok(Type::WritableStream(Box::new(t)))
                    }
                    other => Err(self.error(format!("unknown dialect type `!{other}`"))),
                }
            }
            Some(Tok::Punct('(')) => {
                // Function type: (tys) -> (tys)
                let mut inputs = Vec::new();
                if self.peek() != Some(&Tok::Punct(')')) {
                    loop {
                        inputs.push(self.parse_type()?);
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                }
                self.expect_punct(')')?;
                match self.bump() {
                    Some(Tok::Arrow) => {}
                    other => return Err(self.error(format!("expected `->`, found {other:?}"))),
                }
                self.expect_punct('(')?;
                let mut results = Vec::new();
                if self.peek() != Some(&Tok::Punct(')')) {
                    loop {
                        results.push(self.parse_type()?);
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                }
                self.expect_punct(')')?;
                Ok(Type::function(inputs, results))
            }
            other => Err(self.error(format!("expected type, found {other:?}"))),
        }
    }

    /// Parses a type from an identifier that has already been consumed
    /// (used for memref element types merged into `x` chains).
    fn type_from_ident(&mut self, id: &str) -> Result<Type, ParseError> {
        match id {
            "f32" => Ok(Type::F32),
            "f64" => Ok(Type::F64),
            "index" => Ok(Type::Index),
            other
                if other.starts_with('i')
                    && other.len() > 1
                    && other[1..].chars().all(|c| c.is_ascii_digit()) =>
            {
                Ok(Type::Integer(other[1..].parse().unwrap()))
            }
            other => Err(self.error(format!("unknown memref element type `{other}`"))),
        }
    }

    fn parse_attribute(&mut self) -> Result<Attribute, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(Attribute::Int(v))
            }
            Some(Tok::Float(v)) => {
                self.pos += 1;
                Ok(Attribute::Float(v))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Attribute::Str(s))
            }
            Some(Tok::Punct('@')) => {
                self.pos += 1;
                Ok(Attribute::Symbol(self.expect_ident()?))
            }
            Some(Tok::Punct('[')) => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() != Some(&Tok::Punct(']')) {
                    loop {
                        items.push(self.parse_attribute()?);
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                }
                self.expect_punct(']')?;
                Ok(Attribute::Array(items))
            }
            Some(Tok::Punct('(')) => Ok(Attribute::Type(self.parse_type()?)),
            Some(Tok::Punct('!')) => Ok(Attribute::Type(self.parse_type()?)),
            Some(Tok::Punct('#')) => {
                self.pos += 1;
                let name = self.expect_ident()?;
                match name.as_str() {
                    "memref_stream.stride_pattern" => {
                        self.expect_punct('<')?;
                        self.expect_keyword("ub")?;
                        self.expect_punct('=')?;
                        let ub = self.parse_int_list()?;
                        self.expect_punct(',')?;
                        self.expect_keyword("index_map")?;
                        self.expect_punct('=')?;
                        self.expect_keyword("affine_map")?;
                        self.expect_punct('<')?;
                        let map = self.parse_affine_map()?;
                        self.expect_punct('>')?;
                        self.expect_punct('>')?;
                        Ok(Attribute::StridePattern(StridePattern::new(ub, map)))
                    }
                    "snitch_stream.pattern" => {
                        self.expect_punct('<')?;
                        self.expect_keyword("ub")?;
                        self.expect_punct('=')?;
                        let ub = self.parse_int_list()?;
                        self.expect_punct(',')?;
                        self.expect_keyword("strides")?;
                        self.expect_punct('=')?;
                        let strides = self.parse_int_list()?;
                        self.expect_punct(',')?;
                        self.expect_keyword("repeat")?;
                        self.expect_punct('=')?;
                        let repeat = self.expect_int()?;
                        self.expect_punct('>')?;
                        Ok(Attribute::StreamPattern(StreamPattern::new(ub, strides, repeat)))
                    }
                    other => Err(self.error(format!("unknown attribute `#{other}`"))),
                }
            }
            Some(Tok::Ident(id)) => match id.as_str() {
                "unit" => {
                    self.pos += 1;
                    Ok(Attribute::Unit)
                }
                "true" => {
                    self.pos += 1;
                    Ok(Attribute::Bool(true))
                }
                "false" => {
                    self.pos += 1;
                    Ok(Attribute::Bool(false))
                }
                "dense" => {
                    self.pos += 1;
                    self.expect_punct('<')?;
                    let v = self.parse_int_list()?;
                    self.expect_punct('>')?;
                    Ok(Attribute::DenseI64(v))
                }
                "affine_map" => {
                    self.pos += 1;
                    self.expect_punct('<')?;
                    let m = self.parse_affine_map()?;
                    self.expect_punct('>')?;
                    Ok(Attribute::Map(m))
                }
                "iterators" => {
                    self.pos += 1;
                    self.expect_punct('<')?;
                    let mut its = Vec::new();
                    loop {
                        let id = self.expect_ident()?;
                        its.push(match id.as_str() {
                            "parallel" => IteratorType::Parallel,
                            "reduction" => IteratorType::Reduction,
                            "interleaved" => IteratorType::Interleaved,
                            other => {
                                return Err(self.error(format!("unknown iterator type `{other}`")))
                            }
                        });
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                    self.expect_punct('>')?;
                    Ok(Attribute::Iterators(its))
                }
                // A bare type used as an attribute.
                _ => Ok(Attribute::Type(self.parse_type()?)),
            },
            other => Err(self.error(format!("expected attribute, found {other:?}"))),
        }
    }

    fn parse_int_list(&mut self) -> Result<Vec<i64>, ParseError> {
        self.expect_punct('[')?;
        let mut out = Vec::new();
        if self.peek() != Some(&Tok::Punct(']')) {
            loop {
                out.push(self.expect_int()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
        }
        self.expect_punct(']')?;
        Ok(out)
    }

    /// affine-map ::= `(` dims `)` (`[` syms `]`)? `->` `(` exprs `)`
    fn parse_affine_map(&mut self) -> Result<AffineMap, ParseError> {
        self.expect_punct('(')?;
        let mut num_dims = 0;
        if self.peek() != Some(&Tok::Punct(')')) {
            loop {
                let _ = self.expect_ident()?;
                num_dims += 1;
                if !self.eat_punct(',') {
                    break;
                }
            }
        }
        self.expect_punct(')')?;
        let mut num_syms = 0;
        if self.eat_punct('[') {
            if self.peek() != Some(&Tok::Punct(']')) {
                loop {
                    let _ = self.expect_ident()?;
                    num_syms += 1;
                    if !self.eat_punct(',') {
                        break;
                    }
                }
            }
            self.expect_punct(']')?;
        }
        match self.bump() {
            Some(Tok::Arrow) => {}
            other => {
                return Err(self.error(format!("expected `->` in affine map, found {other:?}")))
            }
        }
        self.expect_punct('(')?;
        let mut results = Vec::new();
        if self.peek() != Some(&Tok::Punct(')')) {
            loop {
                results.push(self.parse_affine_expr()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
        }
        self.expect_punct(')')?;
        Ok(AffineMap::new(num_dims, num_syms, results))
    }

    /// expr ::= term ((`+`|`-`) term)*  — `-` handled as negative constants.
    fn parse_affine_expr(&mut self) -> Result<AffineExpr, ParseError> {
        let mut lhs = self.parse_affine_term()?;
        loop {
            if self.eat_punct('+') {
                let rhs = self.parse_affine_term()?;
                lhs = AffineExpr::Add(Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    /// term ::= factor ((`*`|`floordiv`|`mod`) factor)*
    fn parse_affine_term(&mut self) -> Result<AffineExpr, ParseError> {
        let mut lhs = self.parse_affine_factor()?;
        loop {
            if self.eat_punct('*') {
                let rhs = self.parse_affine_factor()?;
                lhs = AffineExpr::Mul(Box::new(lhs), Box::new(rhs));
            } else if self.peek() == Some(&Tok::Ident("floordiv".into())) {
                self.pos += 1;
                let c = self.expect_int()?;
                lhs = AffineExpr::FloorDiv(Box::new(lhs), c);
            } else if self.peek() == Some(&Tok::Ident("mod".into())) {
                self.pos += 1;
                let c = self.expect_int()?;
                lhs = AffineExpr::Mod(Box::new(lhs), c);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn parse_affine_factor(&mut self) -> Result<AffineExpr, ParseError> {
        match self.bump() {
            Some(Tok::Punct('(')) => {
                let e = self.parse_affine_expr()?;
                self.expect_punct(')')?;
                Ok(e)
            }
            Some(Tok::Int(v)) => Ok(AffineExpr::Const(v)),
            Some(Tok::Ident(id)) => {
                if let Some(n) = id.strip_prefix('d').and_then(|s| s.parse::<usize>().ok()) {
                    Ok(AffineExpr::Dim(n))
                } else if let Some(n) = id.strip_prefix('s').and_then(|s| s.parse::<usize>().ok()) {
                    Ok(AffineExpr::Sym(n))
                } else {
                    Err(self.error(format!("unknown affine variable `{id}`")))
                }
            }
            other => Err(self.error(format!("expected affine expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_op;

    fn round_trip(input: &str) -> String {
        let mut ctx = Context::new();
        let op = parse_module(&mut ctx, input).expect("parse failed");
        print_op(&ctx, op)
    }

    #[test]
    fn parse_simple_module() {
        let text = r#"
"builtin.module"() ({
^bb0:
  %0 = "arith.constant"() {value = 2.5} : () -> (f64)
  %1 = "arith.mulf"(%0, %0) : (f64, f64) -> (f64)
}) : () -> ()
"#;
        let mut ctx = Context::new();
        let m = parse_module(&mut ctx, text).unwrap();
        assert_eq!(ctx.op(m).name, "builtin.module");
        let ops = ctx.walk(m);
        assert_eq!(ops.len(), 2);
        assert_eq!(ctx.op(ops[1]).name, "arith.mulf");
        assert_eq!(ctx.op(ops[1]).operands.len(), 2);
    }

    #[test]
    fn print_parse_fixpoint() {
        let text = r#"
"builtin.module"() ({
^bb0:
  "func.func"() ({
  ^bb1(%0: memref<4x8xf64>, %1: f64):
    %2 = "arith.constant"() {value = 1.0} : () -> (f64)
    %3 = "arith.addf"(%1, %2) : (f64, f64) -> (f64)
    "func.return"(%3) : (f64) -> ()
  }) {sym_name = @f, function_type = (memref<4x8xf64>, f64) -> (f64)} : () -> ()
}) : () -> ()
"#;
        let once = round_trip(text);
        let twice = round_trip(&once);
        assert_eq!(once, twice);
        assert!(once.contains("memref<4x8xf64>"));
        assert!(once.contains("@f"));
    }

    #[test]
    fn parse_successors_and_multiple_blocks() {
        let text = r#"
"func.func"() ({
^bb0(%0: !rv.reg<a0>):
  "rv_cf.j"()[^bb1] : () -> ()
^bb1:
  "rv_cf.j"()[^bb0] : () -> ()
}) : () -> ()
"#;
        let mut ctx = Context::new();
        let f = parse_module(&mut ctx, text).unwrap();
        let region = ctx.op(f).regions[0];
        let blocks = ctx.region_blocks(region).to_vec();
        assert_eq!(blocks.len(), 2);
        let j0 = ctx.block_ops(blocks[0])[0];
        assert_eq!(ctx.op(j0).successors, vec![blocks[1]]);
        let j1 = ctx.block_ops(blocks[1])[0];
        assert_eq!(ctx.op(j1).successors, vec![blocks[0]]);
    }

    #[test]
    fn parse_register_and_stream_types() {
        let text = r#"
"test.op"() ({
^bb0(%0: !rv.reg, %1: !rv.freg<ft3>, %2: !memref_stream.readable<f64>):
  "test.done"() : () -> ()
}) : () -> ()
"#;
        let mut ctx = Context::new();
        let op = parse_module(&mut ctx, text).unwrap();
        let block = ctx.sole_block(ctx.op(op).regions[0]);
        let args = ctx.block_args(block);
        assert_eq!(*ctx.value_type(args[0]), Type::IntRegister(None));
        assert_eq!(*ctx.value_type(args[1]), Type::FpRegister(Some(mlb_isa::FpReg::ft(3))));
        assert_eq!(*ctx.value_type(args[2]), Type::ReadableStream(Box::new(Type::F64)));
    }

    #[test]
    fn parse_rich_attributes() {
        let text = r#"
"test.op"() {
  bounds = dense<[1, 200, 5]>,
  map = affine_map<(d0, d1, d2) -> (((d0 * 5) + d2), d1)>,
  its = iterators<parallel, reduction, interleaved>,
  pat = #snitch_stream.pattern<ub = [5, 200], strides = [8, -32], repeat = 0>,
  sp = #memref_stream.stride_pattern<ub = [2, 3], index_map = affine_map<(d0, d1) -> (d1)>>,
  flag = true,
  n = -7,
  name = "hello"
} : () -> ()
"#;
        let mut ctx = Context::new();
        let op = parse_module(&mut ctx, text).unwrap();
        let op = ctx.op(op);
        assert_eq!(op.attr("bounds").unwrap().as_dense_i64().unwrap(), &[1, 200, 5]);
        let map = op.attr("map").unwrap().as_map().unwrap();
        assert_eq!(map.eval(&[2, 7, 3], &[]), vec![13, 7]);
        assert_eq!(op.attr("its").unwrap().as_iterators().unwrap().len(), 3);
        let pat = op.attr("pat").unwrap().as_stream_pattern().unwrap();
        assert_eq!(pat.strides, vec![8, -32]);
        assert_eq!(op.attr("n").unwrap().as_int(), Some(-7));
        assert_eq!(op.attr("name").unwrap().as_str(), Some("hello"));
        assert_eq!(op.attr("flag"), Some(&Attribute::Bool(true)));
        let sp = op.attr("sp").unwrap().as_stride_pattern().unwrap();
        assert_eq!(sp.ub, vec![2, 3]);
    }

    #[test]
    fn error_on_undefined_value() {
        let text = r#""test.op"(%9) : (f64) -> ()"#;
        let mut ctx = Context::new();
        let err = parse_module(&mut ctx, text).unwrap_err();
        assert!(err.message.contains("undefined value"), "{err}");
    }

    #[test]
    fn error_on_type_arity_mismatch() {
        let text = r#"
"builtin.module"() ({
^bb0:
  %0 = "arith.constant"() : () -> ()
}) : () -> ()
"#;
        let mut ctx = Context::new();
        let err = parse_module(&mut ctx, text).unwrap_err();
        assert!(err.message.contains("result"), "{err}");
    }

    #[test]
    fn error_on_trailing_input() {
        let text = r#""test.op"() : () -> () "test.other"() : () -> ()"#;
        let mut ctx = Context::new();
        let err = parse_module(&mut ctx, text).unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn errors_render_line_column_and_excerpt() {
        let text = "\"builtin.module\"() ({\n^bb0:\n  %0 = $bad\n}) : () -> ()\n";
        let mut ctx = Context::new();
        let err = parse_module(&mut ctx, text).unwrap_err();
        let loc = err.location.as_ref().expect("parse_module resolves the location");
        assert_eq!(loc.line, 3);
        assert_eq!(loc.column, 8);
        assert_eq!(loc.excerpt, "  %0 = $bad");
        let rendered = err.to_string();
        assert!(rendered.contains("parse error at line 3, column 8"), "{rendered}");
        assert!(rendered.contains("|   %0 = $bad"), "{rendered}");
        assert_eq!(rendered.lines().last().unwrap(), "  |        ^", "{rendered}");
    }

    #[test]
    fn error_at_end_of_input_stays_in_bounds() {
        let text = "\"builtin.module\"() ({";
        let mut ctx = Context::new();
        let err = parse_module(&mut ctx, text).unwrap_err();
        let loc = err.location.as_ref().expect("location resolved even at EOF");
        assert_eq!(loc.line, 1);
        assert!(loc.column <= text.len() + 1, "{err}");
    }

    #[test]
    fn comments_are_skipped() {
        let text = "// a comment\n\"test.op\"() : () -> () // trailing\n";
        let mut ctx = Context::new();
        assert!(parse_module(&mut ctx, text).is_ok());
    }

    #[test]
    fn explicit_loc_trailers_round_trip() {
        let text = r#""builtin.module"() ({
^bb0:
  %0 = "arith.constant"() {value = 2.5} : () -> (f64) loc("k.mlir":3)
  %1 = "arith.mulf"(%0, %0) : (f64, f64) -> (f64) loc(fused<"fma">["k.mlir":4])
}) : () -> ()"#;
        let mut ctx = Context::new();
        let m = parse_module(&mut ctx, text).unwrap();
        let ops = ctx.walk(m);
        assert_eq!(ctx.op(ops[0]).loc, Location::file("k.mlir", 3));
        assert_eq!(ctx.op(ops[1]).loc.source_label().as_deref(), Some("k.mlir:4"));
        // Print → parse → print is a fixpoint with the trailers intact.
        let printed = print_op(&ctx, m);
        assert!(printed.contains(r#"loc("k.mlir":3)"#), "{printed}");
        assert!(printed.contains(r#"loc(fused<"fma">["k.mlir":4])"#), "{printed}");
        assert_eq!(round_trip(&printed), printed);
    }

    #[test]
    fn auto_locations_use_the_op_line() {
        let text = "\"builtin.module\"() ({\n^bb0:\n  \"test.op\"() : () -> ()\n}) : () -> ()";
        let mut ctx = Context::new();
        let m = parse_module_with_locations(&mut ctx, text, "in.mlir").unwrap();
        let op = ctx.walk(m)[0];
        assert_eq!(ctx.op(op).loc, Location::file("in.mlir", 3));
        assert_eq!(ctx.op(m).loc, Location::file("in.mlir", 1));
    }

    #[test]
    fn location_free_ir_prints_without_trailers() {
        let text = "\"builtin.module\"() ({\n^bb0:\n  \"test.op\"() : () -> ()\n}) : () -> ()";
        let printed = round_trip(text);
        assert!(!printed.contains("loc("), "{printed}");
    }
}
