//! Pass infrastructure.
//!
//! A [`Pass`] is a whole-module transformation; a [`PassManager`] runs a
//! sequence of passes, optionally verifying the IR after each one — the
//! "small, self-contained passes" structure that makes the lowering
//! pipeline "easier to introspect, develop and maintain" (Section 3.4).

use std::fmt;

use crate::context::{Context, OpId};
use crate::registry::{DialectRegistry, VerifyError};

/// Error produced when a pass fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// Name of the failing pass.
    pub pass: String,
    /// Description of the failure.
    pub message: String,
}

impl PassError {
    /// Creates a pass error.
    pub fn new(pass: impl Into<String>, message: impl Into<String>) -> PassError {
        PassError { pass: pass.into(), message: message.into() }
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass `{}` failed: {}", self.pass, self.message)
    }
}

impl std::error::Error for PassError {}

impl From<VerifyError> for PassError {
    fn from(e: VerifyError) -> PassError {
        PassError::new("verify", e.to_string())
    }
}

/// A module-level IR transformation.
pub trait Pass {
    /// The pass name used in diagnostics and pipeline dumps.
    fn name(&self) -> &'static str;

    /// Transforms the module rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns a [`PassError`] when the input is outside the pass's
    /// supported domain (e.g. register exhaustion in the spill-free
    /// allocator).
    fn run(&self, ctx: &mut Context, registry: &DialectRegistry, root: OpId)
        -> Result<(), PassError>;
}

/// Runs a sequence of passes.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
    dump_each: bool,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>())
            .field("verify_each", &self.verify_each)
            .finish()
    }
}

impl Default for PassManager {
    fn default() -> PassManager {
        PassManager::new()
    }
}

impl PassManager {
    /// Creates an empty pass manager with per-pass verification enabled.
    pub fn new() -> PassManager {
        PassManager { passes: Vec::new(), verify_each: true, dump_each: false }
    }

    /// Appends a pass to the pipeline.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut PassManager {
        self.passes.push(Box::new(pass));
        self
    }

    /// Enables or disables verification after each pass.
    pub fn verify_each(&mut self, enabled: bool) -> &mut PassManager {
        self.verify_each = enabled;
        self
    }

    /// Enables printing the IR to stderr after each pass (debugging aid).
    pub fn dump_each(&mut self, enabled: bool) -> &mut PassManager {
        self.dump_each = enabled;
        self
    }

    /// Names of the registered passes, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs all passes in order.
    ///
    /// # Errors
    ///
    /// Stops at the first failing pass or verification error, identifying
    /// the pass in the returned [`PassError`].
    pub fn run(
        &self,
        ctx: &mut Context,
        registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        for pass in &self.passes {
            pass.run(ctx, registry, root)?;
            if self.dump_each {
                eprintln!("// after {}:\n{}", pass.name(), crate::printer::print_op(ctx, root));
            }
            if self.verify_each {
                registry.verify(ctx, root).map_err(|e| {
                    PassError::new(pass.name(), format!("verification failed after pass: {e}"))
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OpSpec;
    use crate::registry::OpInfo;

    struct RenamePass {
        from: &'static str,
        to: &'static str,
    }

    impl Pass for RenamePass {
        fn name(&self) -> &'static str {
            "rename"
        }
        fn run(
            &self,
            ctx: &mut Context,
            _registry: &DialectRegistry,
            root: OpId,
        ) -> Result<(), PassError> {
            for op in ctx.walk(root) {
                if ctx.op(op).name == self.from {
                    ctx.op_mut(op).name = self.to.to_string();
                }
            }
            Ok(())
        }
    }

    struct FailingPass;
    impl Pass for FailingPass {
        fn name(&self) -> &'static str {
            "always-fails"
        }
        fn run(
            &self,
            _ctx: &mut Context,
            _registry: &DialectRegistry,
            _root: OpId,
        ) -> Result<(), PassError> {
            Err(PassError::new(self.name(), "boom"))
        }
    }

    fn setup() -> (Context, DialectRegistry, OpId) {
        let mut ctx = Context::new();
        let mut registry = DialectRegistry::new();
        registry.register(OpInfo::new("t.module"));
        registry.register(OpInfo::new("t.a"));
        registry.register(OpInfo::new("t.b"));
        let m = ctx.create_detached_op(OpSpec::new("t.module").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        ctx.append_op(b, OpSpec::new("t.a"));
        (ctx, registry, m)
    }

    #[test]
    fn passes_run_in_order() {
        let (mut ctx, registry, m) = setup();
        let mut pm = PassManager::new();
        pm.add(RenamePass { from: "t.a", to: "t.b" });
        pm.run(&mut ctx, &registry, m).unwrap();
        assert_eq!(ctx.walk_named(m, "t.b").len(), 1);
        assert_eq!(pm.pass_names(), ["rename"]);
    }

    #[test]
    fn verification_catches_bad_pass_output() {
        let (mut ctx, registry, m) = setup();
        let mut pm = PassManager::new();
        // Renames to an unregistered name: verification must fail.
        pm.add(RenamePass { from: "t.a", to: "t.unregistered" });
        let err = pm.run(&mut ctx, &registry, m).unwrap_err();
        assert_eq!(err.pass, "rename");
        assert!(err.message.contains("not registered"));
    }

    #[test]
    fn failing_pass_reports_name() {
        let (mut ctx, registry, m) = setup();
        let mut pm = PassManager::new();
        pm.add(FailingPass);
        let err = pm.run(&mut ctx, &registry, m).unwrap_err();
        assert_eq!(err.pass, "always-fails");
        assert_eq!(err.to_string(), "pass `always-fails` failed: boom");
    }
}
