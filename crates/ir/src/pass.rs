//! Pass infrastructure.
//!
//! A [`Pass`] is a whole-module transformation; a [`PassManager`] runs a
//! sequence of passes, optionally verifying the IR after each one — the
//! "small, self-contained passes" structure that makes the lowering
//! pipeline "easier to introspect, develop and maintain" (Section 3.4).

use std::fmt;
use std::time::Instant;

use crate::context::{Context, OpId};
use crate::observe::{
    count_blocks, count_ops, IrSnapshotMode, NoopObserver, PassEvent, PipelineObserver,
};
use crate::registry::{DialectRegistry, VerifyError};

/// Error produced when a pass fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// Name of the failing pass.
    pub pass: String,
    /// Description of the failure.
    pub message: String,
}

impl PassError {
    /// Creates a pass error.
    pub fn new(pass: impl Into<String>, message: impl Into<String>) -> PassError {
        PassError { pass: pass.into(), message: message.into() }
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass `{}` failed: {}", self.pass, self.message)
    }
}

impl std::error::Error for PassError {}

impl From<VerifyError> for PassError {
    fn from(e: VerifyError) -> PassError {
        PassError::new("verify", e.to_string())
    }
}

/// A module-level IR transformation.
pub trait Pass {
    /// The pass name used in diagnostics and pipeline dumps.
    fn name(&self) -> &'static str;

    /// Transforms the module rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns a [`PassError`] when the input is outside the pass's
    /// supported domain (e.g. register exhaustion in the spill-free
    /// allocator).
    fn run(
        &self,
        ctx: &mut Context,
        registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError>;
}

/// Runs a sequence of passes.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
    dump_each: bool,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>())
            .field("verify_each", &self.verify_each)
            .finish()
    }
}

impl Default for PassManager {
    fn default() -> PassManager {
        PassManager::new()
    }
}

impl PassManager {
    /// Creates an empty pass manager with per-pass verification enabled.
    pub fn new() -> PassManager {
        PassManager { passes: Vec::new(), verify_each: true, dump_each: false }
    }

    /// Appends a pass to the pipeline.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut PassManager {
        self.passes.push(Box::new(pass));
        self
    }

    /// Inserts a pass at `index` in the pipeline (clamped to the end).
    ///
    /// This exists for harnesses that splice diagnostic or fault-injection
    /// passes into an already-built pipeline — e.g. the differential
    /// tester's miscompile self-test, which plants a deliberately wrong
    /// pass mid-pipeline and checks that the bisection blames it.
    pub fn insert(&mut self, index: usize, pass: impl Pass + 'static) -> &mut PassManager {
        let index = index.min(self.passes.len());
        self.passes.insert(index, Box::new(pass));
        self
    }

    /// Enables or disables verification after each pass.
    pub fn verify_each(&mut self, enabled: bool) -> &mut PassManager {
        self.verify_each = enabled;
        self
    }

    /// Enables printing the IR to stderr after each pass (debugging aid).
    pub fn dump_each(&mut self, enabled: bool) -> &mut PassManager {
        self.dump_each = enabled;
        self
    }

    /// Names of the registered passes, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs all passes in order.
    ///
    /// # Errors
    ///
    /// Stops at the first failing pass or verification error, identifying
    /// the pass in the returned [`PassError`].
    pub fn run(
        &self,
        ctx: &mut Context,
        registry: &DialectRegistry,
        root: OpId,
    ) -> Result<(), PassError> {
        self.run_observed(ctx, registry, root, &mut NoopObserver)
    }

    /// Runs all passes in order, reporting a [`PassEvent`] per pass to
    /// `observer` (timing, size deltas, rewrite counters, and IR
    /// snapshots when the observer's [`IrSnapshotMode`] asks for them).
    ///
    /// # Errors
    ///
    /// Stops at the first failing pass or verification error, identifying
    /// the pass in the returned [`PassError`]. Events for passes that ran
    /// before the failure have already been delivered.
    pub fn run_observed(
        &self,
        ctx: &mut Context,
        registry: &DialectRegistry,
        root: OpId,
        observer: &mut dyn PipelineObserver,
    ) -> Result<(), PassError> {
        let mode = observer.snapshot_mode();
        // Change detection compares printed IR; the previous pass's
        // snapshot doubles as this pass's "before", so each pass prints
        // at most once.
        let mut prev_print: Option<String> = match mode {
            IrSnapshotMode::None => None,
            _ => Some(crate::printer::print_op(ctx, root)),
        };
        for (index, pass) in self.passes.iter().enumerate() {
            let ops_before = count_ops(ctx, root);
            let blocks_before = count_blocks(ctx, root);
            let rewrites_before = ctx.rewrite_stats();
            let start = Instant::now();
            pass.run(ctx, registry, root)?;
            let nanos = start.elapsed().as_nanos();
            if self.dump_each {
                eprintln!("// after {}:\n{}", pass.name(), crate::printer::print_op(ctx, root));
            }
            if self.verify_each {
                registry.verify(ctx, root).map_err(|e| {
                    PassError::new(pass.name(), format!("verification failed after pass: {e}"))
                })?;
            }
            let (changed, ir_after) = match mode {
                IrSnapshotMode::None => (None, None),
                _ => {
                    let printed = crate::printer::print_op(ctx, root);
                    let changed = prev_print.as_deref() != Some(printed.as_str());
                    let keep = mode == IrSnapshotMode::All || changed;
                    let ir_after = keep.then(|| printed.clone());
                    prev_print = Some(printed);
                    (Some(changed), ir_after)
                }
            };
            observer.on_pass(PassEvent {
                index,
                pass: pass.name(),
                nanos,
                ops_before,
                ops_after: count_ops(ctx, root),
                blocks_before,
                blocks_after: count_blocks(ctx, root),
                rewrites: ctx.rewrite_stats().delta_since(rewrites_before),
                changed,
                ir_after,
            });
            observer.on_ir(ctx, root, pass.name(), index);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OpSpec;
    use crate::registry::OpInfo;

    struct RenamePass {
        from: &'static str,
        to: &'static str,
    }

    impl Pass for RenamePass {
        fn name(&self) -> &'static str {
            "rename"
        }
        fn run(
            &self,
            ctx: &mut Context,
            _registry: &DialectRegistry,
            root: OpId,
        ) -> Result<(), PassError> {
            for op in ctx.walk(root) {
                if ctx.op(op).name == self.from {
                    ctx.op_mut(op).name = self.to.to_string();
                }
            }
            Ok(())
        }
    }

    struct FailingPass;
    impl Pass for FailingPass {
        fn name(&self) -> &'static str {
            "always-fails"
        }
        fn run(
            &self,
            _ctx: &mut Context,
            _registry: &DialectRegistry,
            _root: OpId,
        ) -> Result<(), PassError> {
            Err(PassError::new(self.name(), "boom"))
        }
    }

    fn setup() -> (Context, DialectRegistry, OpId) {
        let mut ctx = Context::new();
        let mut registry = DialectRegistry::new();
        registry.register(OpInfo::new("t.module"));
        registry.register(OpInfo::new("t.a"));
        registry.register(OpInfo::new("t.b"));
        let m = ctx.create_detached_op(OpSpec::new("t.module").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        ctx.append_op(b, OpSpec::new("t.a"));
        (ctx, registry, m)
    }

    #[test]
    fn passes_run_in_order() {
        let (mut ctx, registry, m) = setup();
        let mut pm = PassManager::new();
        pm.add(RenamePass { from: "t.a", to: "t.b" });
        pm.run(&mut ctx, &registry, m).unwrap();
        assert_eq!(ctx.walk_named(m, "t.b").len(), 1);
        assert_eq!(pm.pass_names(), ["rename"]);
    }

    #[test]
    fn verification_catches_bad_pass_output() {
        let (mut ctx, registry, m) = setup();
        let mut pm = PassManager::new();
        // Renames to an unregistered name: verification must fail.
        pm.add(RenamePass { from: "t.a", to: "t.unregistered" });
        let err = pm.run(&mut ctx, &registry, m).unwrap_err();
        assert_eq!(err.pass, "rename");
        assert!(err.message.contains("not registered"));
    }

    #[test]
    fn recorder_sees_timing_and_deltas() {
        use crate::observe::{IrSnapshotMode, PipelineRecorder};
        let (mut ctx, registry, m) = setup();
        let mut pm = PassManager::new();
        pm.add(RenamePass { from: "t.a", to: "t.b" });
        pm.add(RenamePass { from: "t.missing", to: "t.b" }); // no-op pass
        let mut rec = PipelineRecorder::new(IrSnapshotMode::OnChange);
        pm.run_observed(&mut ctx, &registry, m, &mut rec).unwrap();
        assert_eq!(rec.events.len(), 2);
        let first = &rec.events[0];
        assert_eq!(first.pass, "rename");
        assert_eq!(first.index, 0);
        assert_eq!(first.ops_before, 2);
        assert_eq!(first.ops_after, 2);
        assert_eq!(first.changed, Some(true));
        assert!(first.ir_after.as_deref().unwrap().contains("t.b"));
        let second = &rec.events[1];
        assert_eq!(second.index, 1);
        assert_eq!(second.changed, Some(false));
        assert!(second.ir_after.is_none(), "unchanged pass keeps no snapshot in OnChange mode");
    }

    #[test]
    fn snapshot_mode_all_keeps_unchanged_ir() {
        use crate::observe::{IrSnapshotMode, PipelineRecorder};
        let (mut ctx, registry, m) = setup();
        let mut pm = PassManager::new();
        pm.add(RenamePass { from: "t.missing", to: "t.b" });
        let mut rec = PipelineRecorder::new(IrSnapshotMode::All);
        pm.run_observed(&mut ctx, &registry, m, &mut rec).unwrap();
        assert_eq!(rec.events[0].changed, Some(false));
        assert!(rec.events[0].ir_after.is_some());
    }

    #[test]
    fn failing_pass_reports_name() {
        let (mut ctx, registry, m) = setup();
        let mut pm = PassManager::new();
        pm.add(FailingPass);
        let err = pm.run(&mut ctx, &registry, m).unwrap_err();
        assert_eq!(err.pass, "always-fails");
        assert_eq!(err.to_string(), "pass `always-fails` failed: boom");
    }
}
