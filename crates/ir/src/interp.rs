//! Dialect-aware IR interpretation.
//!
//! The interpreter executes a module *at any pipeline stage* — from
//! `linalg` on memrefs down to allocated `rv` assembly ops — against a
//! byte-addressed TCDM image, so the differential-testing harness can
//! compare every stage of the progressive lowering against the host
//! reference and bisect a miscompile to the first diverging pass.
//!
//! The design follows the dialect structure of the IR itself:
//!
//! - [`Interpreter`] holds the machine-independent execution state: the
//!   SSA value store, the integer/float register files (for ops whose
//!   results are pinned to physical registers), a TCDM memory image, the
//!   three SSR stream movers and the `memref_stream`-level stream
//!   cursors.
//! - [`ExecRegistry`] maps operation names to [`Handler`] functions.
//!   Each dialect crate registers execution semantics for its own ops,
//!   exactly like verifier registration in
//!   [`crate::registry::DialectRegistry`].
//! - Handlers return a [`Flow`] so both structured regions (`scf.for`)
//!   and unstructured control flow (`rv_cf` branches after loop
//!   lowering) execute under the same driver.
//!
//! Physical-register semantics mirror the simulator bit-for-bit: reads
//! of an SSR-mapped register (`ft0`–`ft2`) pop from an armed read
//! stream, writes push to a write stream, and register-to-register
//! moves between identical registers are elided just as the assembly
//! emitter elides them.

use std::collections::HashMap;

use mlb_isa::{FpReg, IntReg, SsrCfgReg, NUM_SSR_DATA_MOVERS, SSR_MAX_DIMS, TCDM_BASE, TCDM_SIZE};

use crate::context::{BlockId, Context, OpId, RegionId, ValueId};
use crate::types::Type;

/// A runtime value in the interpreter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// An integer (index values, loop bounds, `rv.reg` contents).
    Int(i64),
    /// A double-precision float (high-level `f64` SSA values).
    F64(f64),
    /// A single-precision float (high-level `f32` SSA values).
    F32(f32),
    /// Raw 64-bit register contents (`rv.freg` SSA values).
    Bits(u64),
    /// A handle to a `memref_stream` read/write stream cursor.
    Stream(usize),
}

impl Value {
    /// The integer payload.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is not an integer.
    pub fn as_int(&self) -> Result<i64, String> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(format!("expected an integer value, got {other:?}")),
        }
    }

    /// The value as raw 64-bit FP register contents. Scalars are encoded
    /// the way the machine holds them: `f64` as its bits, `f32` NaN-boxed
    /// in the low 32 bits.
    ///
    /// # Errors
    ///
    /// Returns a message if the value has no register representation.
    pub fn as_bits(&self) -> Result<u64, String> {
        match self {
            Value::Bits(b) => Ok(*b),
            Value::F64(v) => Ok(v.to_bits()),
            Value::F32(v) => Ok(v.to_bits() as u64 | 0xFFFF_FFFF_0000_0000),
            other => Err(format!("expected register bits, got {other:?}")),
        }
    }

    /// The value as an `f64`.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is not a double.
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Value::F64(v) => Ok(*v),
            Value::Bits(b) => Ok(f64::from_bits(*b)),
            other => Err(format!("expected an f64 value, got {other:?}")),
        }
    }

    /// The value as an `f32` (from the low 32 bits of register contents).
    ///
    /// # Errors
    ///
    /// Returns a message if the value is not a single.
    pub fn as_f32(&self) -> Result<f32, String> {
        match self {
            Value::F32(v) => Ok(*v),
            Value::Bits(b) => Ok(f32::from_bits(*b as u32)),
            other => Err(format!("expected an f32 value, got {other:?}")),
        }
    }

    /// The stream handle payload.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is not a stream handle.
    pub fn as_stream(&self) -> Result<usize, String> {
        match self {
            Value::Stream(h) => Ok(*h),
            other => Err(format!("expected a stream handle, got {other:?}")),
        }
    }
}

/// Where execution goes after an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Fall through to the next operation in the block.
    Continue,
    /// Jump to the given block (unstructured control flow; values flow
    /// through physical registers, so branches carry no arguments).
    Branch(BlockId),
    /// Return from the enclosing function.
    Return,
}

/// Error produced during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// The operation being executed when the error occurred, if known.
    pub op: Option<OpId>,
    /// Description of the failure.
    pub message: String,
}

impl InterpError {
    /// Creates an error anchored on `op`.
    pub fn at(op: OpId, message: impl Into<String>) -> InterpError {
        InterpError { op: Some(op), message: message.into() }
    }
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "interpreter error: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

/// Direction of an armed stream-mover job (mirrors the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamDirection {
    /// Stream reads memory into the register.
    Read,
    /// Stream writes register values to memory.
    Write,
}

#[derive(Debug, Clone)]
struct StreamJob {
    direction: StreamDirection,
    dims: usize,
    addr: i64,
    idx: [u32; SSR_MAX_DIMS],
    rep: u32,
    done: bool,
    bounds: [u32; SSR_MAX_DIMS],
    strides: [i64; SSR_MAX_DIMS],
    repeat: u32,
}

/// An SSR data-mover model with the exact address-generation semantics of
/// the simulator's mover, so interpretation of `riscv`-level modules
/// agrees with simulation on every popped address.
#[derive(Debug, Clone, Default)]
pub struct StreamMover {
    bounds: [u32; SSR_MAX_DIMS],
    strides: [i64; SSR_MAX_DIMS],
    repeat: u32,
    job: Option<StreamJob>,
}

impl StreamMover {
    /// Applies an `scfgwi` write to this data mover.
    pub fn configure(&mut self, reg: SsrCfgReg, value: u32) {
        match reg {
            SsrCfgReg::Status => self.job = None,
            SsrCfgReg::Repeat => self.repeat = value,
            SsrCfgReg::Bound(d) => self.bounds[d as usize] = value,
            SsrCfgReg::Stride(d) => self.strides[d as usize] = value as i32 as i64,
            SsrCfgReg::RPtr(d) => self.arm(StreamDirection::Read, d as usize + 1, value),
            SsrCfgReg::WPtr(d) => self.arm(StreamDirection::Write, d as usize + 1, value),
        }
    }

    fn arm(&mut self, direction: StreamDirection, dims: usize, base: u32) {
        self.job = Some(StreamJob {
            direction,
            dims,
            addr: base as i64,
            idx: [0; SSR_MAX_DIMS],
            rep: 0,
            done: false,
            bounds: self.bounds,
            strides: self.strides,
            repeat: self.repeat,
        });
    }

    /// The direction of the armed job, if any.
    pub fn direction(&self) -> Option<StreamDirection> {
        self.job.as_ref().map(|j| j.direction)
    }

    /// Whether a job is armed (even if already exhausted).
    pub fn is_active(&self) -> bool {
        self.job.is_some()
    }

    /// Pops the next address of the job.
    ///
    /// # Errors
    ///
    /// Returns `Err` if no job is armed, the job is exhausted, or the
    /// direction does not match.
    pub fn next_addr(&mut self, direction: StreamDirection) -> Result<u32, String> {
        let job = self.job.as_mut().ok_or("SSR access with no armed job")?;
        if job.direction != direction {
            return Err(format!("SSR {direction:?} access on a {:?} job", job.direction));
        }
        if job.done {
            return Err("SSR access beyond the end of the stream".to_string());
        }
        let addr = job.addr;
        if job.rep < job.repeat {
            job.rep += 1;
        } else {
            job.rep = 0;
            let mut d = 0;
            loop {
                if d == job.dims {
                    job.done = true;
                    break;
                }
                if job.idx[d] < job.bounds[d] {
                    job.idx[d] += 1;
                    job.addr += job.strides[d];
                    break;
                }
                job.idx[d] = 0;
                d += 1;
            }
        }
        u32::try_from(addr).map_err(|_| "SSR address out of range".to_string())
    }
}

/// A `memref_stream`-level stream cursor: the pre-computed sequence of
/// element addresses an operand's stride pattern touches.
#[derive(Debug, Clone)]
pub struct StreamCursor {
    /// Element byte addresses in pattern order.
    pub addrs: Vec<u32>,
    /// Next position to pop/push.
    pub pos: usize,
    /// Whether the stream writes memory.
    pub write: bool,
    /// Whether elements are `f32` (else `f64`).
    pub f32: bool,
}

/// Default instruction budget: generous for every suite kernel while
/// still bounding a non-terminating interpretation.
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// Machine-independent execution state for one module interpretation.
#[derive(Debug, Clone)]
pub struct Interpreter {
    /// SSA environment for values not pinned to physical registers.
    ssa: HashMap<ValueId, Value>,
    /// Integer register file (for `!rv.reg<..>`-typed values).
    pub x: [u32; 32],
    /// FP register file as raw bits (for `!rv.freg<..>`-typed values).
    pub f: [u64; 32],
    /// TCDM image, addressed from [`TCDM_BASE`].
    mem: Vec<u8>,
    /// The three SSR data movers.
    pub movers: [StreamMover; NUM_SSR_DATA_MOVERS],
    /// Whether stream semantics are enabled (CSR bit set).
    pub ssr_enabled: bool,
    /// Open `memref_stream`-level stream cursors.
    streams: Vec<StreamCursor>,
    /// Remaining instruction budget.
    pub fuel: u64,
    /// Core index reported by `rv_snitch.hartid` (0 on a single core).
    pub hart: i64,
}

impl Default for Interpreter {
    fn default() -> Interpreter {
        Interpreter::new()
    }
}

impl Interpreter {
    /// Creates an interpreter with a zeroed TCDM and full fuel.
    pub fn new() -> Interpreter {
        Interpreter {
            ssa: HashMap::new(),
            x: [0; 32],
            f: [0; 32],
            mem: vec![0; TCDM_SIZE],
            movers: Default::default(),
            ssr_enabled: false,
            streams: Vec::new(),
            fuel: DEFAULT_FUEL,
            hart: 0,
        }
    }

    /// Swaps this interpreter's TCDM image with `image`, so several
    /// interpreter runs (one per hart) can share a single memory.
    pub fn swap_mem(&mut self, image: &mut Vec<u8>) {
        std::mem::swap(&mut self.mem, image);
    }

    // ----- memory ----------------------------------------------------------

    fn mem_index(&self, addr: u32, size: usize) -> Result<usize, String> {
        let end = addr as u64 + size as u64;
        if addr < TCDM_BASE || end > TCDM_BASE as u64 + TCDM_SIZE as u64 {
            return Err(format!("address {addr:#x} outside TCDM"));
        }
        if !(addr as usize).is_multiple_of(size) {
            return Err(format!("misaligned {size}-byte access at {addr:#x}"));
        }
        Ok((addr - TCDM_BASE) as usize)
    }

    /// Reads `N` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a message for out-of-range or misaligned addresses.
    pub fn read_bytes<const N: usize>(&self, addr: u32) -> Result<[u8; N], String> {
        let i = self.mem_index(addr, N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.mem[i..i + N]);
        Ok(out)
    }

    /// Writes `N` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a message for out-of-range or misaligned addresses.
    pub fn write_bytes<const N: usize>(&mut self, addr: u32, bytes: [u8; N]) -> Result<(), String> {
        let i = self.mem_index(addr, N)?;
        self.mem[i..i + N].copy_from_slice(&bytes);
        Ok(())
    }

    /// Reads an `f64` at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates memory access errors.
    pub fn read_f64(&self, addr: u32) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.read_bytes::<8>(addr)?))
    }

    /// Writes an `f64` at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates memory access errors.
    pub fn write_f64(&mut self, addr: u32, v: f64) -> Result<(), String> {
        self.write_bytes(addr, v.to_le_bytes())
    }

    /// Reads an `f32` at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates memory access errors.
    pub fn read_f32(&self, addr: u32) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.read_bytes::<4>(addr)?))
    }

    /// Writes an `f32` at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates memory access errors.
    pub fn write_f32(&mut self, addr: u32, v: f32) -> Result<(), String> {
        self.write_bytes(addr, v.to_le_bytes())
    }

    /// Writes a contiguous `f64` buffer starting at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates memory access errors (checked element-wise).
    pub fn write_f64_slice(&mut self, addr: u32, data: &[f64]) -> Result<(), String> {
        for (i, &v) in data.iter().enumerate() {
            let a = (addr as u64 + i as u64 * 8)
                .try_into()
                .map_err(|_| format!("address overflow writing f64 slice at {addr:#x}"))?;
            self.write_f64(a, v)?;
        }
        Ok(())
    }

    /// Reads a contiguous `f64` buffer starting at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates memory access errors (checked element-wise).
    pub fn read_f64_slice(&self, addr: u32, len: usize) -> Result<Vec<f64>, String> {
        (0..len)
            .map(|i| {
                let a = (addr as u64 + i as u64 * 8)
                    .try_into()
                    .map_err(|_| format!("address overflow reading f64 slice at {addr:#x}"))?;
                self.read_f64(a)
            })
            .collect()
    }

    /// Writes a contiguous `f32` buffer starting at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates memory access errors (checked element-wise).
    pub fn write_f32_slice(&mut self, addr: u32, data: &[f32]) -> Result<(), String> {
        for (i, &v) in data.iter().enumerate() {
            let a = (addr as u64 + i as u64 * 4)
                .try_into()
                .map_err(|_| format!("address overflow writing f32 slice at {addr:#x}"))?;
            self.write_f32(a, v)?;
        }
        Ok(())
    }

    /// Reads a contiguous `f32` buffer starting at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates memory access errors (checked element-wise).
    pub fn read_f32_slice(&self, addr: u32, len: usize) -> Result<Vec<f32>, String> {
        (0..len)
            .map(|i| {
                let a = (addr as u64 + i as u64 * 4)
                    .try_into()
                    .map_err(|_| format!("address overflow reading f32 slice at {addr:#x}"))?;
                self.read_f32(a)
            })
            .collect()
    }

    // ----- register files --------------------------------------------------

    /// Reads integer register `r` (`x0` is always zero).
    pub fn get_x(&self, r: IntReg) -> u32 {
        if r == IntReg::ZERO {
            0
        } else {
            self.x[r.index() as usize]
        }
    }

    /// Writes integer register `r` (writes to `x0` are ignored).
    pub fn set_x(&mut self, r: IntReg, v: u32) {
        if r != IntReg::ZERO {
            self.x[r.index() as usize] = v;
        }
    }

    /// Reads FP register `r`, popping from an armed read stream when
    /// stream semantics are enabled (mirrors the simulator: an armed
    /// *write* mover falls through to the plain register).
    ///
    /// # Errors
    ///
    /// Propagates stream and memory errors.
    pub fn read_fp_reg(&mut self, r: FpReg) -> Result<u64, String> {
        if self.ssr_enabled && r.is_ssr() {
            let dm = r.index() as usize;
            if self.movers[dm].is_active()
                && self.movers[dm].direction() == Some(StreamDirection::Read)
            {
                let addr = self.movers[dm].next_addr(StreamDirection::Read)?;
                // Double-aligned addresses stream doubles; otherwise the
                // mover streams singles (packed SIMD / f32 kernels).
                return if addr % 8 == 0 {
                    Ok(u64::from_le_bytes(self.read_bytes::<8>(addr)?))
                } else {
                    Ok(u32::from_le_bytes(self.read_bytes::<4>(addr)?) as u64)
                };
            }
        }
        Ok(self.f[r.index() as usize])
    }

    /// Writes FP register `r`, pushing to an armed write stream when
    /// stream semantics are enabled.
    ///
    /// # Errors
    ///
    /// Propagates stream and memory errors.
    pub fn write_fp_reg(&mut self, r: FpReg, bits: u64) -> Result<(), String> {
        if self.ssr_enabled && r.is_ssr() {
            let dm = r.index() as usize;
            if self.movers[dm].is_active()
                && self.movers[dm].direction() == Some(StreamDirection::Write)
            {
                let addr = self.movers[dm].next_addr(StreamDirection::Write)?;
                return if addr % 8 == 0 {
                    self.write_bytes(addr, bits.to_le_bytes())
                } else {
                    self.write_bytes(addr, (bits as u32).to_le_bytes())
                };
            }
        }
        self.f[r.index() as usize] = bits;
        Ok(())
    }

    // ----- SSA environment -------------------------------------------------

    /// Reads the runtime value of `v`. Values typed as allocated
    /// registers read the physical register file (with stream
    /// semantics); everything else reads the SSA environment.
    ///
    /// # Errors
    ///
    /// Returns a message for undefined values and stream errors.
    pub fn get(&mut self, ctx: &Context, v: ValueId) -> Result<Value, String> {
        match ctx.value_type(v) {
            Type::IntRegister(Some(r)) => Ok(Value::Int(self.get_x(*r) as i64)),
            Type::FpRegister(Some(r)) => Ok(Value::Bits(self.read_fp_reg(*r)?)),
            _ => self
                .ssa
                .get(&v)
                .copied()
                .ok_or_else(|| format!("use of undefined value of type {}", ctx.value_type(v))),
        }
    }

    /// Writes the runtime value of `v` (physical registers included).
    ///
    /// # Errors
    ///
    /// Returns a message for representation mismatches and stream errors.
    pub fn set(&mut self, ctx: &Context, v: ValueId, val: Value) -> Result<(), String> {
        match ctx.value_type(v) {
            Type::IntRegister(Some(r)) => {
                self.set_x(*r, val.as_int()? as u32);
                Ok(())
            }
            Type::FpRegister(Some(r)) => self.write_fp_reg(*r, val.as_bits()?),
            _ => {
                self.ssa.insert(v, val);
                Ok(())
            }
        }
    }

    /// Binds `dst` to the value of `src`, eliding the copy when both are
    /// pinned to the same physical register — exactly the moves the
    /// assembly emitter elides, so no stream pop/push happens for them.
    ///
    /// # Errors
    ///
    /// Propagates read/write errors.
    pub fn bind(&mut self, ctx: &Context, dst: ValueId, src: ValueId) -> Result<(), String> {
        let dt = ctx.value_type(dst);
        if dt.is_allocated_register() && dt == ctx.value_type(src) {
            return Ok(());
        }
        let v = self.get(ctx, src)?;
        self.set(ctx, dst, v)
    }

    // ----- memref_stream cursors -------------------------------------------

    /// Opens a stream cursor over the given element addresses and returns
    /// its handle.
    pub fn open_stream(&mut self, addrs: Vec<u32>, write: bool, f32: bool) -> usize {
        self.streams.push(StreamCursor { addrs, pos: 0, write, f32 });
        self.streams.len() - 1
    }

    /// Pops the next element from a read stream.
    ///
    /// # Errors
    ///
    /// Returns a message on direction mismatch, exhaustion or memory
    /// errors.
    pub fn stream_pop(&mut self, handle: usize) -> Result<Value, String> {
        let cursor = self.streams.get(handle).ok_or("unknown stream handle")?;
        if cursor.write {
            return Err("read from a writable stream".to_string());
        }
        if cursor.pos >= cursor.addrs.len() {
            return Err("stream read beyond the end of its pattern".to_string());
        }
        let addr = cursor.addrs[cursor.pos];
        let is_f32 = cursor.f32;
        let v = if is_f32 {
            Value::F32(self.read_f32(addr)?)
        } else {
            Value::F64(self.read_f64(addr)?)
        };
        self.streams[handle].pos += 1;
        Ok(v)
    }

    /// Pushes an element to a write stream.
    ///
    /// # Errors
    ///
    /// Returns a message on direction mismatch, exhaustion or memory
    /// errors.
    pub fn stream_push(&mut self, handle: usize, val: Value) -> Result<(), String> {
        let cursor = self.streams.get(handle).ok_or("unknown stream handle")?;
        if !cursor.write {
            return Err("write to a readable stream".to_string());
        }
        if cursor.pos >= cursor.addrs.len() {
            return Err("stream write beyond the end of its pattern".to_string());
        }
        let addr = cursor.addrs[cursor.pos];
        if cursor.f32 {
            self.write_f32(addr, val.as_f32()?)?;
        } else {
            self.write_f64(addr, val.as_f64()?)?;
        }
        self.streams[handle].pos += 1;
        Ok(())
    }
}

/// Execution semantics for one operation.
///
/// Handlers read operands through [`Interpreter::get`], write results
/// through [`Interpreter::set`] and recurse into nested regions via the
/// [`ExecRegistry`].
pub type Handler = fn(&mut Interpreter, &Context, &ExecRegistry, OpId) -> Result<Flow, InterpError>;

/// Maps operation names to execution semantics, mirroring how the
/// [`crate::registry::DialectRegistry`] maps them to verifiers.
#[derive(Default)]
pub struct ExecRegistry {
    handlers: HashMap<String, Handler>,
}

impl std::fmt::Debug for ExecRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.handlers.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("ExecRegistry").field("ops", &names).finish()
    }
}

impl ExecRegistry {
    /// Creates an empty registry.
    pub fn new() -> ExecRegistry {
        ExecRegistry::default()
    }

    /// Registers execution semantics for the operation `name`.
    pub fn register(&mut self, name: impl Into<String>, handler: Handler) {
        self.handlers.insert(name.into(), handler);
    }

    /// Whether semantics are registered for `name`.
    pub fn has(&self, name: &str) -> bool {
        self.handlers.contains_key(name)
    }

    /// Executes one operation.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] for unregistered ops, exhausted fuel or
    /// any failure inside the handler.
    pub fn run_op(
        &self,
        it: &mut Interpreter,
        ctx: &Context,
        op: OpId,
    ) -> Result<Flow, InterpError> {
        if it.fuel == 0 {
            return Err(InterpError::at(op, "interpreter fuel exhausted"));
        }
        it.fuel -= 1;
        let name = &ctx.op(op).name;
        match self.handlers.get(name) {
            Some(handler) => handler(it, ctx, self, op),
            None => {
                Err(InterpError::at(op, format!("no execution semantics registered for `{name}`")))
            }
        }
    }

    /// Executes the operations of `block` in order, stopping early when
    /// one branches or returns.
    ///
    /// # Errors
    ///
    /// Propagates the first handler error.
    pub fn run_block(
        &self,
        it: &mut Interpreter,
        ctx: &Context,
        block: BlockId,
    ) -> Result<Flow, InterpError> {
        for &op in &ctx.block_ops(block).to_vec() {
            match self.run_op(it, ctx, op)? {
                Flow::Continue => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Continue)
    }

    /// Executes an unstructured control-flow region: starts at the first
    /// block and follows branches until a return.
    ///
    /// # Errors
    ///
    /// Propagates handler errors; a block falling through without a
    /// branch or return is an error.
    pub fn run_cfg(
        &self,
        it: &mut Interpreter,
        ctx: &Context,
        region: RegionId,
    ) -> Result<(), InterpError> {
        let blocks = ctx.region_blocks(region);
        let Some(&entry) = blocks.first() else {
            return Ok(());
        };
        let mut current = entry;
        loop {
            match self.run_block(it, ctx, current)? {
                Flow::Branch(next) => current = next,
                Flow::Return => return Ok(()),
                Flow::Continue => {
                    return Err(InterpError {
                        op: None,
                        message: "control fell off the end of a block without a terminator branch"
                            .to_string(),
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OpSpec;

    #[test]
    fn memory_round_trip_and_errors() {
        let mut it = Interpreter::new();
        it.write_f64(TCDM_BASE + 16, 2.5).unwrap();
        assert_eq!(it.read_f64(TCDM_BASE + 16).unwrap(), 2.5);
        it.write_f32(TCDM_BASE + 4, 1.5).unwrap();
        assert_eq!(it.read_f32(TCDM_BASE + 4).unwrap(), 1.5);
        let err = it.read_f64(TCDM_BASE - 8).unwrap_err();
        assert!(err.contains("outside TCDM"), "{err}");
        let err = it.read_f64(TCDM_BASE + 4).unwrap_err();
        assert!(err.contains("misaligned"), "{err}");
        let err = it.read_f64(TCDM_BASE + TCDM_SIZE as u32 - 4).unwrap_err();
        assert!(err.contains("outside TCDM"), "{err}");
    }

    #[test]
    fn slice_helpers_round_trip() {
        let mut it = Interpreter::new();
        it.write_f64_slice(TCDM_BASE, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(it.read_f64_slice(TCDM_BASE, 3).unwrap(), vec![1.0, 2.0, 3.0]);
        it.write_f32_slice(TCDM_BASE + 64, &[4.0, 5.0]).unwrap();
        assert_eq!(it.read_f32_slice(TCDM_BASE + 64, 2).unwrap(), vec![4.0, 5.0]);
        assert!(it.write_f64_slice(u32::MAX - 7, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut it = Interpreter::new();
        it.set_x(IntReg::ZERO, 42);
        assert_eq!(it.get_x(IntReg::ZERO), 0);
        it.set_x(IntReg::a(0), 42);
        assert_eq!(it.get_x(IntReg::a(0)), 42);
    }

    #[test]
    fn stream_mover_matches_pattern_offsets() {
        let pattern = crate::StreamPattern::from_logical(vec![3, 4], vec![8, 40], 1);
        let mut m = StreamMover::default();
        for (d, (&ub, &st)) in pattern.ub.iter().zip(&pattern.strides).enumerate() {
            m.configure(SsrCfgReg::Bound(d as u8), ub as u32 - 1);
            m.configure(SsrCfgReg::Stride(d as u8), st as u32);
        }
        m.configure(SsrCfgReg::Repeat, pattern.repeat as u32);
        m.configure(SsrCfgReg::RPtr(pattern.rank() as u8 - 1), 0);
        for expect in pattern.offsets() {
            assert_eq!(m.next_addr(StreamDirection::Read).unwrap() as i64, expect);
        }
        assert!(m.next_addr(StreamDirection::Read).is_err());
    }

    #[test]
    fn fp_reads_pop_read_streams_and_writes_push() {
        let mut it = Interpreter::new();
        it.write_f64_slice(TCDM_BASE, &[1.0, 2.0]).unwrap();
        it.movers[0].configure(SsrCfgReg::Bound(0), 1);
        it.movers[0].configure(SsrCfgReg::Stride(0), 8);
        it.movers[0].configure(SsrCfgReg::RPtr(0), TCDM_BASE);
        it.movers[2].configure(SsrCfgReg::Bound(0), 1);
        it.movers[2].configure(SsrCfgReg::Stride(0), 8);
        it.movers[2].configure(SsrCfgReg::WPtr(0), TCDM_BASE + 64);
        it.ssr_enabled = true;
        let a = f64::from_bits(it.read_fp_reg(FpReg::ft(0)).unwrap());
        let b = f64::from_bits(it.read_fp_reg(FpReg::ft(0)).unwrap());
        it.write_fp_reg(FpReg::ft(2), (a + b).to_bits()).unwrap();
        it.write_fp_reg(FpReg::ft(2), 9.0f64.to_bits()).unwrap();
        assert_eq!(it.read_f64_slice(TCDM_BASE + 64, 2).unwrap(), vec![3.0, 9.0]);
        // Exhausted stream faults instead of falling back to the register.
        assert!(it.read_fp_reg(FpReg::ft(0)).is_err());
        // Reading the *write*-armed register falls through to the file.
        it.movers[2].configure(SsrCfgReg::WPtr(0), TCDM_BASE + 96);
        it.f[2] = 7.0f64.to_bits();
        assert_eq!(it.read_fp_reg(FpReg::ft(2)).unwrap(), 7.0f64.to_bits());
        // With streaming disabled everything is a plain register.
        it.ssr_enabled = false;
        it.f[0] = 5.0f64.to_bits();
        assert_eq!(it.read_fp_reg(FpReg::ft(0)).unwrap(), 5.0f64.to_bits());
    }

    #[test]
    fn bind_elides_same_register_moves() {
        let mut ctx = Context::new();
        let m = ctx.create_detached_op(OpSpec::new("t.module").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        let reg = Type::FpRegister(Some(FpReg::ft(0)));
        let src = ctx.append_op(b, OpSpec::new("t.a").results(vec![reg.clone()]));
        let dst = ctx.append_op(b, OpSpec::new("t.b").results(vec![reg]));
        let (sv, dv) = (ctx.op(src).results[0], ctx.op(dst).results[0]);

        let mut it = Interpreter::new();
        it.write_f64_slice(TCDM_BASE, &[1.0]).unwrap();
        it.movers[0].configure(SsrCfgReg::Bound(0), 0);
        it.movers[0].configure(SsrCfgReg::Stride(0), 8);
        it.movers[0].configure(SsrCfgReg::RPtr(0), TCDM_BASE);
        it.ssr_enabled = true;
        // Same register on both sides: no move is emitted, so binding must
        // not pop the stream.
        it.bind(&ctx, dv, sv).unwrap();
        assert_eq!(f64::from_bits(it.read_fp_reg(FpReg::ft(0)).unwrap()), 1.0);
    }

    #[test]
    fn stream_cursors_pop_and_push() {
        let mut it = Interpreter::new();
        it.write_f64_slice(TCDM_BASE, &[1.0, 2.0]).unwrap();
        let r = it.open_stream(vec![TCDM_BASE, TCDM_BASE + 8], false, false);
        let w = it.open_stream(vec![TCDM_BASE + 32], true, false);
        assert_eq!(it.stream_pop(r).unwrap(), Value::F64(1.0));
        it.stream_push(w, Value::F64(4.0)).unwrap();
        assert_eq!(it.read_f64(TCDM_BASE + 32).unwrap(), 4.0);
        assert!(it.stream_push(w, Value::F64(5.0)).is_err());
        assert!(it.stream_pop(w).is_err());
        assert_eq!(it.stream_pop(r).unwrap(), Value::F64(2.0));
        assert!(it.stream_pop(r).is_err());
    }

    #[test]
    fn registry_reports_missing_semantics_and_fuel() {
        let mut ctx = Context::new();
        let m = ctx.create_detached_op(OpSpec::new("t.module").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        let op = ctx.append_op(b, OpSpec::new("t.mystery"));
        let reg = ExecRegistry::new();
        let mut it = Interpreter::new();
        let err = reg.run_op(&mut it, &ctx, op).unwrap_err();
        assert!(err.message.contains("no execution semantics"), "{err}");
        it.fuel = 0;
        let err = reg.run_op(&mut it, &ctx, op).unwrap_err();
        assert!(err.message.contains("fuel"), "{err}");
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(3).as_int().unwrap(), 3);
        assert_eq!(Value::F64(2.0).as_bits().unwrap(), 2.0f64.to_bits());
        let boxed = Value::F32(1.5).as_bits().unwrap();
        assert_eq!(boxed >> 32, 0xFFFF_FFFF);
        assert_eq!(f32::from_bits(boxed as u32), 1.5);
        assert_eq!(Value::Bits(2.0f64.to_bits()).as_f64().unwrap(), 2.0);
        assert_eq!(Value::Bits(1.5f32.to_bits() as u64).as_f32().unwrap(), 1.5);
        assert!(Value::F64(1.0).as_int().is_err());
        assert!(Value::Int(1).as_stream().is_err());
    }
}
