//! Source-location provenance for operations.
//!
//! Every [`crate::Operation`] carries a [`Location`] describing where it
//! came from: a `file:line` position for operations parsed from textual
//! IR, or a fused location naming the rewrite pattern that created the
//! operation together with the source position of the matched root
//! operation. The greedy rewrite drivers propagate locations
//! automatically (see [`crate::rewrite`]), so provenance survives the
//! whole lowering pipeline and per-instruction profiles can attribute
//! simulated cycles back to source operations.

use std::fmt;
use std::sync::Arc;

/// Provenance of an operation.
///
/// The textual form round-trips through the printer/parser as a
/// `loc(...)` trailer after an operation's type signature:
///
/// - `loc("matmul.mlir":4)` — [`Location::File`]
/// - `loc(fused<"convert-to-rv">["matmul.mlir":4])` — [`Location::Fused`]
///
/// Operations without provenance print no trailer at all, which keeps
/// location-free IR byte-identical to what the printer emitted before
/// locations existed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub enum Location {
    /// No known provenance (the default for programmatically built IR).
    #[default]
    Unknown,
    /// A position in a textual IR source file.
    File {
        /// Source file name.
        file: Arc<str>,
        /// 1-based line number.
        line: u32,
    },
    /// Created by a rewrite pattern from an operation at `base`.
    Fused {
        /// Diagnostic name of the rewrite pattern.
        pattern: Arc<str>,
        /// Location of the matched root operation.
        base: Arc<Location>,
    },
}

impl Location {
    /// A `file:line` location.
    pub fn file(file: impl Into<Arc<str>>, line: u32) -> Location {
        Location::File { file: file.into(), line }
    }

    /// A location derived by the rewrite pattern `pattern` from an
    /// operation located at `base`.
    ///
    /// Fusion chains are collapsed: the result records the *source*
    /// position underlying `base` (looking through earlier fusions) and
    /// only the most recent pattern, so locations stay bounded no matter
    /// how many rewrites an operation's lineage passes through.
    pub fn fused(pattern: impl Into<Arc<str>>, base: &Location) -> Location {
        Location::Fused { pattern: pattern.into(), base: Arc::new(base.source().clone()) }
    }

    /// Whether this location carries any provenance.
    pub fn is_known(&self) -> bool {
        !matches!(self, Location::Unknown)
    }

    /// The underlying source location, looking through fusions.
    pub fn source(&self) -> &Location {
        match self {
            Location::Fused { base, .. } => base.source(),
            other => other,
        }
    }

    /// A `file:line` label for the underlying source position, if known.
    pub fn source_label(&self) -> Option<String> {
        match self.source() {
            Location::File { file, line } => Some(format!("{file}:{line}")),
            _ => None,
        }
    }
}

impl fmt::Display for Location {
    /// Prints the *body* of the textual form (without the `loc(...)`
    /// wrapper, which the printer adds).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Unknown => f.write_str("unknown"),
            Location::File { file, line } => write!(f, "\"{file}\":{line}"),
            Location::Fused { pattern, base } => write!(f, "fused<\"{pattern}\">[{base}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_collapses_chains_to_the_source_position() {
        let src = Location::file("k.mlir", 7);
        let once = Location::fused("convert-to-rv", &src);
        let twice = Location::fused("rv-peephole", &once);
        assert_eq!(once.source(), &src);
        assert_eq!(twice.source(), &src);
        match &twice {
            Location::Fused { pattern, base } => {
                assert_eq!(&**pattern, "rv-peephole");
                assert_eq!(&**base, &src, "intermediate fusion layer must collapse");
            }
            other => panic!("expected fused location, got {other:?}"),
        }
        assert_eq!(twice.source_label().as_deref(), Some("k.mlir:7"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Location::Unknown.to_string(), "unknown");
        assert_eq!(Location::file("a.mlir", 3).to_string(), "\"a.mlir\":3");
        assert_eq!(
            Location::fused("p", &Location::file("a.mlir", 3)).to_string(),
            "fused<\"p\">[\"a.mlir\":3]"
        );
        assert!(!Location::Unknown.is_known());
        assert!(Location::file("a", 1).is_known());
        assert_eq!(Location::fused("p", &Location::Unknown).source_label(), None);
    }
}
