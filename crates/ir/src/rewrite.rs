//! Greedy rewrite-pattern application and dead-code elimination.
//!
//! The paper's "small, self-contained passes" (Section 3.4) are expressed
//! as [`RewritePattern`]s applied to a fixpoint by
//! [`apply_patterns_greedily`], the same work-horse as MLIR's greedy
//! pattern driver.
//!
//! The default driver is worklist-based: it seeds the worklist from a
//! single walk, then re-enqueues only the operations a rewrite could
//! have affected, using the [`IrChange`] journal recorded by [`Context`]
//! mutation APIs. Patterns are indexed by their
//! [`RewritePattern::anchor_names`] so only applicable patterns run per
//! op, and trivially-dead ops are erased incrementally from per-value
//! use counts instead of whole-region sweeps. The previous
//! re-walk-everything driver is kept behind [`DriverMode::LegacyRewalk`]
//! as a reference semantics for differential testing and as the baseline
//! for `mlbc bench-json`.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use crate::context::{Context, IrChange, OpId};
use crate::location::Location;
use crate::registry::DialectRegistry;

/// A local rewrite anchored on a single operation.
pub trait RewritePattern {
    /// Diagnostic name of the pattern.
    fn name(&self) -> &'static str;

    /// Operation names this pattern can anchor on, or `None` to be
    /// tried on every operation. The worklist driver uses this to index
    /// patterns so an op only sees patterns that can match it.
    fn anchor_names(&self) -> Option<&'static [&'static str]> {
        None
    }

    /// Attempts to match `op` and rewrite the IR around it.
    ///
    /// Returns `true` if the IR changed. Patterns may erase `op` or its
    /// neighbours freely — they must simply not touch already-erased
    /// operations, and must mutate operand lists through
    /// [`Context::push_operand`] / [`Context::set_operand`] /
    /// [`Context::replace_all_uses`] so the driver's change journal and
    /// use counts stay consistent.
    fn match_and_rewrite(&self, ctx: &mut Context, registry: &DialectRegistry, op: OpId) -> bool;
}

/// Per-op rewrite budget of the driver before it reports divergence.
const MAX_ITERATIONS: usize = 1000;

/// Which fixpoint driver [`apply_patterns_greedily`] runs.
///
/// Driver selection is an explicit per-[`Context`] property (see
/// [`Context::set_driver_mode`]), not ambient thread or process state:
/// two threads compiling concurrently with different drivers cannot
/// bleed into each other, which is what makes the pass pipeline
/// re-entrant enough for the compile service to schedule requests over
/// a worker pool.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriverMode {
    /// The worklist driver (default): journal-directed re-enqueueing,
    /// anchor-indexed patterns, incremental DCE.
    #[default]
    Worklist,
    /// The original driver: re-walk the whole module after every
    /// changed sweep, try every pattern on every op, and run a
    /// full-region DCE sweep per iteration. Kept as the reference
    /// semantics for equivalence tests and perf baselines.
    LegacyRewalk,
}

/// Error returned when the greedy driver fails to reach a fixpoint,
/// identifying the pattern that kept "changing" without progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceError {
    /// Iterations attempted before giving up.
    pub iterations: usize,
    /// Name of the last pattern that reported a change, if any (the
    /// usual culprit of a rewrite ping-pong).
    pub last_pattern: Option<&'static str>,
    /// Name of the operation that pattern anchored on.
    pub last_op: Option<String>,
}

impl fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rewrite driver did not converge after {} iterations", self.iterations)?;
        match (&self.last_pattern, &self.last_op) {
            (Some(pattern), Some(op)) => {
                write!(f, "; last change by pattern `{pattern}` anchored on `{op}`")
            }
            _ => write!(f, "; only dead-code elimination kept reporting changes"),
        }
    }
}

impl std::error::Error for ConvergenceError {}

/// Applies `patterns` to every operation under `root` until fixpoint,
/// interleaving dead-code elimination. Returns the total number of
/// successful pattern applications.
///
/// Dispatches to the worklist driver or the legacy re-walk driver
/// according to [`Context::driver_mode`]; both reach the same fixpoint for
/// confluent pattern sets (asserted stage-by-stage by the driver
/// equivalence test over the kernel suite).
///
/// # Errors
///
/// Returns a [`ConvergenceError`] if the rewrite does not converge
/// within an iteration budget (which indicates a pattern that keeps
/// "changing" without progress), naming the last pattern that reported a
/// change and the operation it anchored on.
pub fn apply_patterns_greedily(
    ctx: &mut Context,
    registry: &DialectRegistry,
    root: OpId,
    patterns: &[&dyn RewritePattern],
) -> Result<usize, ConvergenceError> {
    match ctx.driver_mode() {
        DriverMode::Worklist => apply_patterns_worklist(ctx, registry, root, patterns),
        DriverMode::LegacyRewalk => apply_patterns_rewalk(ctx, registry, root, patterns),
    }
}

/// Patterns indexed by anchor op name, preserving declaration order.
struct PatternIndex {
    by_name: HashMap<&'static str, Vec<usize>>,
    /// Patterns with no declared anchors, tried on every op.
    generic: Vec<usize>,
}

impl PatternIndex {
    fn new(patterns: &[&dyn RewritePattern]) -> PatternIndex {
        let mut by_name: HashMap<&'static str, Vec<usize>> = HashMap::new();
        let mut generic = Vec::new();
        for (i, pattern) in patterns.iter().enumerate() {
            match pattern.anchor_names() {
                Some(names) => {
                    for &name in names {
                        by_name.entry(name).or_default().push(i);
                    }
                }
                None => generic.push(i),
            }
        }
        PatternIndex { by_name, generic }
    }

    /// Collects the pattern indices applicable to an op named `name`
    /// into `out`, in declaration order (both source lists are already
    /// ascending, so this is a two-way merge).
    fn candidates(&self, name: &str, out: &mut Vec<usize>) {
        out.clear();
        let named: &[usize] = self.by_name.get(name).map_or(&[], Vec::as_slice);
        let (mut i, mut j) = (0, 0);
        while i < named.len() && j < self.generic.len() {
            if named[i] < self.generic[j] {
                out.push(named[i]);
                i += 1;
            } else {
                out.push(self.generic[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&named[i..]);
        out.extend_from_slice(&self.generic[j..]);
    }

    /// Whether any pattern can anchor on an op named `name`.
    fn has_candidates(&self, name: &str) -> bool {
        !self.generic.is_empty() || self.by_name.contains_key(name)
    }
}

/// Whether `op` is pure, pin-free and result-unused — erasable by DCE.
fn is_trivially_dead(ctx: &Context, registry: &DialectRegistry, op: OpId) -> bool {
    if !registry.is_pure(&ctx.op(op).name) {
        return false;
    }
    let results = &ctx.op(op).results;
    // A result pinned to a physical register has out-of-band semantics
    // (e.g. an FPU op targeting a stream register writes memory through
    // the SSR): never erase those.
    if results.iter().any(|&r| ctx.value_type(r).is_allocated_register()) {
        return false;
    }
    results.iter().all(|&r| !ctx.has_uses(r))
}

/// Re-enqueues every op the journalled changes could have affected:
/// created ops and their operand definers, definers and remaining users
/// of values released by an erase, both sides of a use replacement,
/// ops whose operand lists or positions changed, and definers/users of
/// retyped values.
fn drain_changes(
    ctx: &mut Context,
    queue: &mut VecDeque<OpId>,
    queued: &mut HashSet<OpId>,
    stamp: Option<&Location>,
) {
    let changes = ctx.journal_drain();
    if changes.is_empty() {
        return;
    }
    if let Some(loc) = stamp {
        stamp_created(ctx, &changes, loc);
    }
    let mut pending: Vec<OpId> = Vec::new();
    for change in &changes {
        match change {
            IrChange::Created(op) => {
                pending.push(*op);
                if ctx.is_alive(*op) {
                    for &v in &ctx.op(*op).operands {
                        pending.extend(ctx.defining_op(v));
                    }
                }
            }
            IrChange::Erased { released } => {
                for &v in released {
                    pending.extend(ctx.defining_op(v));
                    pending.extend_from_slice(ctx.user_ops(v));
                }
            }
            IrChange::ReplacedUses { old, new } => {
                pending.extend(ctx.defining_op(*old));
                pending.extend(ctx.defining_op(*new));
                pending.extend_from_slice(ctx.user_ops(*new));
            }
            IrChange::OperandsChanged { op, released } => {
                pending.push(*op);
                for &v in released {
                    pending.extend(ctx.defining_op(v));
                }
                if ctx.is_alive(*op) {
                    for &r in &ctx.op(*op).results {
                        pending.extend_from_slice(ctx.user_ops(r));
                    }
                }
            }
            IrChange::Moved(op) => {
                if ctx.is_alive(*op) {
                    pending.push(*op);
                    pending.extend(ctx.parent_op(*op));
                }
            }
            IrChange::TypeChanged(v) => {
                pending.extend(ctx.defining_op(*v));
                pending.extend_from_slice(ctx.user_ops(*v));
            }
        }
    }
    let mut requeued = 0;
    for op in pending {
        if ctx.is_alive(op) && queued.insert(op) {
            queue.push_back(op);
            requeued += 1;
        }
    }
    ctx.rewrite_stats.requeued += requeued;
}

/// Stamps `loc` onto every still-alive operation the journalled changes
/// created that has no provenance of its own. This is how locations flow
/// through rewrites: a pattern never sets them explicitly, the driver
/// derives them from the matched root operation.
fn stamp_created(ctx: &mut Context, changes: &[IrChange], loc: &Location) {
    if !loc.is_known() {
        return;
    }
    for change in changes {
        if let IrChange::Created(op) = change {
            if ctx.is_alive(*op) && !ctx.loc(*op).is_known() {
                ctx.set_loc(*op, loc.clone());
            }
        }
    }
}

/// The worklist driver (see [`DriverMode::Worklist`]).
fn apply_patterns_worklist(
    ctx: &mut Context,
    registry: &DialectRegistry,
    root: OpId,
    patterns: &[&dyn RewritePattern],
) -> Result<usize, ConvergenceError> {
    let index = PatternIndex::new(patterns);
    let walk = ctx.walk(root);
    // Global application budget for cross-op ping-pongs that keep
    // minting fresh ops (the per-op counter cannot see those).
    let budget = MAX_ITERATIONS.saturating_mul(walk.len().max(1));
    // Anchor-filtered seeding: enqueue an op only if some pattern can
    // anchor on it, or it is already trivially dead (pre-existing dead
    // ops are the incremental DCE's responsibility). Op names are
    // immutable, so a skipped op can only become relevant through a
    // journalled change, which re-enqueues it.
    let seed: Vec<OpId> = walk
        .into_iter()
        .filter(|&op| {
            index.has_candidates(&ctx.op(op).name) || is_trivially_dead(ctx, registry, op)
        })
        .collect();
    let mut queued: HashSet<OpId> = seed.iter().copied().collect();
    let mut queue: VecDeque<OpId> = seed.into();
    let mut apply_counts: HashMap<OpId, usize> = HashMap::new();
    let mut candidates: Vec<usize> = Vec::new();
    let mut total = 0;
    ctx.journal_begin();
    while let Some(op) = queue.pop_front() {
        queued.remove(&op);
        if !ctx.is_alive(op) {
            continue;
        }
        ctx.rewrite_stats.ops_visited += 1;
        if is_trivially_dead(ctx, registry, op) {
            ctx.erase_op(op);
            ctx.rewrite_stats.dce_erased += 1;
            drain_changes(ctx, &mut queue, &mut queued, None);
            continue;
        }
        // Captured before any pattern runs: a rewrite may erase the
        // anchor, but ops it creates still derive provenance from it.
        let anchor_loc = ctx.loc(op).clone();
        index.candidates(&ctx.op(op).name, &mut candidates);
        for &pi in &candidates {
            if !ctx.is_alive(op) {
                break;
            }
            let pattern = patterns[pi];
            ctx.rewrite_stats.match_attempts += 1;
            if pattern.match_and_rewrite(ctx, registry, op) {
                total += 1;
                ctx.rewrite_stats.pattern_applications += 1;
                // Only known anchors propagate: location-free IR must
                // stay location-free through every rewrite.
                let derived =
                    anchor_loc.is_known().then(|| Location::fused(pattern.name(), &anchor_loc));
                drain_changes(ctx, &mut queue, &mut queued, derived.as_ref());
                let count = apply_counts.entry(op).or_insert(0);
                *count += 1;
                if *count >= MAX_ITERATIONS || total >= budget {
                    let anchored = if ctx.is_alive(op) {
                        ctx.op(op).name.clone()
                    } else {
                        "<erased op>".to_string()
                    };
                    ctx.journal_end();
                    return Err(ConvergenceError {
                        iterations: MAX_ITERATIONS,
                        last_pattern: Some(pattern.name()),
                        last_op: Some(anchored),
                    });
                }
                // Revisit the rewritten anchor with a fresh match.
                if ctx.is_alive(op) && queued.insert(op) {
                    queue.push_back(op);
                    ctx.rewrite_stats.requeued += 1;
                }
                break;
            }
        }
        // Catch mutations from patterns that changed IR but reported no
        // match — their effects must still re-enqueue dependents.
        drain_changes(ctx, &mut queue, &mut queued, Some(&anchor_loc));
    }
    ctx.journal_end();
    Ok(total)
}

/// The original re-walk driver (see [`DriverMode::LegacyRewalk`]).
///
/// Journals only to propagate locations: created ops are stamped with
/// the same fused location the worklist driver would derive, so both
/// drivers produce identical provenance (asserted by the driver
/// equivalence tests through the printed `loc(...)` trailers).
fn apply_patterns_rewalk(
    ctx: &mut Context,
    registry: &DialectRegistry,
    root: OpId,
    patterns: &[&dyn RewritePattern],
) -> Result<usize, ConvergenceError> {
    ctx.journal_begin();
    let result = rewalk_fixpoint(ctx, registry, root, patterns);
    ctx.journal_end();
    result
}

fn rewalk_fixpoint(
    ctx: &mut Context,
    registry: &DialectRegistry,
    root: OpId,
    patterns: &[&dyn RewritePattern],
) -> Result<usize, ConvergenceError> {
    let mut total = 0;
    let mut last_pattern: Option<&'static str> = None;
    let mut last_op: Option<String> = None;
    for _ in 0..MAX_ITERATIONS {
        let mut changed = false;
        let worklist = ctx.walk(root);
        for op in worklist {
            if !ctx.is_alive(op) {
                continue;
            }
            ctx.rewrite_stats.ops_visited += 1;
            let anchor_loc = ctx.loc(op).clone();
            for pattern in patterns {
                if !ctx.is_alive(op) {
                    break;
                }
                ctx.rewrite_stats.match_attempts += 1;
                if pattern.match_and_rewrite(ctx, registry, op) {
                    changed = true;
                    total += 1;
                    ctx.rewrite_stats.pattern_applications += 1;
                    let changes = ctx.journal_drain();
                    if anchor_loc.is_known() {
                        let derived = Location::fused(pattern.name(), &anchor_loc);
                        stamp_created(ctx, &changes, &derived);
                    }
                    last_pattern = Some(pattern.name());
                    last_op = Some(if ctx.is_alive(op) {
                        ctx.op(op).name.clone()
                    } else {
                        "<erased op>".to_string()
                    });
                }
            }
            // Mutations from patterns that reported no match still
            // inherit the anchor's provenance, as in the worklist driver.
            let changes = ctx.journal_drain();
            stamp_created(ctx, &changes, &anchor_loc);
        }
        changed |= legacy_dce_fixpoint(ctx, registry, root) > 0;
        ctx.journal_drain(); // discard DCE erase records
        if !changed {
            return Ok(total);
        }
    }
    Err(ConvergenceError { iterations: MAX_ITERATIONS, last_pattern, last_op })
}

/// Dead-code elimination exactly as the re-walk driver ran it: full
/// reverse-pre-order sweeps of the whole region repeated to a fixpoint,
/// so an erasure chain of depth `k` costs `k + 1` module-sized sweeps.
/// Every examined op is counted as driver work in `ops_visited` — this
/// interleaved sweeping is precisely the cost the worklist driver's
/// incremental use-count DCE avoids. The erased set (and therefore the
/// resulting IR) is identical to [`eliminate_dead_code`]'s single pass;
/// only the work spent reaching it differs.
fn legacy_dce_fixpoint(ctx: &mut Context, registry: &DialectRegistry, root: OpId) -> usize {
    let mut erased = 0;
    loop {
        let mut changed = false;
        let mut ops = ctx.walk(root);
        ops.reverse();
        for op in ops {
            if !ctx.is_alive(op) {
                continue;
            }
            ctx.rewrite_stats.ops_visited += 1;
            if !is_trivially_dead(ctx, registry, op) {
                continue;
            }
            ctx.erase_op(op);
            erased += 1;
            ctx.rewrite_stats.dce_erased += 1;
            changed = true;
        }
        if !changed {
            return erased;
        }
    }
}

/// Erases pure operations whose results are all unused. A single true
/// post-order pass (nested regions before their parent op, reverse
/// statement order within blocks) visits every user before its
/// producers, and erasures cascade into newly-unused producers via the
/// released operand values — no fixpoint rounds. Returns the number of
/// erased operations (a wholesale-erased subtree counts once).
pub fn eliminate_dead_code(ctx: &mut Context, registry: &DialectRegistry, root: OpId) -> usize {
    let mut order = Vec::new();
    dce_postorder(ctx, root, &mut order);
    let mut erased = 0;
    let mut stack: Vec<OpId> = Vec::new();
    for op in order {
        stack.push(op);
        while let Some(op) = stack.pop() {
            if !ctx.is_alive(op) || !is_trivially_dead(ctx, registry, op) {
                continue;
            }
            let released = ctx.erase_op_collecting(op);
            erased += 1;
            ctx.rewrite_stats.dce_erased += 1;
            for v in released {
                if let Some(def) = ctx.defining_op(v) {
                    if ctx.is_alive(def) {
                        stack.push(def);
                    }
                }
            }
        }
    }
    erased
}

/// Appends the ops under `root` in users-before-producers order: each
/// block's ops reversed, with an op's nested regions visited before the
/// op itself.
fn dce_postorder(ctx: &Context, root: OpId, out: &mut Vec<OpId>) {
    for &r in &ctx.op(root).regions {
        for &b in ctx.region_blocks(r) {
            for &o in ctx.block_ops(b).iter().rev() {
                dce_postorder(ctx, o, out);
                out.push(o);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::context::OpSpec;
    use crate::registry::OpInfo;
    use crate::types::Type;

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        r.register(OpInfo::new("t.module"));
        r.register(OpInfo::new("t.const").pure());
        r.register(OpInfo::new("t.add").pure());
        r.register(OpInfo::new("t.double").pure());
        r.register(OpInfo::new("t.use"));
        r
    }

    fn module(ctx: &mut Context) -> (OpId, crate::context::BlockId) {
        let m = ctx.create_detached_op(OpSpec::new("t.module").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        (m, b)
    }

    /// Rewrites `t.double(x)` into `t.add(x, x)`.
    struct DoubleToAdd;
    impl RewritePattern for DoubleToAdd {
        fn name(&self) -> &'static str {
            "double-to-add"
        }
        fn match_and_rewrite(
            &self,
            ctx: &mut Context,
            _registry: &DialectRegistry,
            op: OpId,
        ) -> bool {
            if ctx.op(op).name != "t.double" {
                return false;
            }
            let x = ctx.op(op).operands[0];
            let add = ctx.insert_op_before(
                op,
                OpSpec::new("t.add").operands(vec![x, x]).results(vec![Type::F64]),
            );
            let new = ctx.op(add).results[0];
            let old = ctx.op(op).results[0];
            ctx.replace_all_uses(old, new);
            ctx.erase_op(op);
            true
        }
    }

    fn double_module(ctx: &mut Context) -> (OpId, crate::context::BlockId) {
        let (m, b) = module(ctx);
        let c = ctx.append_op(b, OpSpec::new("t.const").results(vec![Type::F64]));
        let v = ctx.op(c).results[0];
        let d =
            ctx.append_op(b, OpSpec::new("t.double").operands(vec![v]).results(vec![Type::F64]));
        let dv = ctx.op(d).results[0];
        ctx.append_op(b, OpSpec::new("t.use").operands(vec![dv]));
        (m, b)
    }

    #[test]
    fn pattern_applies_and_converges() {
        let mut ctx = Context::new();
        let (m, b) = double_module(&mut ctx);
        let n = apply_patterns_greedily(&mut ctx, &registry(), m, &[&DoubleToAdd]).unwrap();
        assert_eq!(n, 1);
        let names: Vec<String> = ctx.block_ops(b).iter().map(|&o| ctx.op(o).name.clone()).collect();
        assert_eq!(names, ["t.const", "t.add", "t.use"]);
        assert!(ctx.verify_structure(m).is_ok());
    }

    #[test]
    fn both_drivers_reach_the_same_fixpoint() {
        for mode in [DriverMode::Worklist, DriverMode::LegacyRewalk] {
            let mut ctx = Context::new();
            ctx.set_driver_mode(mode);
            let (m, b) = double_module(&mut ctx);
            let n = apply_patterns_greedily(&mut ctx, &registry(), m, &[&DoubleToAdd]).unwrap();
            assert_eq!(n, 1, "{mode:?}");
            let names: Vec<String> =
                ctx.block_ops(b).iter().map(|&o| ctx.op(o).name.clone()).collect();
            assert_eq!(names, ["t.const", "t.add", "t.use"], "{mode:?}");
            assert!(ctx.verify_structure(m).is_ok(), "{mode:?}");
        }
    }

    /// Claims a change on every visit of `t.use` without making progress.
    struct PingPong;
    impl RewritePattern for PingPong {
        fn name(&self) -> &'static str {
            "ping-pong"
        }
        fn match_and_rewrite(
            &self,
            ctx: &mut Context,
            _registry: &DialectRegistry,
            op: OpId,
        ) -> bool {
            ctx.op(op).name == "t.use"
        }
    }

    #[test]
    fn divergence_names_the_offending_pattern() {
        for mode in [DriverMode::Worklist, DriverMode::LegacyRewalk] {
            let mut ctx = Context::new();
            ctx.set_driver_mode(mode);
            let (m, b) = module(&mut ctx);
            let c = ctx.append_op(b, OpSpec::new("t.const").results(vec![Type::F64]));
            let v = ctx.op(c).results[0];
            ctx.append_op(b, OpSpec::new("t.use").operands(vec![v]));
            let err = apply_patterns_greedily(&mut ctx, &registry(), m, &[&PingPong]).unwrap_err();
            assert_eq!(err.iterations, 1000, "{mode:?}");
            assert_eq!(err.last_pattern, Some("ping-pong"), "{mode:?}");
            assert_eq!(err.last_op.as_deref(), Some("t.use"), "{mode:?}");
            let msg = err.to_string();
            assert!(msg.contains("did not converge"), "{msg}");
            assert!(msg.contains("ping-pong"), "{msg}");
            assert!(msg.contains("t.use"), "{msg}");
        }
    }

    #[test]
    fn dce_removes_unused_pure_chain() {
        let mut ctx = Context::new();
        let (m, b) = module(&mut ctx);
        let c = ctx.append_op(b, OpSpec::new("t.const").results(vec![Type::F64]));
        let v = ctx.op(c).results[0];
        ctx.append_op(b, OpSpec::new("t.add").operands(vec![v, v]).results(vec![Type::F64]));
        // The add result is unused; the const feeds only the add.
        let erased = eliminate_dead_code(&mut ctx, &registry(), m);
        assert_eq!(erased, 2);
        assert!(ctx.block_ops(b).is_empty());
    }

    #[test]
    fn dce_keeps_impure_and_used_ops() {
        let mut ctx = Context::new();
        let (m, b) = module(&mut ctx);
        let c = ctx.append_op(b, OpSpec::new("t.const").results(vec![Type::F64]));
        let v = ctx.op(c).results[0];
        ctx.append_op(b, OpSpec::new("t.use").operands(vec![v]));
        let erased = eliminate_dead_code(&mut ctx, &registry(), m);
        assert_eq!(erased, 0);
        assert_eq!(ctx.block_ops(b).len(), 2);
    }

    #[test]
    fn dce_erases_nested_region_dead_ops_in_one_pass() {
        // A dead op inside a region keeps a producer *before* the region
        // op alive; true post-order (nested first) must clear both in a
        // single call without fixpoint rounds.
        let mut ctx = Context::new();
        let mut r = registry();
        r.register(OpInfo::new("t.loop"));
        r.register(OpInfo::new("t.yield"));
        let (m, b) = module(&mut ctx);
        let c = ctx.append_op(b, OpSpec::new("t.const").results(vec![Type::F64]));
        let v = ctx.op(c).results[0];
        let l = ctx.append_op(b, OpSpec::new("t.loop").regions(1));
        let lb = ctx.create_block(ctx.op(l).regions[0], vec![]);
        // Dead pure user of %v nested inside the (impure) loop.
        ctx.append_op(lb, OpSpec::new("t.add").operands(vec![v, v]).results(vec![Type::F64]));
        ctx.append_op(lb, OpSpec::new("t.yield"));
        let erased = eliminate_dead_code(&mut ctx, &r, m);
        assert_eq!(erased, 2, "nested add and its const producer in one pass");
        assert!(ctx.walk_named(m, "t.add").is_empty());
        assert!(ctx.walk_named(m, "t.const").is_empty());
        assert!(ctx.verify_structure(m).is_ok());
    }

    /// Anchored pattern: fires on `t.seed` only once its result is down
    /// to a single use, replacing it with `t.single`.
    struct MarkSeedSingleUse;
    impl RewritePattern for MarkSeedSingleUse {
        fn name(&self) -> &'static str {
            "mark-seed-single-use"
        }
        fn anchor_names(&self) -> Option<&'static [&'static str]> {
            Some(&["t.seed"])
        }
        fn match_and_rewrite(
            &self,
            ctx: &mut Context,
            _registry: &DialectRegistry,
            op: OpId,
        ) -> bool {
            // Name check kept for the legacy driver, which ignores
            // anchor_names and tries every pattern on every op.
            if ctx.op(op).name != "t.seed" {
                return false;
            }
            let result = ctx.op(op).results[0];
            if ctx.uses(result).len() != 1 {
                return false;
            }
            let single = ctx.insert_op_before(op, OpSpec::new("t.single").results(vec![Type::F64]));
            let new = ctx.op(single).results[0];
            ctx.replace_all_uses(result, new);
            ctx.erase_op(op);
            true
        }
    }

    fn requeue_registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        r.register(OpInfo::new("t.module"));
        r.register(OpInfo::new("t.nop"));
        r.register(OpInfo::new("t.seed").pure());
        r.register(OpInfo::new("t.single").pure());
        r.register(OpInfo::new("t.wrap").pure());
        r.register(OpInfo::new("t.sink"));
        r
    }

    /// Filler nops, then: `%s = t.seed` used by a dead `t.wrap` and a
    /// live `t.sink`. DCE of the wrap is what enables the anchored seed
    /// pattern — the worklist must pick that up by requeueing the seed,
    /// not by re-walking the module.
    fn requeue_module(ctx: &mut Context, fillers: usize) -> OpId {
        let m = ctx.create_detached_op(OpSpec::new("t.module").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        for _ in 0..fillers {
            ctx.append_op(b, OpSpec::new("t.nop"));
        }
        let seed = ctx.append_op(b, OpSpec::new("t.seed").results(vec![Type::F64]));
        let v = ctx.op(seed).results[0];
        ctx.append_op(b, OpSpec::new("t.wrap").operands(vec![v]).results(vec![Type::F64]));
        ctx.append_op(b, OpSpec::new("t.sink").operands(vec![v]));
        m
    }

    #[test]
    fn worklist_requeues_enabled_match_without_rewalk() {
        const FILLERS: usize = 60;
        let r = requeue_registry();

        let mut ctx = Context::new();
        ctx.set_driver_mode(DriverMode::Worklist);
        let m = requeue_module(&mut ctx, FILLERS);
        let before = ctx.rewrite_stats();
        let n = apply_patterns_greedily(&mut ctx, &r, m, &[&MarkSeedSingleUse]).unwrap();
        let stats = ctx.rewrite_stats().delta_since(before);
        assert_eq!(n, 1);
        assert_eq!(ctx.walk_named(m, "t.single").len(), 1);
        assert!(ctx.walk_named(m, "t.seed").is_empty());
        assert!(ctx.walk_named(m, "t.wrap").is_empty());
        assert!(ctx.verify_structure(m).is_ok());
        // Anchor indexing: only the seed op ever attempts a match — once
        // failing (two uses), once succeeding after the wrap is DCE'd.
        assert_eq!(stats.match_attempts, 2, "{stats:?}");
        assert!(stats.requeued >= 1, "seed must be requeued: {stats:?}");
        // No full re-walk: visits stay within seed walk + a few requeues.
        assert!(
            stats.ops_visited <= (FILLERS + 3 + 8) as u64,
            "visited {} ops for a {}-op module",
            stats.ops_visited,
            FILLERS + 3
        );
        assert_eq!(stats.dce_erased, 1);

        // The legacy driver does strictly more deterministic work on the
        // identical input; the worklist's advantage is the point.
        let mut legacy_ctx = Context::new();
        legacy_ctx.set_driver_mode(DriverMode::LegacyRewalk);
        let lm = requeue_module(&mut legacy_ctx, FILLERS);
        let before = legacy_ctx.rewrite_stats();
        let n = apply_patterns_greedily(&mut legacy_ctx, &r, lm, &[&MarkSeedSingleUse]).unwrap();
        let legacy = legacy_ctx.rewrite_stats().delta_since(before);
        assert_eq!(n, 1);
        let work = |s: &crate::context::RewriteStats| s.ops_visited + s.match_attempts;
        assert!(
            work(&legacy) >= 5 * work(&stats),
            "legacy {legacy:?} should be ≥5× worklist {stats:?}"
        );
    }

    #[test]
    fn driver_mode_is_per_context_and_does_not_bleed_across_threads() {
        // Two threads compile the same module with different drivers at
        // the same time; each context must honour its own mode (observed
        // through the work counters: the legacy re-walk driver always
        // visits strictly more ops on this input) and reach the same IR.
        let handles: Vec<_> = [DriverMode::Worklist, DriverMode::LegacyRewalk]
            .into_iter()
            .map(|mode| {
                std::thread::spawn(move || {
                    let r = requeue_registry();
                    let mut ctx = Context::new();
                    ctx.set_driver_mode(mode);
                    assert_eq!(ctx.driver_mode(), mode);
                    let m = requeue_module(&mut ctx, 60);
                    let n =
                        apply_patterns_greedily(&mut ctx, &r, m, &[&MarkSeedSingleUse]).unwrap();
                    assert_eq!(n, 1, "{mode:?}");
                    assert_eq!(ctx.walk_named(m, "t.single").len(), 1, "{mode:?}");
                    ctx.rewrite_stats().ops_visited
                })
            })
            .collect();
        let visited: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(
            visited[1] > 2 * visited[0],
            "legacy ({}) must out-visit worklist ({}) — a shared mode would equalize them",
            visited[1],
            visited[0]
        );
    }

    #[test]
    fn pattern_index_routes_only_anchored_patterns() {
        let patterns: &[&dyn RewritePattern] = &[&MarkSeedSingleUse, &DoubleToAdd, &PingPong];
        let index = PatternIndex::new(patterns);
        let mut out = Vec::new();
        // Anchored + generic merge in declaration order.
        index.candidates("t.seed", &mut out);
        assert_eq!(out, vec![0, 1, 2]);
        // Unanchored names fall back to generic patterns only.
        index.candidates("t.wrap", &mut out);
        assert_eq!(out, vec![1, 2]);
        index.candidates("t.unknown", &mut out);
        assert_eq!(out, vec![1, 2]);
        // With generic patterns present every name has candidates…
        assert!(index.has_candidates("t.unknown"));
        // …while an anchored-only index rejects unanchored names, which
        // is what keeps them out of the seed queue entirely.
        let anchored_only = PatternIndex::new(&[&MarkSeedSingleUse]);
        assert!(anchored_only.has_candidates("t.seed"));
        assert!(!anchored_only.has_candidates("t.unknown"));
    }
}
