//! Greedy rewrite-pattern application and dead-code elimination.
//!
//! The paper's "small, self-contained passes" (Section 3.4) are expressed
//! as [`RewritePattern`]s applied to a fixpoint by
//! [`apply_patterns_greedily`], the same work-horse as MLIR's greedy
//! pattern driver.

use std::fmt;

use crate::context::{Context, OpId};
use crate::registry::DialectRegistry;

/// A local rewrite anchored on a single operation.
pub trait RewritePattern {
    /// Diagnostic name of the pattern.
    fn name(&self) -> &'static str;

    /// Attempts to match `op` and rewrite the IR around it.
    ///
    /// Returns `true` if the IR changed. After a change the driver
    /// re-walks the IR, so patterns may erase `op` or its neighbours
    /// freely — they must simply not touch already-erased operations.
    fn match_and_rewrite(&self, ctx: &mut Context, registry: &DialectRegistry, op: OpId) -> bool;
}

/// Iteration budget of the greedy driver before it reports divergence.
const MAX_ITERATIONS: usize = 1000;

/// Error returned when the greedy driver fails to reach a fixpoint,
/// identifying the pattern that kept "changing" without progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceError {
    /// Iterations attempted before giving up.
    pub iterations: usize,
    /// Name of the last pattern that reported a change, if any (the
    /// usual culprit of a rewrite ping-pong).
    pub last_pattern: Option<&'static str>,
    /// Name of the operation that pattern anchored on.
    pub last_op: Option<String>,
}

impl fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rewrite driver did not converge after {} iterations", self.iterations)?;
        match (&self.last_pattern, &self.last_op) {
            (Some(pattern), Some(op)) => {
                write!(f, "; last change by pattern `{pattern}` anchored on `{op}`")
            }
            _ => write!(f, "; only dead-code elimination kept reporting changes"),
        }
    }
}

impl std::error::Error for ConvergenceError {}

/// Applies `patterns` to every operation under `root` until fixpoint,
/// interleaving dead-code elimination sweeps. Returns the total number of
/// successful pattern applications.
///
/// # Errors
///
/// Returns a [`ConvergenceError`] if the rewrite does not converge
/// within an iteration budget (which indicates a pattern that keeps
/// "changing" without progress), naming the last pattern that reported a
/// change and the operation it anchored on.
pub fn apply_patterns_greedily(
    ctx: &mut Context,
    registry: &DialectRegistry,
    root: OpId,
    patterns: &[&dyn RewritePattern],
) -> Result<usize, ConvergenceError> {
    let mut total = 0;
    let mut last_pattern: Option<&'static str> = None;
    let mut last_op: Option<String> = None;
    for _ in 0..MAX_ITERATIONS {
        let mut changed = false;
        let worklist = ctx.walk(root);
        for op in worklist {
            if !ctx.is_alive(op) {
                continue;
            }
            for pattern in patterns {
                if !ctx.is_alive(op) {
                    break;
                }
                if pattern.match_and_rewrite(ctx, registry, op) {
                    changed = true;
                    total += 1;
                    ctx.rewrite_stats.pattern_applications += 1;
                    last_pattern = Some(pattern.name());
                    last_op = Some(if ctx.is_alive(op) {
                        ctx.op(op).name.clone()
                    } else {
                        "<erased op>".to_string()
                    });
                }
            }
        }
        changed |= eliminate_dead_code(ctx, registry, root) > 0;
        if !changed {
            return Ok(total);
        }
    }
    Err(ConvergenceError { iterations: MAX_ITERATIONS, last_pattern, last_op })
}

/// Erases pure operations whose results are all unused, bottom-up, until
/// fixpoint. Returns the number of erased operations.
pub fn eliminate_dead_code(ctx: &mut Context, registry: &DialectRegistry, root: OpId) -> usize {
    let mut erased = 0;
    loop {
        let mut changed = false;
        // Post-order (reverse pre-order works for straight-line regions):
        // erase users before producers.
        let mut ops = ctx.walk(root);
        ops.reverse();
        for op in ops {
            if !ctx.is_alive(op) {
                continue;
            }
            if !registry.is_pure(&ctx.op(op).name) {
                continue;
            }
            let results = ctx.op(op).results.clone();
            // A result pinned to a physical register has out-of-band
            // semantics (e.g. an FPU op targeting a stream register
            // writes memory through the SSR): never erase those.
            if results.iter().any(|&r| ctx.value_type(r).is_allocated_register()) {
                continue;
            }
            if results.iter().all(|&r| !ctx.has_uses(r)) {
                ctx.erase_op(op);
                erased += 1;
                ctx.rewrite_stats.dce_erased += 1;
                changed = true;
            }
        }
        if !changed {
            return erased;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::context::OpSpec;
    use crate::registry::OpInfo;
    use crate::types::Type;

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        r.register(OpInfo::new("t.module"));
        r.register(OpInfo::new("t.const").pure());
        r.register(OpInfo::new("t.add").pure());
        r.register(OpInfo::new("t.double").pure());
        r.register(OpInfo::new("t.use"));
        r
    }

    fn module(ctx: &mut Context) -> (OpId, crate::context::BlockId) {
        let m = ctx.create_detached_op(OpSpec::new("t.module").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        (m, b)
    }

    /// Rewrites `t.double(x)` into `t.add(x, x)`.
    struct DoubleToAdd;
    impl RewritePattern for DoubleToAdd {
        fn name(&self) -> &'static str {
            "double-to-add"
        }
        fn match_and_rewrite(
            &self,
            ctx: &mut Context,
            _registry: &DialectRegistry,
            op: OpId,
        ) -> bool {
            if ctx.op(op).name != "t.double" {
                return false;
            }
            let x = ctx.op(op).operands[0];
            let add = ctx.insert_op_before(
                op,
                OpSpec::new("t.add").operands(vec![x, x]).results(vec![Type::F64]),
            );
            let new = ctx.op(add).results[0];
            let old = ctx.op(op).results[0];
            ctx.replace_all_uses(old, new);
            ctx.erase_op(op);
            true
        }
    }

    #[test]
    fn pattern_applies_and_converges() {
        let mut ctx = Context::new();
        let (m, b) = module(&mut ctx);
        let c = ctx.append_op(b, OpSpec::new("t.const").results(vec![Type::F64]));
        let v = ctx.op(c).results[0];
        let d =
            ctx.append_op(b, OpSpec::new("t.double").operands(vec![v]).results(vec![Type::F64]));
        let dv = ctx.op(d).results[0];
        ctx.append_op(b, OpSpec::new("t.use").operands(vec![dv]));

        let n = apply_patterns_greedily(&mut ctx, &registry(), m, &[&DoubleToAdd]).unwrap();
        assert_eq!(n, 1);
        let names: Vec<String> = ctx.block_ops(b).iter().map(|&o| ctx.op(o).name.clone()).collect();
        assert_eq!(names, ["t.const", "t.add", "t.use"]);
        assert!(ctx.verify_structure(m).is_ok());
    }

    /// Claims a change on every visit of `t.use` without making progress.
    struct PingPong;
    impl RewritePattern for PingPong {
        fn name(&self) -> &'static str {
            "ping-pong"
        }
        fn match_and_rewrite(
            &self,
            ctx: &mut Context,
            _registry: &DialectRegistry,
            op: OpId,
        ) -> bool {
            ctx.op(op).name == "t.use"
        }
    }

    #[test]
    fn divergence_names_the_offending_pattern() {
        let mut ctx = Context::new();
        let (m, b) = module(&mut ctx);
        let c = ctx.append_op(b, OpSpec::new("t.const").results(vec![Type::F64]));
        let v = ctx.op(c).results[0];
        ctx.append_op(b, OpSpec::new("t.use").operands(vec![v]));
        let err = apply_patterns_greedily(&mut ctx, &registry(), m, &[&PingPong]).unwrap_err();
        assert_eq!(err.iterations, 1000);
        assert_eq!(err.last_pattern, Some("ping-pong"));
        assert_eq!(err.last_op.as_deref(), Some("t.use"));
        let msg = err.to_string();
        assert!(msg.contains("did not converge"), "{msg}");
        assert!(msg.contains("ping-pong"), "{msg}");
        assert!(msg.contains("t.use"), "{msg}");
    }

    #[test]
    fn dce_removes_unused_pure_chain() {
        let mut ctx = Context::new();
        let (m, b) = module(&mut ctx);
        let c = ctx.append_op(b, OpSpec::new("t.const").results(vec![Type::F64]));
        let v = ctx.op(c).results[0];
        ctx.append_op(b, OpSpec::new("t.add").operands(vec![v, v]).results(vec![Type::F64]));
        // The add result is unused; the const feeds only the add.
        let erased = eliminate_dead_code(&mut ctx, &registry(), m);
        assert_eq!(erased, 2);
        assert!(ctx.block_ops(b).is_empty());
    }

    #[test]
    fn dce_keeps_impure_and_used_ops() {
        let mut ctx = Context::new();
        let (m, b) = module(&mut ctx);
        let c = ctx.append_op(b, OpSpec::new("t.const").results(vec![Type::F64]));
        let v = ctx.op(c).results[0];
        ctx.append_op(b, OpSpec::new("t.use").operands(vec![v]));
        let erased = eliminate_dead_code(&mut ctx, &registry(), m);
        assert_eq!(erased, 0);
        assert_eq!(ctx.block_ops(b).len(), 2);
    }
}
