/root/repo/target/release/deps/mlbc-b3e2087576f7514a.d: src/bin/mlbc.rs

/root/repo/target/release/deps/mlbc-b3e2087576f7514a: src/bin/mlbc.rs

src/bin/mlbc.rs:
