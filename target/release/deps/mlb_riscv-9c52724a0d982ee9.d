/root/repo/target/release/deps/mlb_riscv-9c52724a0d982ee9.d: crates/riscv/src/lib.rs crates/riscv/src/emit.rs crates/riscv/src/exec.rs crates/riscv/src/rv.rs crates/riscv/src/rv_cf.rs crates/riscv/src/rv_func.rs crates/riscv/src/rv_scf.rs crates/riscv/src/rv_snitch.rs crates/riscv/src/snitch_stream.rs

/root/repo/target/release/deps/libmlb_riscv-9c52724a0d982ee9.rlib: crates/riscv/src/lib.rs crates/riscv/src/emit.rs crates/riscv/src/exec.rs crates/riscv/src/rv.rs crates/riscv/src/rv_cf.rs crates/riscv/src/rv_func.rs crates/riscv/src/rv_scf.rs crates/riscv/src/rv_snitch.rs crates/riscv/src/snitch_stream.rs

/root/repo/target/release/deps/libmlb_riscv-9c52724a0d982ee9.rmeta: crates/riscv/src/lib.rs crates/riscv/src/emit.rs crates/riscv/src/exec.rs crates/riscv/src/rv.rs crates/riscv/src/rv_cf.rs crates/riscv/src/rv_func.rs crates/riscv/src/rv_scf.rs crates/riscv/src/rv_snitch.rs crates/riscv/src/snitch_stream.rs

crates/riscv/src/lib.rs:
crates/riscv/src/emit.rs:
crates/riscv/src/exec.rs:
crates/riscv/src/rv.rs:
crates/riscv/src/rv_cf.rs:
crates/riscv/src/rv_func.rs:
crates/riscv/src/rv_scf.rs:
crates/riscv/src/rv_snitch.rs:
crates/riscv/src/snitch_stream.rs:
