/root/repo/target/release/deps/mlbe-31e7f545b27ed2f1.d: src/lib.rs src/json.rs

/root/repo/target/release/deps/libmlbe-31e7f545b27ed2f1.rlib: src/lib.rs src/json.rs

/root/repo/target/release/deps/libmlbe-31e7f545b27ed2f1.rmeta: src/lib.rs src/json.rs

src/lib.rs:
src/json.rs:
