/root/repo/target/release/deps/mlb_ir-0ca15b2f92ab2ae5.d: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/attributes.rs crates/ir/src/context.rs crates/ir/src/interp.rs crates/ir/src/observe.rs crates/ir/src/parser.rs crates/ir/src/pass.rs crates/ir/src/printer.rs crates/ir/src/registry.rs crates/ir/src/rewrite.rs crates/ir/src/types.rs

/root/repo/target/release/deps/libmlb_ir-0ca15b2f92ab2ae5.rlib: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/attributes.rs crates/ir/src/context.rs crates/ir/src/interp.rs crates/ir/src/observe.rs crates/ir/src/parser.rs crates/ir/src/pass.rs crates/ir/src/printer.rs crates/ir/src/registry.rs crates/ir/src/rewrite.rs crates/ir/src/types.rs

/root/repo/target/release/deps/libmlb_ir-0ca15b2f92ab2ae5.rmeta: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/attributes.rs crates/ir/src/context.rs crates/ir/src/interp.rs crates/ir/src/observe.rs crates/ir/src/parser.rs crates/ir/src/pass.rs crates/ir/src/printer.rs crates/ir/src/registry.rs crates/ir/src/rewrite.rs crates/ir/src/types.rs

crates/ir/src/lib.rs:
crates/ir/src/affine.rs:
crates/ir/src/attributes.rs:
crates/ir/src/context.rs:
crates/ir/src/interp.rs:
crates/ir/src/observe.rs:
crates/ir/src/parser.rs:
crates/ir/src/pass.rs:
crates/ir/src/printer.rs:
crates/ir/src/registry.rs:
crates/ir/src/rewrite.rs:
crates/ir/src/types.rs:
