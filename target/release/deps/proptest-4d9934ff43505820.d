/root/repo/target/release/deps/proptest-4d9934ff43505820.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4d9934ff43505820.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4d9934ff43505820.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
