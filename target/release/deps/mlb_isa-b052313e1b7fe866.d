/root/repo/target/release/deps/mlb_isa-b052313e1b7fe866.d: crates/isa/src/lib.rs crates/isa/src/regs.rs crates/isa/src/ssr.rs

/root/repo/target/release/deps/libmlb_isa-b052313e1b7fe866.rlib: crates/isa/src/lib.rs crates/isa/src/regs.rs crates/isa/src/ssr.rs

/root/repo/target/release/deps/libmlb_isa-b052313e1b7fe866.rmeta: crates/isa/src/lib.rs crates/isa/src/regs.rs crates/isa/src/ssr.rs

crates/isa/src/lib.rs:
crates/isa/src/regs.rs:
crates/isa/src/ssr.rs:
