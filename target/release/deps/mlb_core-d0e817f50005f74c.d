/root/repo/target/release/deps/mlb_core-d0e817f50005f74c.d: crates/core/src/lib.rs crates/core/src/passes/mod.rs crates/core/src/passes/canonicalize.rs crates/core/src/passes/convert_linalg.rs crates/core/src/passes/convert_to_rv.rs crates/core/src/passes/dce.rs crates/core/src/passes/fuse_fill.rs crates/core/src/passes/loop_opt.rs crates/core/src/passes/lower_streaming.rs crates/core/src/passes/lower_to_loops.rs crates/core/src/passes/mem_forward.rs crates/core/src/passes/peephole.rs crates/core/src/passes/rv_scf_to_cf.rs crates/core/src/passes/rv_scf_to_frep.rs crates/core/src/passes/scalar_replacement.rs crates/core/src/passes/seq_unroll.rs crates/core/src/passes/unroll_and_jam.rs crates/core/src/pipeline.rs crates/core/src/regalloc.rs

/root/repo/target/release/deps/libmlb_core-d0e817f50005f74c.rlib: crates/core/src/lib.rs crates/core/src/passes/mod.rs crates/core/src/passes/canonicalize.rs crates/core/src/passes/convert_linalg.rs crates/core/src/passes/convert_to_rv.rs crates/core/src/passes/dce.rs crates/core/src/passes/fuse_fill.rs crates/core/src/passes/loop_opt.rs crates/core/src/passes/lower_streaming.rs crates/core/src/passes/lower_to_loops.rs crates/core/src/passes/mem_forward.rs crates/core/src/passes/peephole.rs crates/core/src/passes/rv_scf_to_cf.rs crates/core/src/passes/rv_scf_to_frep.rs crates/core/src/passes/scalar_replacement.rs crates/core/src/passes/seq_unroll.rs crates/core/src/passes/unroll_and_jam.rs crates/core/src/pipeline.rs crates/core/src/regalloc.rs

/root/repo/target/release/deps/libmlb_core-d0e817f50005f74c.rmeta: crates/core/src/lib.rs crates/core/src/passes/mod.rs crates/core/src/passes/canonicalize.rs crates/core/src/passes/convert_linalg.rs crates/core/src/passes/convert_to_rv.rs crates/core/src/passes/dce.rs crates/core/src/passes/fuse_fill.rs crates/core/src/passes/loop_opt.rs crates/core/src/passes/lower_streaming.rs crates/core/src/passes/lower_to_loops.rs crates/core/src/passes/mem_forward.rs crates/core/src/passes/peephole.rs crates/core/src/passes/rv_scf_to_cf.rs crates/core/src/passes/rv_scf_to_frep.rs crates/core/src/passes/scalar_replacement.rs crates/core/src/passes/seq_unroll.rs crates/core/src/passes/unroll_and_jam.rs crates/core/src/pipeline.rs crates/core/src/regalloc.rs

crates/core/src/lib.rs:
crates/core/src/passes/mod.rs:
crates/core/src/passes/canonicalize.rs:
crates/core/src/passes/convert_linalg.rs:
crates/core/src/passes/convert_to_rv.rs:
crates/core/src/passes/dce.rs:
crates/core/src/passes/fuse_fill.rs:
crates/core/src/passes/loop_opt.rs:
crates/core/src/passes/lower_streaming.rs:
crates/core/src/passes/lower_to_loops.rs:
crates/core/src/passes/mem_forward.rs:
crates/core/src/passes/peephole.rs:
crates/core/src/passes/rv_scf_to_cf.rs:
crates/core/src/passes/rv_scf_to_frep.rs:
crates/core/src/passes/scalar_replacement.rs:
crates/core/src/passes/seq_unroll.rs:
crates/core/src/passes/unroll_and_jam.rs:
crates/core/src/pipeline.rs:
crates/core/src/regalloc.rs:
