/root/repo/target/release/deps/rand-dd8a162ccf84a75a.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-dd8a162ccf84a75a.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-dd8a162ccf84a75a.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
