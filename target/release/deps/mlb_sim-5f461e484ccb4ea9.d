/root/repo/target/release/deps/mlb_sim-5f461e484ccb4ea9.d: crates/sim/src/lib.rs crates/sim/src/asm.rs crates/sim/src/counters.rs crates/sim/src/instr.rs crates/sim/src/machine.rs crates/sim/src/ssr.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libmlb_sim-5f461e484ccb4ea9.rlib: crates/sim/src/lib.rs crates/sim/src/asm.rs crates/sim/src/counters.rs crates/sim/src/instr.rs crates/sim/src/machine.rs crates/sim/src/ssr.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libmlb_sim-5f461e484ccb4ea9.rmeta: crates/sim/src/lib.rs crates/sim/src/asm.rs crates/sim/src/counters.rs crates/sim/src/instr.rs crates/sim/src/machine.rs crates/sim/src/ssr.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/asm.rs:
crates/sim/src/counters.rs:
crates/sim/src/instr.rs:
crates/sim/src/machine.rs:
crates/sim/src/ssr.rs:
crates/sim/src/trace.rs:
