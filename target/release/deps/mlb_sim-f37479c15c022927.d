/root/repo/target/release/deps/mlb_sim-f37479c15c022927.d: crates/sim/src/lib.rs crates/sim/src/asm.rs crates/sim/src/counters.rs crates/sim/src/instr.rs crates/sim/src/machine.rs crates/sim/src/ssr.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/mlb_sim-f37479c15c022927: crates/sim/src/lib.rs crates/sim/src/asm.rs crates/sim/src/counters.rs crates/sim/src/instr.rs crates/sim/src/machine.rs crates/sim/src/ssr.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/asm.rs:
crates/sim/src/counters.rs:
crates/sim/src/instr.rs:
crates/sim/src/machine.rs:
crates/sim/src/ssr.rs:
crates/sim/src/trace.rs:
