/root/repo/target/release/deps/mlb_dialects-a40b9ec02d342e4a.d: crates/dialects/src/lib.rs crates/dialects/src/arith.rs crates/dialects/src/builtin.rs crates/dialects/src/exec.rs crates/dialects/src/func.rs crates/dialects/src/linalg.rs crates/dialects/src/memref.rs crates/dialects/src/memref_stream.rs crates/dialects/src/scf.rs crates/dialects/src/structured.rs

/root/repo/target/release/deps/mlb_dialects-a40b9ec02d342e4a: crates/dialects/src/lib.rs crates/dialects/src/arith.rs crates/dialects/src/builtin.rs crates/dialects/src/exec.rs crates/dialects/src/func.rs crates/dialects/src/linalg.rs crates/dialects/src/memref.rs crates/dialects/src/memref_stream.rs crates/dialects/src/scf.rs crates/dialects/src/structured.rs

crates/dialects/src/lib.rs:
crates/dialects/src/arith.rs:
crates/dialects/src/builtin.rs:
crates/dialects/src/exec.rs:
crates/dialects/src/func.rs:
crates/dialects/src/linalg.rs:
crates/dialects/src/memref.rs:
crates/dialects/src/memref_stream.rs:
crates/dialects/src/scf.rs:
crates/dialects/src/structured.rs:
