/root/repo/target/release/deps/mlb_kernels-d2898479212e9775.d: crates/kernels/src/lib.rs crates/kernels/src/builders.rs crates/kernels/src/difftest.rs crates/kernels/src/fuzz.rs crates/kernels/src/handwritten.rs crates/kernels/src/harness.rs crates/kernels/src/reference.rs crates/kernels/src/suite.rs

/root/repo/target/release/deps/libmlb_kernels-d2898479212e9775.rlib: crates/kernels/src/lib.rs crates/kernels/src/builders.rs crates/kernels/src/difftest.rs crates/kernels/src/fuzz.rs crates/kernels/src/handwritten.rs crates/kernels/src/harness.rs crates/kernels/src/reference.rs crates/kernels/src/suite.rs

/root/repo/target/release/deps/libmlb_kernels-d2898479212e9775.rmeta: crates/kernels/src/lib.rs crates/kernels/src/builders.rs crates/kernels/src/difftest.rs crates/kernels/src/fuzz.rs crates/kernels/src/handwritten.rs crates/kernels/src/harness.rs crates/kernels/src/reference.rs crates/kernels/src/suite.rs

crates/kernels/src/lib.rs:
crates/kernels/src/builders.rs:
crates/kernels/src/difftest.rs:
crates/kernels/src/fuzz.rs:
crates/kernels/src/handwritten.rs:
crates/kernels/src/harness.rs:
crates/kernels/src/reference.rs:
crates/kernels/src/suite.rs:
