/root/repo/target/release/examples/quickstart-8c72932b42ea60ce.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8c72932b42ea60ce: examples/quickstart.rs

examples/quickstart.rs:
