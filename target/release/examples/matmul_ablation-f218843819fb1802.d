/root/repo/target/release/examples/matmul_ablation-f218843819fb1802.d: examples/matmul_ablation.rs

/root/repo/target/release/examples/matmul_ablation-f218843819fb1802: examples/matmul_ablation.rs

examples/matmul_ablation.rs:
