/root/repo/target/release/examples/dbg_difftest-48c10fd0cc86918b.d: examples/dbg_difftest.rs

/root/repo/target/release/examples/dbg_difftest-48c10fd0cc86918b: examples/dbg_difftest.rs

examples/dbg_difftest.rs:
