/root/repo/target/debug/deps/mlbc_textual-bc419cb8b4f9cc82.d: tests/mlbc_textual.rs

/root/repo/target/debug/deps/mlbc_textual-bc419cb8b4f9cc82: tests/mlbc_textual.rs

tests/mlbc_textual.rs:
