/root/repo/target/debug/deps/mlbe-c1cb86a9ddaf18d1.d: src/lib.rs src/json.rs

/root/repo/target/debug/deps/libmlbe-c1cb86a9ddaf18d1.rlib: src/lib.rs src/json.rs

/root/repo/target/debug/deps/libmlbe-c1cb86a9ddaf18d1.rmeta: src/lib.rs src/json.rs

src/lib.rs:
src/json.rs:
