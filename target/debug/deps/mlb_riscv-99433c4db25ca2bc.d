/root/repo/target/debug/deps/mlb_riscv-99433c4db25ca2bc.d: crates/riscv/src/lib.rs crates/riscv/src/emit.rs crates/riscv/src/exec.rs crates/riscv/src/rv.rs crates/riscv/src/rv_cf.rs crates/riscv/src/rv_func.rs crates/riscv/src/rv_scf.rs crates/riscv/src/rv_snitch.rs crates/riscv/src/snitch_stream.rs Cargo.toml

/root/repo/target/debug/deps/libmlb_riscv-99433c4db25ca2bc.rmeta: crates/riscv/src/lib.rs crates/riscv/src/emit.rs crates/riscv/src/exec.rs crates/riscv/src/rv.rs crates/riscv/src/rv_cf.rs crates/riscv/src/rv_func.rs crates/riscv/src/rv_scf.rs crates/riscv/src/rv_snitch.rs crates/riscv/src/snitch_stream.rs Cargo.toml

crates/riscv/src/lib.rs:
crates/riscv/src/emit.rs:
crates/riscv/src/exec.rs:
crates/riscv/src/rv.rs:
crates/riscv/src/rv_cf.rs:
crates/riscv/src/rv_func.rs:
crates/riscv/src/rv_scf.rs:
crates/riscv/src/rv_snitch.rs:
crates/riscv/src/snitch_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
