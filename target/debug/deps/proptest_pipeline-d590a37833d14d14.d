/root/repo/target/debug/deps/proptest_pipeline-d590a37833d14d14.d: tests/proptest_pipeline.rs

/root/repo/target/debug/deps/proptest_pipeline-d590a37833d14d14: tests/proptest_pipeline.rs

tests/proptest_pipeline.rs:
