/root/repo/target/debug/deps/mlb_ir-a7e2dabd5ab19b21.d: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/attributes.rs crates/ir/src/context.rs crates/ir/src/interp.rs crates/ir/src/observe.rs crates/ir/src/parser.rs crates/ir/src/pass.rs crates/ir/src/printer.rs crates/ir/src/registry.rs crates/ir/src/rewrite.rs crates/ir/src/types.rs

/root/repo/target/debug/deps/mlb_ir-a7e2dabd5ab19b21: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/attributes.rs crates/ir/src/context.rs crates/ir/src/interp.rs crates/ir/src/observe.rs crates/ir/src/parser.rs crates/ir/src/pass.rs crates/ir/src/printer.rs crates/ir/src/registry.rs crates/ir/src/rewrite.rs crates/ir/src/types.rs

crates/ir/src/lib.rs:
crates/ir/src/affine.rs:
crates/ir/src/attributes.rs:
crates/ir/src/context.rs:
crates/ir/src/interp.rs:
crates/ir/src/observe.rs:
crates/ir/src/parser.rs:
crates/ir/src/pass.rs:
crates/ir/src/printer.rs:
crates/ir/src/registry.rs:
crates/ir/src/rewrite.rs:
crates/ir/src/types.rs:
