/root/repo/target/debug/deps/sim_timing-a1810891e588c6a4.d: tests/sim_timing.rs

/root/repo/target/debug/deps/sim_timing-a1810891e588c6a4: tests/sim_timing.rs

tests/sim_timing.rs:
