/root/repo/target/debug/deps/mlbc_observability-d37767ed132c1c61.d: tests/mlbc_observability.rs

/root/repo/target/debug/deps/mlbc_observability-d37767ed132c1c61: tests/mlbc_observability.rs

tests/mlbc_observability.rs:

# env-dep:CARGO_BIN_EXE_mlbc=/root/repo/target/debug/mlbc
