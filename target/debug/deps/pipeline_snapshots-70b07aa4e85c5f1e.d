/root/repo/target/debug/deps/pipeline_snapshots-70b07aa4e85c5f1e.d: tests/pipeline_snapshots.rs

/root/repo/target/debug/deps/pipeline_snapshots-70b07aa4e85c5f1e: tests/pipeline_snapshots.rs

tests/pipeline_snapshots.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
