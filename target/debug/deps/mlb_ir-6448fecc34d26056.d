/root/repo/target/debug/deps/mlb_ir-6448fecc34d26056.d: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/attributes.rs crates/ir/src/context.rs crates/ir/src/interp.rs crates/ir/src/observe.rs crates/ir/src/parser.rs crates/ir/src/pass.rs crates/ir/src/printer.rs crates/ir/src/registry.rs crates/ir/src/rewrite.rs crates/ir/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libmlb_ir-6448fecc34d26056.rmeta: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/attributes.rs crates/ir/src/context.rs crates/ir/src/interp.rs crates/ir/src/observe.rs crates/ir/src/parser.rs crates/ir/src/pass.rs crates/ir/src/printer.rs crates/ir/src/registry.rs crates/ir/src/rewrite.rs crates/ir/src/types.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/affine.rs:
crates/ir/src/attributes.rs:
crates/ir/src/context.rs:
crates/ir/src/interp.rs:
crates/ir/src/observe.rs:
crates/ir/src/parser.rs:
crates/ir/src/pass.rs:
crates/ir/src/printer.rs:
crates/ir/src/registry.rs:
crates/ir/src/rewrite.rs:
crates/ir/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
