/root/repo/target/debug/deps/mlb_sim-1f3c0dad956d3035.d: crates/sim/src/lib.rs crates/sim/src/asm.rs crates/sim/src/counters.rs crates/sim/src/instr.rs crates/sim/src/machine.rs crates/sim/src/ssr.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/mlb_sim-1f3c0dad956d3035: crates/sim/src/lib.rs crates/sim/src/asm.rs crates/sim/src/counters.rs crates/sim/src/instr.rs crates/sim/src/machine.rs crates/sim/src/ssr.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/asm.rs:
crates/sim/src/counters.rs:
crates/sim/src/instr.rs:
crates/sim/src/machine.rs:
crates/sim/src/ssr.rs:
crates/sim/src/trace.rs:
