/root/repo/target/debug/deps/proptest_regalloc-5f767a59b5de2774.d: tests/proptest_regalloc.rs

/root/repo/target/debug/deps/proptest_regalloc-5f767a59b5de2774: tests/proptest_regalloc.rs

tests/proptest_regalloc.rs:
