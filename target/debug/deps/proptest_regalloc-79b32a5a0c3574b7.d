/root/repo/target/debug/deps/proptest_regalloc-79b32a5a0c3574b7.d: tests/proptest_regalloc.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_regalloc-79b32a5a0c3574b7.rmeta: tests/proptest_regalloc.rs Cargo.toml

tests/proptest_regalloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
