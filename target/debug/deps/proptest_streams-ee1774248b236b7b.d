/root/repo/target/debug/deps/proptest_streams-ee1774248b236b7b.d: tests/proptest_streams.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_streams-ee1774248b236b7b.rmeta: tests/proptest_streams.rs Cargo.toml

tests/proptest_streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
