/root/repo/target/debug/deps/kernel_correctness-f07e8fcfb8d72350.d: tests/kernel_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_correctness-f07e8fcfb8d72350.rmeta: tests/kernel_correctness.rs Cargo.toml

tests/kernel_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
