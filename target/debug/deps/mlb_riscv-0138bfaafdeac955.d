/root/repo/target/debug/deps/mlb_riscv-0138bfaafdeac955.d: crates/riscv/src/lib.rs crates/riscv/src/emit.rs crates/riscv/src/exec.rs crates/riscv/src/rv.rs crates/riscv/src/rv_cf.rs crates/riscv/src/rv_func.rs crates/riscv/src/rv_scf.rs crates/riscv/src/rv_snitch.rs crates/riscv/src/snitch_stream.rs

/root/repo/target/debug/deps/mlb_riscv-0138bfaafdeac955: crates/riscv/src/lib.rs crates/riscv/src/emit.rs crates/riscv/src/exec.rs crates/riscv/src/rv.rs crates/riscv/src/rv_cf.rs crates/riscv/src/rv_func.rs crates/riscv/src/rv_scf.rs crates/riscv/src/rv_snitch.rs crates/riscv/src/snitch_stream.rs

crates/riscv/src/lib.rs:
crates/riscv/src/emit.rs:
crates/riscv/src/exec.rs:
crates/riscv/src/rv.rs:
crates/riscv/src/rv_cf.rs:
crates/riscv/src/rv_func.rs:
crates/riscv/src/rv_scf.rs:
crates/riscv/src/rv_snitch.rs:
crates/riscv/src/snitch_stream.rs:
