/root/repo/target/debug/deps/sim_timing-8dc30ff016e880ea.d: tests/sim_timing.rs Cargo.toml

/root/repo/target/debug/deps/libsim_timing-8dc30ff016e880ea.rmeta: tests/sim_timing.rs Cargo.toml

tests/sim_timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
