/root/repo/target/debug/deps/mlbc_observability-5f5def164834afca.d: tests/mlbc_observability.rs Cargo.toml

/root/repo/target/debug/deps/libmlbc_observability-5f5def164834afca.rmeta: tests/mlbc_observability.rs Cargo.toml

tests/mlbc_observability.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_mlbc=placeholder:mlbc
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
