/root/repo/target/debug/deps/mlbc-f0393680ea000340.d: src/bin/mlbc.rs Cargo.toml

/root/repo/target/debug/deps/libmlbc-f0393680ea000340.rmeta: src/bin/mlbc.rs Cargo.toml

src/bin/mlbc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
