/root/repo/target/debug/deps/mlb_isa-8afc4a05b5f9b8ae.d: crates/isa/src/lib.rs crates/isa/src/regs.rs crates/isa/src/ssr.rs Cargo.toml

/root/repo/target/debug/deps/libmlb_isa-8afc4a05b5f9b8ae.rmeta: crates/isa/src/lib.rs crates/isa/src/regs.rs crates/isa/src/ssr.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/regs.rs:
crates/isa/src/ssr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
