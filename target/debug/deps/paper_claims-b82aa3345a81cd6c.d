/root/repo/target/debug/deps/paper_claims-b82aa3345a81cd6c.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-b82aa3345a81cd6c: tests/paper_claims.rs

tests/paper_claims.rs:
