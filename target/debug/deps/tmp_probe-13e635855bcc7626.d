/root/repo/target/debug/deps/tmp_probe-13e635855bcc7626.d: tests/tmp_probe.rs

/root/repo/target/debug/deps/tmp_probe-13e635855bcc7626: tests/tmp_probe.rs

tests/tmp_probe.rs:
