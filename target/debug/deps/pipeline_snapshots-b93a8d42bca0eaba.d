/root/repo/target/debug/deps/pipeline_snapshots-b93a8d42bca0eaba.d: tests/pipeline_snapshots.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_snapshots-b93a8d42bca0eaba.rmeta: tests/pipeline_snapshots.rs Cargo.toml

tests/pipeline_snapshots.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
