/root/repo/target/debug/deps/mlb_kernels-160ef42097fa898c.d: crates/kernels/src/lib.rs crates/kernels/src/builders.rs crates/kernels/src/difftest.rs crates/kernels/src/fuzz.rs crates/kernels/src/handwritten.rs crates/kernels/src/harness.rs crates/kernels/src/reference.rs crates/kernels/src/suite.rs

/root/repo/target/debug/deps/mlb_kernels-160ef42097fa898c: crates/kernels/src/lib.rs crates/kernels/src/builders.rs crates/kernels/src/difftest.rs crates/kernels/src/fuzz.rs crates/kernels/src/handwritten.rs crates/kernels/src/harness.rs crates/kernels/src/reference.rs crates/kernels/src/suite.rs

crates/kernels/src/lib.rs:
crates/kernels/src/builders.rs:
crates/kernels/src/difftest.rs:
crates/kernels/src/fuzz.rs:
crates/kernels/src/handwritten.rs:
crates/kernels/src/harness.rs:
crates/kernels/src/reference.rs:
crates/kernels/src/suite.rs:
