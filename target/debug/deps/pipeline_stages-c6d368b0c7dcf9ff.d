/root/repo/target/debug/deps/pipeline_stages-c6d368b0c7dcf9ff.d: tests/pipeline_stages.rs

/root/repo/target/debug/deps/pipeline_stages-c6d368b0c7dcf9ff: tests/pipeline_stages.rs

tests/pipeline_stages.rs:
