/root/repo/target/debug/deps/mlb_isa-658b52ba2e160ea8.d: crates/isa/src/lib.rs crates/isa/src/regs.rs crates/isa/src/ssr.rs

/root/repo/target/debug/deps/libmlb_isa-658b52ba2e160ea8.rlib: crates/isa/src/lib.rs crates/isa/src/regs.rs crates/isa/src/ssr.rs

/root/repo/target/debug/deps/libmlb_isa-658b52ba2e160ea8.rmeta: crates/isa/src/lib.rs crates/isa/src/regs.rs crates/isa/src/ssr.rs

crates/isa/src/lib.rs:
crates/isa/src/regs.rs:
crates/isa/src/ssr.rs:
