/root/repo/target/debug/deps/mlb_kernels-fc341967cfba4326.d: crates/kernels/src/lib.rs crates/kernels/src/builders.rs crates/kernels/src/difftest.rs crates/kernels/src/fuzz.rs crates/kernels/src/handwritten.rs crates/kernels/src/harness.rs crates/kernels/src/reference.rs crates/kernels/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libmlb_kernels-fc341967cfba4326.rmeta: crates/kernels/src/lib.rs crates/kernels/src/builders.rs crates/kernels/src/difftest.rs crates/kernels/src/fuzz.rs crates/kernels/src/handwritten.rs crates/kernels/src/harness.rs crates/kernels/src/reference.rs crates/kernels/src/suite.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/builders.rs:
crates/kernels/src/difftest.rs:
crates/kernels/src/fuzz.rs:
crates/kernels/src/handwritten.rs:
crates/kernels/src/harness.rs:
crates/kernels/src/reference.rs:
crates/kernels/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
