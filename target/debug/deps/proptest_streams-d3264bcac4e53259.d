/root/repo/target/debug/deps/proptest_streams-d3264bcac4e53259.d: tests/proptest_streams.rs

/root/repo/target/debug/deps/proptest_streams-d3264bcac4e53259: tests/proptest_streams.rs

tests/proptest_streams.rs:
