/root/repo/target/debug/deps/mlb_core-31687c9969a35f11.d: crates/core/src/lib.rs crates/core/src/passes/mod.rs crates/core/src/passes/canonicalize.rs crates/core/src/passes/convert_linalg.rs crates/core/src/passes/convert_to_rv.rs crates/core/src/passes/dce.rs crates/core/src/passes/fuse_fill.rs crates/core/src/passes/loop_opt.rs crates/core/src/passes/lower_streaming.rs crates/core/src/passes/lower_to_loops.rs crates/core/src/passes/mem_forward.rs crates/core/src/passes/peephole.rs crates/core/src/passes/rv_scf_to_cf.rs crates/core/src/passes/rv_scf_to_frep.rs crates/core/src/passes/scalar_replacement.rs crates/core/src/passes/seq_unroll.rs crates/core/src/passes/unroll_and_jam.rs crates/core/src/pipeline.rs crates/core/src/regalloc.rs Cargo.toml

/root/repo/target/debug/deps/libmlb_core-31687c9969a35f11.rmeta: crates/core/src/lib.rs crates/core/src/passes/mod.rs crates/core/src/passes/canonicalize.rs crates/core/src/passes/convert_linalg.rs crates/core/src/passes/convert_to_rv.rs crates/core/src/passes/dce.rs crates/core/src/passes/fuse_fill.rs crates/core/src/passes/loop_opt.rs crates/core/src/passes/lower_streaming.rs crates/core/src/passes/lower_to_loops.rs crates/core/src/passes/mem_forward.rs crates/core/src/passes/peephole.rs crates/core/src/passes/rv_scf_to_cf.rs crates/core/src/passes/rv_scf_to_frep.rs crates/core/src/passes/scalar_replacement.rs crates/core/src/passes/seq_unroll.rs crates/core/src/passes/unroll_and_jam.rs crates/core/src/pipeline.rs crates/core/src/regalloc.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/passes/mod.rs:
crates/core/src/passes/canonicalize.rs:
crates/core/src/passes/convert_linalg.rs:
crates/core/src/passes/convert_to_rv.rs:
crates/core/src/passes/dce.rs:
crates/core/src/passes/fuse_fill.rs:
crates/core/src/passes/loop_opt.rs:
crates/core/src/passes/lower_streaming.rs:
crates/core/src/passes/lower_to_loops.rs:
crates/core/src/passes/mem_forward.rs:
crates/core/src/passes/peephole.rs:
crates/core/src/passes/rv_scf_to_cf.rs:
crates/core/src/passes/rv_scf_to_frep.rs:
crates/core/src/passes/scalar_replacement.rs:
crates/core/src/passes/seq_unroll.rs:
crates/core/src/passes/unroll_and_jam.rs:
crates/core/src/pipeline.rs:
crates/core/src/regalloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
