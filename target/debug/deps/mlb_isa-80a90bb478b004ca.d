/root/repo/target/debug/deps/mlb_isa-80a90bb478b004ca.d: crates/isa/src/lib.rs crates/isa/src/regs.rs crates/isa/src/ssr.rs

/root/repo/target/debug/deps/mlb_isa-80a90bb478b004ca: crates/isa/src/lib.rs crates/isa/src/regs.rs crates/isa/src/ssr.rs

crates/isa/src/lib.rs:
crates/isa/src/regs.rs:
crates/isa/src/ssr.rs:
