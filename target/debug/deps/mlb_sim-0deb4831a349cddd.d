/root/repo/target/debug/deps/mlb_sim-0deb4831a349cddd.d: crates/sim/src/lib.rs crates/sim/src/asm.rs crates/sim/src/counters.rs crates/sim/src/instr.rs crates/sim/src/machine.rs crates/sim/src/ssr.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmlb_sim-0deb4831a349cddd.rmeta: crates/sim/src/lib.rs crates/sim/src/asm.rs crates/sim/src/counters.rs crates/sim/src/instr.rs crates/sim/src/machine.rs crates/sim/src/ssr.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/asm.rs:
crates/sim/src/counters.rs:
crates/sim/src/instr.rs:
crates/sim/src/machine.rs:
crates/sim/src/ssr.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
