/root/repo/target/debug/deps/paper_claims-a7ee8accdf17e4f9.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-a7ee8accdf17e4f9.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
