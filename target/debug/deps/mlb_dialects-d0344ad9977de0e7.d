/root/repo/target/debug/deps/mlb_dialects-d0344ad9977de0e7.d: crates/dialects/src/lib.rs crates/dialects/src/arith.rs crates/dialects/src/builtin.rs crates/dialects/src/exec.rs crates/dialects/src/func.rs crates/dialects/src/linalg.rs crates/dialects/src/memref.rs crates/dialects/src/memref_stream.rs crates/dialects/src/scf.rs crates/dialects/src/structured.rs

/root/repo/target/debug/deps/mlb_dialects-d0344ad9977de0e7: crates/dialects/src/lib.rs crates/dialects/src/arith.rs crates/dialects/src/builtin.rs crates/dialects/src/exec.rs crates/dialects/src/func.rs crates/dialects/src/linalg.rs crates/dialects/src/memref.rs crates/dialects/src/memref_stream.rs crates/dialects/src/scf.rs crates/dialects/src/structured.rs

crates/dialects/src/lib.rs:
crates/dialects/src/arith.rs:
crates/dialects/src/builtin.rs:
crates/dialects/src/exec.rs:
crates/dialects/src/func.rs:
crates/dialects/src/linalg.rs:
crates/dialects/src/memref.rs:
crates/dialects/src/memref_stream.rs:
crates/dialects/src/scf.rs:
crates/dialects/src/structured.rs:
