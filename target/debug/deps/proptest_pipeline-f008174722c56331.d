/root/repo/target/debug/deps/proptest_pipeline-f008174722c56331.d: tests/proptest_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_pipeline-f008174722c56331.rmeta: tests/proptest_pipeline.rs Cargo.toml

tests/proptest_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
