/root/repo/target/debug/deps/mlb_kernels-63f53975b571d9c2.d: crates/kernels/src/lib.rs crates/kernels/src/builders.rs crates/kernels/src/difftest.rs crates/kernels/src/fuzz.rs crates/kernels/src/handwritten.rs crates/kernels/src/harness.rs crates/kernels/src/reference.rs crates/kernels/src/suite.rs

/root/repo/target/debug/deps/libmlb_kernels-63f53975b571d9c2.rlib: crates/kernels/src/lib.rs crates/kernels/src/builders.rs crates/kernels/src/difftest.rs crates/kernels/src/fuzz.rs crates/kernels/src/handwritten.rs crates/kernels/src/harness.rs crates/kernels/src/reference.rs crates/kernels/src/suite.rs

/root/repo/target/debug/deps/libmlb_kernels-63f53975b571d9c2.rmeta: crates/kernels/src/lib.rs crates/kernels/src/builders.rs crates/kernels/src/difftest.rs crates/kernels/src/fuzz.rs crates/kernels/src/handwritten.rs crates/kernels/src/harness.rs crates/kernels/src/reference.rs crates/kernels/src/suite.rs

crates/kernels/src/lib.rs:
crates/kernels/src/builders.rs:
crates/kernels/src/difftest.rs:
crates/kernels/src/fuzz.rs:
crates/kernels/src/handwritten.rs:
crates/kernels/src/harness.rs:
crates/kernels/src/reference.rs:
crates/kernels/src/suite.rs:
