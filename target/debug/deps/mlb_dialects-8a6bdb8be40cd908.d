/root/repo/target/debug/deps/mlb_dialects-8a6bdb8be40cd908.d: crates/dialects/src/lib.rs crates/dialects/src/arith.rs crates/dialects/src/builtin.rs crates/dialects/src/exec.rs crates/dialects/src/func.rs crates/dialects/src/linalg.rs crates/dialects/src/memref.rs crates/dialects/src/memref_stream.rs crates/dialects/src/scf.rs crates/dialects/src/structured.rs Cargo.toml

/root/repo/target/debug/deps/libmlb_dialects-8a6bdb8be40cd908.rmeta: crates/dialects/src/lib.rs crates/dialects/src/arith.rs crates/dialects/src/builtin.rs crates/dialects/src/exec.rs crates/dialects/src/func.rs crates/dialects/src/linalg.rs crates/dialects/src/memref.rs crates/dialects/src/memref_stream.rs crates/dialects/src/scf.rs crates/dialects/src/structured.rs Cargo.toml

crates/dialects/src/lib.rs:
crates/dialects/src/arith.rs:
crates/dialects/src/builtin.rs:
crates/dialects/src/exec.rs:
crates/dialects/src/func.rs:
crates/dialects/src/linalg.rs:
crates/dialects/src/memref.rs:
crates/dialects/src/memref_stream.rs:
crates/dialects/src/scf.rs:
crates/dialects/src/structured.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
