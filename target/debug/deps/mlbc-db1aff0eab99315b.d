/root/repo/target/debug/deps/mlbc-db1aff0eab99315b.d: src/bin/mlbc.rs

/root/repo/target/debug/deps/mlbc-db1aff0eab99315b: src/bin/mlbc.rs

src/bin/mlbc.rs:
