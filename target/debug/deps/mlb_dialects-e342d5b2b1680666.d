/root/repo/target/debug/deps/mlb_dialects-e342d5b2b1680666.d: crates/dialects/src/lib.rs crates/dialects/src/arith.rs crates/dialects/src/builtin.rs crates/dialects/src/exec.rs crates/dialects/src/func.rs crates/dialects/src/linalg.rs crates/dialects/src/memref.rs crates/dialects/src/memref_stream.rs crates/dialects/src/scf.rs crates/dialects/src/structured.rs

/root/repo/target/debug/deps/libmlb_dialects-e342d5b2b1680666.rlib: crates/dialects/src/lib.rs crates/dialects/src/arith.rs crates/dialects/src/builtin.rs crates/dialects/src/exec.rs crates/dialects/src/func.rs crates/dialects/src/linalg.rs crates/dialects/src/memref.rs crates/dialects/src/memref_stream.rs crates/dialects/src/scf.rs crates/dialects/src/structured.rs

/root/repo/target/debug/deps/libmlb_dialects-e342d5b2b1680666.rmeta: crates/dialects/src/lib.rs crates/dialects/src/arith.rs crates/dialects/src/builtin.rs crates/dialects/src/exec.rs crates/dialects/src/func.rs crates/dialects/src/linalg.rs crates/dialects/src/memref.rs crates/dialects/src/memref_stream.rs crates/dialects/src/scf.rs crates/dialects/src/structured.rs

crates/dialects/src/lib.rs:
crates/dialects/src/arith.rs:
crates/dialects/src/builtin.rs:
crates/dialects/src/exec.rs:
crates/dialects/src/func.rs:
crates/dialects/src/linalg.rs:
crates/dialects/src/memref.rs:
crates/dialects/src/memref_stream.rs:
crates/dialects/src/scf.rs:
crates/dialects/src/structured.rs:
