/root/repo/target/debug/deps/failure_injection-eafe2cdcc7de990a.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-eafe2cdcc7de990a: tests/failure_injection.rs

tests/failure_injection.rs:
