/root/repo/target/debug/deps/pipeline_stages-938f5f3cc98d806b.d: tests/pipeline_stages.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_stages-938f5f3cc98d806b.rmeta: tests/pipeline_stages.rs Cargo.toml

tests/pipeline_stages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
