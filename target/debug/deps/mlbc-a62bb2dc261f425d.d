/root/repo/target/debug/deps/mlbc-a62bb2dc261f425d.d: src/bin/mlbc.rs

/root/repo/target/debug/deps/mlbc-a62bb2dc261f425d: src/bin/mlbc.rs

src/bin/mlbc.rs:
