/root/repo/target/debug/deps/mlb_ir-bcaa1220cb4f359d.d: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/attributes.rs crates/ir/src/context.rs crates/ir/src/interp.rs crates/ir/src/observe.rs crates/ir/src/parser.rs crates/ir/src/pass.rs crates/ir/src/printer.rs crates/ir/src/registry.rs crates/ir/src/rewrite.rs crates/ir/src/types.rs

/root/repo/target/debug/deps/libmlb_ir-bcaa1220cb4f359d.rlib: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/attributes.rs crates/ir/src/context.rs crates/ir/src/interp.rs crates/ir/src/observe.rs crates/ir/src/parser.rs crates/ir/src/pass.rs crates/ir/src/printer.rs crates/ir/src/registry.rs crates/ir/src/rewrite.rs crates/ir/src/types.rs

/root/repo/target/debug/deps/libmlb_ir-bcaa1220cb4f359d.rmeta: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/attributes.rs crates/ir/src/context.rs crates/ir/src/interp.rs crates/ir/src/observe.rs crates/ir/src/parser.rs crates/ir/src/pass.rs crates/ir/src/printer.rs crates/ir/src/registry.rs crates/ir/src/rewrite.rs crates/ir/src/types.rs

crates/ir/src/lib.rs:
crates/ir/src/affine.rs:
crates/ir/src/attributes.rs:
crates/ir/src/context.rs:
crates/ir/src/interp.rs:
crates/ir/src/observe.rs:
crates/ir/src/parser.rs:
crates/ir/src/pass.rs:
crates/ir/src/printer.rs:
crates/ir/src/registry.rs:
crates/ir/src/rewrite.rs:
crates/ir/src/types.rs:
