/root/repo/target/debug/deps/proptest_ir-a82ee709dea73128.d: tests/proptest_ir.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_ir-a82ee709dea73128.rmeta: tests/proptest_ir.rs Cargo.toml

tests/proptest_ir.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
