/root/repo/target/debug/deps/mlbe-736ac9e02c877460.d: src/lib.rs src/json.rs Cargo.toml

/root/repo/target/debug/deps/libmlbe-736ac9e02c877460.rmeta: src/lib.rs src/json.rs Cargo.toml

src/lib.rs:
src/json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
