/root/repo/target/debug/deps/mlbe-228d58a108c716f8.d: src/lib.rs src/json.rs

/root/repo/target/debug/deps/mlbe-228d58a108c716f8: src/lib.rs src/json.rs

src/lib.rs:
src/json.rs:
