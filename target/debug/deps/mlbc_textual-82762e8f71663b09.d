/root/repo/target/debug/deps/mlbc_textual-82762e8f71663b09.d: tests/mlbc_textual.rs Cargo.toml

/root/repo/target/debug/deps/libmlbc_textual-82762e8f71663b09.rmeta: tests/mlbc_textual.rs Cargo.toml

tests/mlbc_textual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
