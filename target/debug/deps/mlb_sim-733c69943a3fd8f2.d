/root/repo/target/debug/deps/mlb_sim-733c69943a3fd8f2.d: crates/sim/src/lib.rs crates/sim/src/asm.rs crates/sim/src/counters.rs crates/sim/src/instr.rs crates/sim/src/machine.rs crates/sim/src/ssr.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libmlb_sim-733c69943a3fd8f2.rlib: crates/sim/src/lib.rs crates/sim/src/asm.rs crates/sim/src/counters.rs crates/sim/src/instr.rs crates/sim/src/machine.rs crates/sim/src/ssr.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libmlb_sim-733c69943a3fd8f2.rmeta: crates/sim/src/lib.rs crates/sim/src/asm.rs crates/sim/src/counters.rs crates/sim/src/instr.rs crates/sim/src/machine.rs crates/sim/src/ssr.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/asm.rs:
crates/sim/src/counters.rs:
crates/sim/src/instr.rs:
crates/sim/src/machine.rs:
crates/sim/src/ssr.rs:
crates/sim/src/trace.rs:
