/root/repo/target/debug/deps/mlbe-d7986a3256de3e39.d: src/lib.rs src/json.rs Cargo.toml

/root/repo/target/debug/deps/libmlbe-d7986a3256de3e39.rmeta: src/lib.rs src/json.rs Cargo.toml

src/lib.rs:
src/json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
