/root/repo/target/debug/deps/proptest_ir-a25092d01ea476ac.d: tests/proptest_ir.rs

/root/repo/target/debug/deps/proptest_ir-a25092d01ea476ac: tests/proptest_ir.rs

tests/proptest_ir.rs:
