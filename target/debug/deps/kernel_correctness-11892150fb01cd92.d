/root/repo/target/debug/deps/kernel_correctness-11892150fb01cd92.d: tests/kernel_correctness.rs

/root/repo/target/debug/deps/kernel_correctness-11892150fb01cd92: tests/kernel_correctness.rs

tests/kernel_correctness.rs:
