/root/repo/target/debug/deps/mlbc-5bb4c2906116ee7e.d: src/bin/mlbc.rs Cargo.toml

/root/repo/target/debug/deps/libmlbc-5bb4c2906116ee7e.rmeta: src/bin/mlbc.rs Cargo.toml

src/bin/mlbc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
