/root/repo/target/debug/examples/custom_kernel-36abc4341a4027b2.d: examples/custom_kernel.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_kernel-36abc4341a4027b2.rmeta: examples/custom_kernel.rs Cargo.toml

examples/custom_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
