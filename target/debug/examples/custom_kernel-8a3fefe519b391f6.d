/root/repo/target/debug/examples/custom_kernel-8a3fefe519b391f6.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-8a3fefe519b391f6: examples/custom_kernel.rs

examples/custom_kernel.rs:
