/root/repo/target/debug/examples/dbg_difftest-df72a7c14bd627ca.d: examples/dbg_difftest.rs

/root/repo/target/debug/examples/dbg_difftest-df72a7c14bd627ca: examples/dbg_difftest.rs

examples/dbg_difftest.rs:
