/root/repo/target/debug/examples/progressive_lowering-66e215832aaa0c1e.d: examples/progressive_lowering.rs

/root/repo/target/debug/examples/progressive_lowering-66e215832aaa0c1e: examples/progressive_lowering.rs

examples/progressive_lowering.rs:
