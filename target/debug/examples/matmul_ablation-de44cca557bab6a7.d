/root/repo/target/debug/examples/matmul_ablation-de44cca557bab6a7.d: examples/matmul_ablation.rs

/root/repo/target/debug/examples/matmul_ablation-de44cca557bab6a7: examples/matmul_ablation.rs

examples/matmul_ablation.rs:
