/root/repo/target/debug/examples/quickstart-81975a3bb9576d0b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-81975a3bb9576d0b: examples/quickstart.rs

examples/quickstart.rs:
