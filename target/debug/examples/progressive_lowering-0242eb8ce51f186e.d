/root/repo/target/debug/examples/progressive_lowering-0242eb8ce51f186e.d: examples/progressive_lowering.rs Cargo.toml

/root/repo/target/debug/examples/libprogressive_lowering-0242eb8ce51f186e.rmeta: examples/progressive_lowering.rs Cargo.toml

examples/progressive_lowering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
