/root/repo/target/debug/examples/matmul_ablation-d8e1784abe64659f.d: examples/matmul_ablation.rs Cargo.toml

/root/repo/target/debug/examples/libmatmul_ablation-d8e1784abe64659f.rmeta: examples/matmul_ablation.rs Cargo.toml

examples/matmul_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
