/root/repo/target/debug/libmlb_isa.rlib: /root/repo/crates/isa/src/lib.rs /root/repo/crates/isa/src/regs.rs /root/repo/crates/isa/src/ssr.rs
