// An 8x4x8 double-precision matrix multiplication at the linalg level,
// in the generic textual format `mlbc` parses: C = A * B with the
// output zeroed by a `linalg.fill` first (the form most MLIR frontends
// produce). Used by `mlbc profile examples/matmul.mlir` and the CI
// profiling smoke runs; the M = 8 parallel dimension shards evenly
// across 2- and 4-core clusters.
"builtin.module"() ({
^bb0:
  "func.func"() ({
  ^bb1(%0: memref<8x8xf64>, %1: memref<8x4xf64>, %2: memref<8x4xf64>):
    %3 = "arith.constant"() {value = 0.0} : () -> (f64)
    "linalg.fill"(%3, %2) : (f64, memref<8x4xf64>) -> ()
    "linalg.generic"(%0, %1, %2) ({
    ^bb2(%4: f64, %5: f64, %6: f64):
      %7 = "arith.mulf"(%4, %5) : (f64, f64) -> (f64)
      %8 = "arith.addf"(%7, %6) : (f64, f64) -> (f64)
      "linalg.yield"(%8) : (f64) -> ()
    }) {indexing_maps = [affine_map<(d0, d1, d2) -> (d0, d2)>, affine_map<(d0, d1, d2) -> (d2, d1)>, affine_map<(d0, d1, d2) -> (d0, d1)>], iterator_types = iterators<parallel, parallel, reduction>, num_inputs = 2} : (memref<8x8xf64>, memref<8x4xf64>, memref<8x4xf64>) -> ()
    "func.return"() : () -> ()
  }) {function_type = (memref<8x8xf64>, memref<8x4xf64>, memref<8x4xf64>) -> (), sym_name = @matmul} : () -> ()
}) : () -> ()
