//! Bring your own kernel: define a computation the suite does not ship —
//! a fused scale-and-accumulate `Z[i,j] = X[i,j] * Y[i,j] + Z0[i,j]` —
//! at the `linalg` level and let the backend generate streamed, FREP'd
//! Snitch assembly for it.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use mlb_core::{compile, Flow, PipelineOptions};
use mlb_dialects::{arith, builtin, func, linalg};
use mlb_ir::{AffineMap, Context, IteratorType, Type};
use mlb_isa::TCDM_BASE;
use mlb_sim::{assemble, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, m) = (8i64, 16i64);
    let mut ctx = Context::new();
    let (module, top) = builtin::build_module(&mut ctx);
    let buf = Type::memref(vec![n, m], Type::F64);
    let (_f, entry) = func::build_func(
        &mut ctx,
        top,
        "fma_ew",
        vec![buf.clone(), buf.clone(), buf.clone(), buf],
        vec![],
    );
    let x = ctx.block_args(entry)[0];
    let y = ctx.block_args(entry)[1];
    let z0 = ctx.block_args(entry)[2];
    let z = ctx.block_args(entry)[3];
    let id = AffineMap::identity(2);
    linalg::build_generic(
        &mut ctx,
        entry,
        vec![x, y, z0],
        vec![z],
        vec![id.clone(), id.clone(), id.clone(), id],
        vec![IteratorType::Parallel, IteratorType::Parallel],
        None,
        |ctx, body, args| {
            let prod = arith::binary(ctx, body, arith::MULF, args[0], args[1]);
            vec![arith::binary(ctx, body, arith::ADDF, prod, args[2])]
        },
    );
    func::build_return(&mut ctx, entry, vec![]);

    let compiled = compile(&mut ctx, module, Flow::Ours(PipelineOptions::full()))?;
    println!("{}", compiled.assembly);

    // Note: three inputs exceed the two read-stream data movers, so the
    // backend streams X and Y and keeps Z0 as explicit (but cheap,
    // strength-reduced) loads — inspect the assembly above to see the
    // mixed access strategy.
    let program = assemble(&compiled.assembly)?;
    let mut machine = Machine::new();
    let len = (n * m) as usize;
    let bytes = (len * 8) as u32;
    let (xa, ya, z0a, za) =
        (TCDM_BASE, TCDM_BASE + bytes, TCDM_BASE + 2 * bytes, TCDM_BASE + 3 * bytes);
    let xs: Vec<f64> = (0..len).map(|i| i as f64).collect();
    let ys = vec![2.0; len];
    let z0s = vec![100.0; len];
    machine.write_f64_slice(xa, &xs).unwrap();
    machine.write_f64_slice(ya, &ys).unwrap();
    machine.write_f64_slice(z0a, &z0s).unwrap();
    let counters = machine.call(&program, "fma_ew", &[xa, ya, z0a, za])?;
    let out = machine.read_f64_slice(za, len).unwrap();
    assert_eq!(out[7], 7.0 * 2.0 + 100.0);
    println!(
        "fused multiply-add per element: {} cycles for {} elements \
         ({:.2} FLOPs/cycle, FPU utilization {:.1}%)",
        counters.cycles,
        len,
        counters.throughput(),
        100.0 * counters.fpu_utilization()
    );
    Ok(())
}
