//! The paper's Table 3 as an interactive tour: compile the MatMul
//! micro-kernel with each optimization enabled incrementally and watch
//! the generated assembly and the measured counters change.
//!
//! ```sh
//! cargo run --release --example matmul_ablation
//! ```

use mlb_core::{Flow, PipelineOptions};
use mlb_kernels::{compile_and_run, Instance, Kind, Precision, Shape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The exact kernel of Table 3: C(1x5) = A(1x200) x B(200x5), f64.
    let instance = Instance::new(Kind::MatMul, Shape::nmk(1, 5, 200), Precision::F64);
    println!("kernel: {instance}\n");

    for (label, opts) in PipelineOptions::ablation_ladder() {
        let outcome = compile_and_run(&instance, Flow::Ours(opts), 7)?;
        let c = &outcome.counters;
        let (_, regs) = &outcome.compilation.functions[0];
        println!("=== {label} ===");
        println!(
            "  registers: {} FP / {} int | loads {} stores {} fmadd {} | \
             {} cycles | occupancy {:.2}%",
            regs.num_fp(),
            regs.num_int(),
            c.loads(),
            c.stores(),
            c.fmadd,
            c.cycles,
            100.0 * c.fpu_utilization()
        );
        // Show the inner computation: the lines around the (first) frep
        // or the innermost loop label.
        let asm = &outcome.compilation.assembly;
        let interesting: Vec<&str> = asm
            .lines()
            .skip_while(|l| !l.contains("frep") && !l.contains(".Lmatmul_1"))
            .take(8)
            .collect();
        if !interesting.is_empty() {
            println!("  inner kernel:");
            for line in interesting {
                println!("  |{line}");
            }
        }
        println!();
    }
    println!(
        "Compare with Table 3 of the paper: the load/store/FMAdd/FRep counts\n\
         match rung for rung; see EXPERIMENTS.md for the side-by-side numbers."
    );
    Ok(())
}
