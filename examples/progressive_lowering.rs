//! A tour of the multi-level backend's abstractions: print the IR of one
//! kernel after each stage of the progressive lowering (Figure 5 of the
//! paper), from `linalg.generic` down to allocated RISC-V dialects and
//! final assembly.
//!
//! ```sh
//! cargo run --release --example progressive_lowering
//! ```

use mlb_core::passes::{
    canonicalize::Canonicalize, convert_linalg::ConvertLinalgToMemrefStream,
    convert_to_rv::ConvertToRv, dce::DeadCodeElimination, fuse_fill::MemrefStreamFuseFill,
    lower_streaming::LowerSnitchStream, lower_to_loops::ConvertMemrefStreamToLoops,
    peephole::RvPeephole, rv_scf_to_cf::RvScfToCf, rv_scf_to_frep::RvScfToFrep,
    scalar_replacement::MemrefStreamScalarReplacement, unroll_and_jam::MemrefStreamUnrollAndJam,
};
use mlb_core::{full_registry, regalloc};
use mlb_ir::{print_op, Context, Pass};
use mlb_kernels::{Instance, Kind, Precision, Shape};
use mlb_riscv::rv_func;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = Instance::new(Kind::MatMul, Shape::nmk(1, 5, 40), Precision::F64);
    let mut ctx = Context::new();
    let module = instance.build_module(&mut ctx);
    let registry = full_registry();

    let stage = |title: &str, ctx: &Context, module| {
        println!("////////// {title} //////////");
        println!("{}", print_op(ctx, module));
    };

    stage("1. linalg level (input)", &ctx, module);

    ConvertLinalgToMemrefStream.run(&mut ctx, &registry, module)?;
    MemrefStreamFuseFill.run(&mut ctx, &registry, module)?;
    MemrefStreamScalarReplacement.run(&mut ctx, &registry, module)?;
    MemrefStreamUnrollAndJam::default().run(&mut ctx, &registry, module)?;
    stage("2. memref_stream level (scheduled: fused fill, unroll-and-jam)", &ctx, module);

    ConvertMemrefStreamToLoops { streams: true }.run(&mut ctx, &registry, module)?;
    Canonicalize.run(&mut ctx, &registry, module)?;
    stage("3. scf loops inside a streaming region", &ctx, module);

    ConvertToRv::default().run(&mut ctx, &registry, module)?;
    RvPeephole.run(&mut ctx, &registry, module)?;
    RvScfToFrep.run(&mut ctx, &registry, module)?;
    LowerSnitchStream.run(&mut ctx, &registry, module)?;
    DeadCodeElimination.run(&mut ctx, &registry, module)?;
    stage("4. rv dialects with FREP and SSR configuration (unallocated)", &ctx, module);

    for func in ctx.walk_named(module, rv_func::FUNC) {
        let stats = regalloc::allocate_function(&mut ctx, func)?;
        println!(
            "// allocated spill-free: {} FP, {} integer registers\n",
            stats.num_fp(),
            stats.num_int()
        );
    }
    stage("5. after spill-free register allocation", &ctx, module);

    RvScfToCf.run(&mut ctx, &registry, module)?;
    let asm = mlb_riscv::emit_module(&ctx, module)?;
    println!("////////// 6. final assembly //////////\n{asm}");
    Ok(())
}
