//! Quickstart: compile an element-wise kernel from the `linalg` level to
//! Snitch assembly with the multi-level backend, then execute it on the
//! bundled cycle-approximate simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mlb_core::{compile, Flow, PipelineOptions};
use mlb_dialects::{arith, builtin, func, linalg};
use mlb_ir::{AffineMap, Context, IteratorType, Type};
use mlb_isa::TCDM_BASE;
use mlb_sim::{assemble, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the kernel as a `linalg.generic`: Z = X + Y over 64 doubles.
    let n = 64i64;
    let mut ctx = Context::new();
    let (module, top) = builtin::build_module(&mut ctx);
    let buf = Type::memref(vec![n], Type::F64);
    let (_func, entry) =
        func::build_func(&mut ctx, top, "vecadd", vec![buf.clone(), buf.clone(), buf], vec![]);
    let x = ctx.block_args(entry)[0];
    let y = ctx.block_args(entry)[1];
    let z = ctx.block_args(entry)[2];
    let id = AffineMap::identity(1);
    linalg::build_generic(
        &mut ctx,
        entry,
        vec![x, y],
        vec![z],
        vec![id.clone(), id.clone(), id],
        vec![IteratorType::Parallel],
        None,
        |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[1])],
    );
    func::build_return(&mut ctx, entry, vec![]);

    // 2. Compile with the full multi-level pipeline: streams + FREP.
    let compiled = compile(&mut ctx, module, Flow::Ours(PipelineOptions::full()))?;
    println!("passes: {}\n", compiled.passes.join(" -> "));
    println!("generated assembly:\n{}", compiled.assembly);

    // 3. Run on the Snitch simulator.
    let program = assemble(&compiled.assembly)?;
    let mut machine = Machine::new();
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let ys: Vec<f64> = (0..n).map(|i| (i * i) as f64).collect();
    let (xa, ya, za) = (TCDM_BASE, TCDM_BASE + 512, TCDM_BASE + 1024);
    machine.write_f64_slice(xa, &xs).unwrap();
    machine.write_f64_slice(ya, &ys).unwrap();
    let counters = machine.call(&program, "vecadd", &[xa, ya, za])?;

    let out = machine.read_f64_slice(za, n as usize).unwrap();
    assert_eq!(out[10], 10.0 + 100.0);
    println!(
        "ran in {} cycles | {:.2} FLOPs/cycle | FPU utilization {:.1}% | \
         explicit FP loads: {} (streams carried the data)",
        counters.cycles,
        counters.throughput(),
        100.0 * counters.fpu_utilization(),
        counters.fp_loads,
    );
    Ok(())
}
