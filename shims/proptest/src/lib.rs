#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to the crates registry, so this
//! workspace ships a minimal property-testing engine that covers exactly
//! the surface the in-tree tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, range and
//! tuple/array strategies, [`collection::vec`], [`strategy::Just`],
//! [`arbitrary::any`] and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! - **no shrinking** — a failing case reports its generated inputs
//!   verbatim (cases are deterministic per index, so failures reproduce);
//! - **deterministic seeding** — case `i` of every test derives from a
//!   fixed seed, so runs are bit-reproducible with no persistence files;
//! - the default case count is 64 (the real default of 256 is overridable
//!   the same way, via `ProptestConfig::with_cases`).

use std::fmt;

/// Failure raised by the `prop_assert*` macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG driving case generation.
pub mod test_runner {
    /// Splitmix64 generator; one instance per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case` (deterministic).
        pub fn for_case(case: u64) -> TestRng {
            TestRng { state: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case.wrapping_add(0x5EED)) }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)` (`bound` > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+),)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|i| self[i].generate(rng))
        }
    }

    /// Generates any value of a type with a full-range default strategy.
    #[derive(Debug, Clone)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: super::arbitrary::Arbitrary + Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Default full-range generation for primitive types.
pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy generating any value of `T` (mirrors `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary + std::fmt::Debug>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A length specification: an exact count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty length range for collection::vec");
            SizeRange(r)
        }
    }

    /// A `Vec` strategy with a length drawn from `len` and elements from
    /// `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with lengths in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into().0 }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a test running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ( $( $strat, )+ );
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    let generated =
                        $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    let rendered = format!("{:?}", generated);
                    let ( $( $arg, )+ ) = generated;
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {case}: {e}\n  inputs: {rendered}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property body (soft failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body (soft failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property body (soft failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in -10i64..10) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-10..10).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0usize..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn map_and_flat_map_compose(
            (len, v) in (1usize..5).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u32..100, n..n + 1))
            }),
        ) {
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn tuples_arrays_and_any(t in (0u8..2, [any::<u64>(), any::<u64>()]), s in any::<usize>()) {
            let (small, words) = t;
            prop_assert!(small < 2);
            // Consuming the generated values is enough; this checks the
            // plumbing compiles and runs for every case.
            let _ = (words, s);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 1..20);
        let a: Vec<Vec<u64>> =
            (0..10).map(|i| s.generate(&mut crate::test_runner::TestRng::for_case(i))).collect();
        let b: Vec<Vec<u64>> =
            (0..10).map(|i| s.generate(&mut crate::test_runner::TestRng::for_case(i))).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property `fails` failed at case")]
    fn failing_property_reports_inputs() {
        proptest! {
            #[allow(dead_code)]
            fn fails(x in 0u8..10) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        fails();
    }
}
