#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to the crates registry, so this
//! workspace ships a minimal, deterministic replacement covering exactly
//! the surface the code base uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`]
//! and [`Rng::gen_range`] over float and integer ranges. The generator is
//! xoshiro256++ seeded through splitmix64 — statistically solid for test
//! data, not a cryptographic source, and *not* stream-compatible with the
//! real `rand` crate (all in-tree users only require determinism across
//! runs of the same binary, which this provides).

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable constructor, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                if span == 0 {
                    // Full-width range (e.g. i64::MIN..i64::MAX wrapped): any word.
                    return rng.next_u64() as $t;
                }
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The default deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0f32..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(av, bv);
    }
}
