#![warn(missing_docs)]

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to the crates registry, so the
//! `mlb-bench` micro-benchmarks link against this minimal harness
//! instead: the same `criterion_group!`/`criterion_main!` entry points
//! and `Criterion`/`Bencher` surface, implemented as a plain
//! median-of-samples timing loop printing ns/iter to stdout. It has no
//! statistical machinery, HTML reports or command-line filtering.

use std::time::Instant;

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver handed to every registered function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Times closures; handed to benchmark bodies.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`, recording per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then a handful of multi-iteration samples.
        black_box(f());
        let mut iters_per_sample = 1u64;
        // Calibrate to >= ~1 ms per sample, capped to keep runs short.
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed.as_millis() >= 1 || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        self.samples.clear();
        for _ in 0..10 {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name}: no samples (b.iter never called)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
        println!("{name}: median {median:.1} ns/iter (min {lo:.1}, max {hi:.1})");
    }
}

/// Registers benchmark functions under a group name, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
