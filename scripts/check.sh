#!/usr/bin/env bash
# Full offline gate: everything CI runs, runnable on a disconnected
# machine (all dependencies resolve to in-tree shims under shims/).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo build --release --offline
run cargo clippy --offline --all-targets -- -D warnings
run cargo test -q --offline
# Stage-level differential testing: the whole kernel suite under every
# flow with two fixed operand seeds, plus a fixed-seed randomized sweep.
run ./target/release/mlbc difftest --seeds 2 --fuzz 50

echo "All checks passed."
