#!/usr/bin/env bash
# Full offline gate: everything CI runs, runnable on a disconnected
# machine (all dependencies resolve to in-tree shims under shims/).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo build --release --offline
run cargo clippy --offline --all-targets -- -D warnings
run cargo test -q --offline
# Engine equivalence: the whole suite again with the simulator pinned to
# the checked reference stepper (the default is the superblock engine),
# so the fallback path can never bit-rot. The dedicated equivalence
# suite races both engines in-process on top of that.
echo "==> MLB_SIM_ENGINE=checked cargo test -q --offline"
MLB_SIM_ENGINE=checked cargo test -q --offline
run cargo test -q --offline --test engine_equivalence
# Stage-level differential testing: the whole kernel suite under every
# flow with two fixed operand seeds, plus a fixed-seed randomized sweep.
run ./target/release/mlbc difftest --seeds 2 --fuzz 50
# The same sweep with the checked stepper: difftest's simulator leg must
# not depend on which engine executes it.
echo "==> MLB_SIM_ENGINE=checked mlbc difftest --seeds 1 --fuzz 25"
MLB_SIM_ENGINE=checked ./target/release/mlbc difftest --seeds 1 --fuzz 25
# The same stage-level check with the ours flow sharded across two
# cluster cores: sharded stages are interpreted once per hart and the
# result must stay bit-identical to the single-core reference.
run ./target/release/mlbc difftest --seeds 2 --flows ours --cores 2
# Performance baseline: regenerates the benchmark report (to target/, the
# tracked baseline is only refreshed deliberately) and fails if the
# deterministic rewrite-work counters regress >10% vs the checked-in
# BENCH_compiler_perf.json.
run ./target/release/mlbc bench-json --check BENCH_compiler_perf.json \
    --out target/BENCH_compiler_perf.json
# Layer-graph smoke: the chained-interpreter graph difftest plus a
# batched fused-vs-unfused bench, each under both simulator engines
# (the bench-json gate above already fails on a >10% fused-cycle
# regression of the graph scenarios), and a service-backed run that
# schedules the per-stage compiles over the worker pool.
run ./target/release/mlbc graph difftest --graph nsnet2 --cores 2
run ./target/release/mlbc graph difftest --graph eltwise-chain
echo "==> MLB_SIM_ENGINE=checked mlbc graph difftest --graph nsnet2 --cores 2"
MLB_SIM_ENGINE=checked ./target/release/mlbc graph difftest --graph nsnet2 --cores 2
run ./target/release/mlbc graph bench --graph nsnet2 --batch 8 --cores 2 \
    --graph-json target/graph-nsnet2-bench.json
test -s target/graph-nsnet2-bench.json
echo "==> MLB_SIM_ENGINE=checked mlbc graph bench --graph eltwise-chain --batch 8 --cores 2"
MLB_SIM_ENGINE=checked ./target/release/mlbc graph bench --graph eltwise-chain \
    --batch 8 --cores 2
run ./target/release/mlbc graph run --graph nsnet2 --batch 4 --cores 2 --workers 4
# Profiler smoke: the source-attributed profile must emit valid JSON
# (validated by the in-tree parser via tests, re-checked here on the
# release binary), and a 2-core run must export a Chrome trace.
run ./target/release/mlbc profile examples/matmul.mlir --profile-json - > /dev/null
run ./target/release/mlbc profile examples/matmul.mlir --cores 2 \
    --chrome-trace target/matmul-trace.json
test -s target/matmul-trace.json
# Compile-service smoke: a deterministic batch of 64 mixed jobs (every
# kernel and job kind, both drivers, several cluster widths) through
# `mlbc serve` on 4 workers, run twice against the same service. Every
# job must succeed and the second round must be served (at least) 90%
# from the content-addressed cache; the serve exit code enforces both.
# The run also exports the telemetry artifacts: the metrics JSON must
# record a met hit-rate gate and no failed jobs, and the Chrome trace
# must be non-empty (CI uploads it as an artifact).
echo "==> mlbc serve smoke (64-job batch, 4 workers, warm repeat, telemetry)"
./target/release/mlbc serve --emit-demo-batch 64 > target/serve-batch.jsonl
run ./target/release/mlbc serve --batch target/serve-batch.jsonl \
    --workers 4 --repeat 2 --min-hit-rate 90 \
    --metrics-json target/serve-metrics.json \
    --trace-out target/serve-trace.json > target/serve-responses.jsonl
test -s target/serve-responses.jsonl
test -s target/serve-trace.json
# The hit-rate verdict in the metrics file comes from the telemetry
# counters; the smoke run above already exited 0, so the recorded gate
# must agree that it was met and the failure list must be empty.
grep -q '"met":true' target/serve-metrics.json
grep -q '"failed_ids":\[\]' target/serve-metrics.json
grep -q '"traceEvents"' target/serve-trace.json
# Autotuner smoke: a small-budget schedule search over 2 workers, run
# twice against the same service. The second round must be a pure
# tune-cache hit with byte-identical output (the tune exit code
# enforces both), and the JSON report must be non-empty.
run ./target/release/mlbc tune matmul-8x16x16 --budget 12 --cores-max 2 \
    --workers 2 --repeat 2 --tune-json target/tune-matmul.json > /dev/null
test -s target/tune-matmul.json

echo "All checks passed."
