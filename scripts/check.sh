#!/usr/bin/env bash
# Full offline gate: everything CI runs, runnable on a disconnected
# machine (all dependencies resolve to in-tree shims under shims/).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo build --release --offline
run cargo clippy --offline --all-targets -- -D warnings
run cargo test -q --offline

echo "All checks passed."
