//! Umbrella crate: re-exports the multi-level compiler backend stack.
//!
//! See the workspace README for the project overview and DESIGN.md for
//! the paper-reproduction design.

pub use mlb_core as backend;
pub use mlb_dialects as dialects;
pub use mlb_ir as ir;
pub use mlb_isa as isa;
pub use mlb_kernels as kernels;
pub use mlb_riscv as riscv;
pub use mlb_service as service;
pub use mlb_service::json;
pub use mlb_sim as sim;
