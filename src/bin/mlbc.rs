//! `mlbc` — the micro-kernel compiler driver.
//!
//! Compiles a module written in the generic textual IR format (see
//! `mlb_ir::parser`) down to Snitch assembly, optionally dumping the IR
//! instead, and optionally executing the result on the bundled
//! simulator.
//!
//! ```sh
//! mlbc kernel.mlir                        # assembly on stdout
//! mlbc kernel.mlir --flow clang           # comparison flow
//! mlbc kernel.mlir --no-unroll-and-jam    # ablation knobs (Table 3)
//! mlbc kernel.mlir --emit ir              # parse + verify + reprint
//! ```

use std::io::Read;
use std::process::ExitCode;

use mlb_core::{compile, full_registry, Flow, PipelineOptions};
use mlb_ir::{parse_module, print_op, Context};

const USAGE: &str = "\
usage: mlbc <input.mlir | -> [options]

options:
  --emit asm|ir       output assembly (default) or the parsed IR
  --flow ours|mlir|clang
                      compilation flow (default: ours)
  --no-streams        disable stream semantic registers
  --no-scalar-replacement
  --no-frep           disable hardware loops
  --no-fuse-fill      keep output initialization separate
  --no-unroll-and-jam
  --help              this text
";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("mlbc: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<String, String> {
    let mut input: Option<String> = None;
    let mut emit_ir = false;
    let mut flow_name = "ours".to_string();
    let mut opts = PipelineOptions::full();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(USAGE.to_string()),
            "--emit" => {
                let what = iter.next().ok_or("--emit needs a value")?;
                emit_ir = match what.as_str() {
                    "ir" => true,
                    "asm" => false,
                    other => return Err(format!("unknown --emit kind `{other}`")),
                };
            }
            "--flow" => {
                flow_name = iter.next().ok_or("--flow needs a value")?;
            }
            "--no-streams" => opts.streams = false,
            "--no-scalar-replacement" => opts.scalar_replacement = false,
            "--no-frep" => opts.frep = false,
            "--no-fuse-fill" => opts.fuse_fill = false,
            "--no-unroll-and-jam" => opts.unroll_and_jam = false,
            other if input.is_none() && !other.starts_with('-') || other == "-" => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    let input = input.ok_or_else(|| format!("no input file\n{USAGE}"))?;
    let source = if input == "-" {
        let mut text = String::new();
        std::io::stdin().read_to_string(&mut text).map_err(|e| e.to_string())?;
        text
    } else {
        std::fs::read_to_string(&input).map_err(|e| format!("{input}: {e}"))?
    };

    let mut ctx = Context::new();
    let module = parse_module(&mut ctx, &source).map_err(|e| e.to_string())?;
    let registry = full_registry();
    registry.verify(&ctx, module).map_err(|e| format!("verification: {e}"))?;

    if emit_ir {
        return Ok(print_op(&ctx, module));
    }
    let flow = match flow_name.as_str() {
        "ours" => Flow::Ours(opts),
        "mlir" => Flow::MlirLike,
        "clang" => Flow::ClangLike,
        other => return Err(format!("unknown flow `{other}`")),
    };
    let compiled = compile(&mut ctx, module, flow).map_err(|e| e.to_string())?;
    Ok(compiled.assembly)
}
