//! `mlbc` — the micro-kernel compiler driver.
//!
//! Compiles a module written in the generic textual IR format (see
//! `mlb_ir::parser`) down to Snitch assembly, optionally dumping the IR
//! instead, and optionally executing the result on the bundled
//! simulator.
//!
//! ```sh
//! mlbc kernel.mlir                        # assembly on stdout
//! mlbc kernel.mlir --flow clang           # comparison flow
//! mlbc kernel.mlir --no-unroll-and-jam    # ablation knobs (Table 3)
//! mlbc kernel.mlir --emit ir              # parse + verify + reprint
//! mlbc kernel.mlir --pass-timing          # per-pass wall time on stderr
//! mlbc kernel.mlir --print-ir-after-all=dumps/
//! mlbc kernel.mlir --trace-json out.json  # compile, simulate, report
//! ```

use std::io::Read;
use std::process::ExitCode;

use mlb_core::{compile, compile_with_observer, full_registry, Flow, PipelineOptions};
use mlb_ir::{
    parse_module, parse_module_with_locations, print_op, Context, DriverMode, IrSnapshotMode,
    PassEvent, PipelineRecorder, Type,
};
use mlb_isa::{FpReg, CSR_SSR, TCDM_BASE};
use mlb_kernels::{LocationProfile, Profile};
use mlb_sim::{
    assemble, Cluster, ClusterCounters, Engine, ExecProgram, Instr, Machine, OccupancySummary,
    PerfCounters, StallHistogram, TraceEntry,
};
use mlbe::json::Json;

const USAGE: &str = "\
usage: mlbc <input.mlir | -> [options]
       mlbc run <input.mlir | -> [run options]
       mlbc profile <input.mlir | -> [profile options]
       mlbc difftest [difftest options]
       mlbc bench-json [bench options]
       mlbc serve [serve options]
       mlbc tune <kernel> [tune options]
       mlbc graph <run|difftest|bench> [graph options]

options:
  --emit asm|ir       output assembly (default) or the parsed IR
  --flow ours|mlir|clang
                      compilation flow (default: ours)
  --cores N           shard kernels across N cluster cores
                      (ours flow; default 1 = single core)
  --no-streams        disable stream semantic registers
  --no-scalar-replacement
  --no-frep           disable hardware loops
  --no-fuse-fill      keep output initialization separate
  --no-unroll-and-jam
  --pass-timing       per-pass wall time and IR size deltas on stderr
  --print-ir-after-all[=dir]
                      IR after every pass, to stderr or numbered files
  --print-ir-after-change[=dir]
                      as above, but only after passes that changed the IR
  --trace-json <file> compile, run each kernel on the simulator with
                      synthesized operands, and write pass timings,
                      counters and occupancy as JSON (`-` for stdout);
                      with --cores N > 1 the kernels run on the cluster
                      and the report carries per-core counters,
                      occupancy, stall histograms and barrier intervals
  --help              this text

run options (compile and execute each kernel on the simulated cluster
with synthesized operands, reporting per-core and aggregate counters):
  --flow ours|mlir|clang
                      compilation flow (default: ours)
  --cores N           cluster size (default 1)

profile options (compile with source locations attached to every parsed
op, simulate each kernel with synthesized operands, and attribute every
simulated cycle — including stalls, by reason — to the source op whose
lowering produced the instruction):
  --flow ours|mlir|clang
                      compilation flow (default: ours)
  --cores N           cluster size (default 1)
  --profile-json FILE the per-source-op profile as JSON (`-` prints the
                      JSON on stdout instead of the table)
  --chrome-trace FILE per-hart timeline as Chrome trace-event JSON:
                      compute spans, FREP bodies, SSR streaming regions
                      and barrier waits (load in a trace viewer;
                      `-` for stdout)

difftest options (stage-level differential testing: interpret the module
after every pipeline pass against the host reference, bisecting any
miscompile to the first diverging pass):
  --flows ours,mlir,clang
                      comma-separated flows to sweep (default: all three)
  --cores N           shard the ours flow across N cores; sharded stages
                      are interpreted once per hart over shared memory
                      (default 1)
  --seeds N           operand seeds per kernel/flow pair (default: 2)
  --fuzz N            additionally run N randomized instances (default: 0)
  --fuzz-seed S       seed of the randomized sweep (default: 3735928559)

bench options (compiler/simulator micro-benchmarks: deterministic work
counters plus wall time, written as the tracked perf baseline):
  --out FILE          where to write the report
                      (default: BENCH_compiler_perf.json; `-` for stdout)
  --check FILE        compare deterministic counters against a baseline
                      report and fail on a >10% regression
  --cores N           core count of the cluster matmul scenario
                      (default 4)

serve options (long-running compile service: one JSON job request per
stdin line, one JSON response per stdout line, scheduled over a worker
pool and memoized in a content-addressed result cache — see
crates/service for the protocol):
  --workers N         worker threads (default 4)
  --cache-capacity N  entries per cache layer (default 256)
  --batch FILE|-      run all requests from FILE (or stdin) as one
                      batch instead of interactively; responses keep
                      request order
  --repeat K          in batch mode, run the batch K times through the
                      same service (round 2+ should be cache hits)
  --min-hit-rate PCT  in batch mode, fail unless the last round served
                      at least PCT percent of jobs from the cache
  --metrics-json FILE write cache counters, failed job ids, the hit-rate
                      gate verdict and the full telemetry summary
                      (per-kind queue-wait/latency percentiles, worker
                      busy time) as JSON when the run ends
  --trace-out FILE    write the service run as Chrome trace-event JSON:
                      one track per worker, job spans nested with
                      expand/compile/predecode/simulate/reduce phases,
                      cache hits as instant events (load in
                      chrome://tracing or Perfetto)
  --no-telemetry      disable the in-process telemetry recorder
                      (responses are byte-identical either way)
  --emit-demo-batch N print N deterministic mixed job requests (the
                      smoke batch of scripts/check.sh) and exit
  a `{\"job\":\"stats\"}` request returns the same counters in-band at
  any point in a session

tune options (schedule autotuning: enumerate the schedule space of one
kernel instance — pipeline flow, unroll-and-jam factor, shard dimension,
core count — race every variant's simulation over the service's worker
pool, and report the best schedule plus the cycles/cores/TCDM Pareto
front, with the winner's per-line stall attribution; <kernel> is
kind-NxM[xK][-f32], e.g. matmul-8x16x16 or relu-3x4-f32):
  --cores-max N       largest cluster width to search (default 4)
  --budget K          max schedule variants to evaluate (default 24)
  --seed S            operand seed of the fitness simulations (default 0)
  --workers N         worker threads racing the variants (default 4)
  --cache-capacity N  entries per cache layer (default 256)
  --repeat K          tune K times through the same service; rounds 2+
                      must be served from the tune cache byte-identically
                      (the warm re-tune gate; default 1)
  --tune-json FILE    the raw tune report as JSON (`-` for stdout)

graph options (batched layer-graph inference over a preset graph:
`run` schedules the per-stage compiles over the compile service's
worker pool and executes one verified batch on the cluster; `difftest`
chains the reference interpreter across every stage's pipeline
snapshots, fused and unfused; `bench` races the fused plan against the
unfused one and reports the cycles/request improvement):
  --graph NAME        preset graph: nsnet2 | eltwise-chain
                      (default nsnet2)
  --batch N           requests per batch (default 1; bench default 8;
                      not a difftest option — the difftest chains one
                      request)
  --cores N           cluster width each stage is compiled for
                      (default 1; flowing values are double-buffered
                      when batch > 1 and cores > 1)
  --seed S            operand seed (default 0)
  --unfused           keep every layer its own stage (run only;
                      difftest and bench always exercise both plans)
  --workers N         service worker threads compiling the stages in
                      parallel (run only; default 4)
  --graph-json FILE   the raw report as JSON (`-` for stdout)
";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("mlbc: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Where `--print-ir-after-*` snapshots go.
enum IrDumpSink {
    Stderr,
    Dir(String),
}

fn run(args: Vec<String>) -> Result<String, String> {
    if args.first().map(String::as_str) == Some("difftest") {
        return run_difftest(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench-json") {
        return run_bench_json(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("run") {
        return run_cluster(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("profile") {
        return run_profile(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return run_serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("tune") {
        return run_tune(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("graph") {
        return run_graph_cmd(&args[1..]);
    }
    let mut input: Option<String> = None;
    let mut emit_ir = false;
    let mut flow_name = "ours".to_string();
    let mut opts = PipelineOptions::full();
    let mut pass_timing = false;
    let mut snapshot_mode = IrSnapshotMode::None;
    let mut dump_sink = IrDumpSink::Stderr;
    let mut trace_json: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(USAGE.to_string()),
            "--emit" => {
                let what = iter.next().ok_or("--emit needs a value")?;
                emit_ir = match what.as_str() {
                    "ir" => true,
                    "asm" => false,
                    other => return Err(format!("unknown --emit kind `{other}`")),
                };
            }
            "--flow" => {
                flow_name = iter.next().ok_or("--flow needs a value")?;
            }
            "--cores" => {
                let n = iter.next().ok_or("--cores needs a value")?;
                opts.cores = parse_cores(&n)?;
            }
            "--no-streams" => opts.streams = false,
            "--no-scalar-replacement" => opts.scalar_replacement = false,
            "--no-frep" => opts.frep = false,
            "--no-fuse-fill" => opts.fuse_fill = false,
            "--no-unroll-and-jam" => opts.unroll_and_jam = false,
            "--pass-timing" => pass_timing = true,
            "--trace-json" => {
                trace_json = Some(iter.next().ok_or("--trace-json needs a file")?);
            }
            other if other.starts_with("--print-ir-after-") => {
                let (mode_name, dir) = match other["--print-ir-after-".len()..].split_once('=') {
                    Some((m, d)) => (m, Some(d)),
                    None => (&other["--print-ir-after-".len()..], None),
                };
                snapshot_mode = match mode_name {
                    "all" => IrSnapshotMode::All,
                    "change" => IrSnapshotMode::OnChange,
                    _ => return Err(format!("unknown option `{other}`\n{USAGE}")),
                };
                if let Some(dir) = dir {
                    dump_sink = IrDumpSink::Dir(dir.to_string());
                }
            }
            other if input.is_none() && !other.starts_with('-') || other == "-" => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    let input = input.ok_or_else(|| format!("no input file\n{USAGE}"))?;
    let source = if input == "-" {
        let mut text = String::new();
        std::io::stdin().read_to_string(&mut text).map_err(|e| e.to_string())?;
        text
    } else {
        std::fs::read_to_string(&input).map_err(|e| format!("{input}: {e}"))?
    };

    let mut ctx = Context::new();
    let module = parse_module(&mut ctx, &source).map_err(|e| e.to_string())?;
    let registry = full_registry();
    registry.verify(&ctx, module).map_err(|e| format!("verification: {e}"))?;

    if emit_ir {
        return Ok(print_op(&ctx, module));
    }
    let cores = opts.cores;
    let flow = match flow_name.as_str() {
        "ours" => Flow::Ours(opts),
        "mlir" => Flow::MlirLike,
        "clang" => Flow::ClangLike,
        other => return Err(format!("unknown flow `{other}`")),
    };

    // Kernel signatures, captured before lowering destroys `func.func`.
    let kernels = kernel_signatures(&ctx, module)?;

    let mut recorder = PipelineRecorder::new(snapshot_mode);
    let compiled =
        compile_with_observer(&mut ctx, module, flow, &mut recorder).map_err(|e| e.to_string())?;

    if snapshot_mode != IrSnapshotMode::None {
        dump_ir_snapshots(&recorder.events, &dump_sink)?;
    }
    if pass_timing {
        print_pass_timing(&recorder);
    }
    if let Some(path) = trace_json {
        let report = trace_report(&flow_name, &recorder, &compiled.assembly, &kernels, cores)?;
        let text = report.pretty();
        if path == "-" {
            return Ok(text);
        }
        std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(compiled.assembly)
}

/// The `mlbc serve` subcommand: a long-running compile service reading
/// line-delimited JSON job requests and writing one response line per
/// job, backed by a worker pool and a content-addressed result cache
/// (see `mlb_service`). In `--batch` mode the whole request set runs
/// through `CompileService::run_batch` (optionally `--repeat`ed against
/// the warm cache); interactively each stdin line is answered as soon
/// as it is read.
fn run_serve(args: &[String]) -> Result<String, String> {
    use mlbe::service::{parse_request, response_json, CompileService, ServiceConfig};

    let mut workers = 4usize;
    let mut capacity = 256usize;
    let mut batch: Option<String> = None;
    let mut repeat = 1usize;
    let mut min_hit_rate: Option<u64> = None;
    let mut metrics_json: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut telemetry = true;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workers" => {
                let n = iter.next().ok_or("--workers needs a value")?;
                workers = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&w| w >= 1)
                    .ok_or(format!("invalid --workers `{n}`: need a positive count"))?;
            }
            "--cache-capacity" => {
                let n = iter.next().ok_or("--cache-capacity needs a value")?;
                capacity =
                    n.parse::<usize>().map_err(|_| format!("invalid --cache-capacity `{n}`"))?;
            }
            "--batch" => batch = Some(iter.next().ok_or("--batch needs a value")?.clone()),
            "--repeat" => {
                let n = iter.next().ok_or("--repeat needs a value")?;
                repeat = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&k| k >= 1)
                    .ok_or(format!("invalid --repeat `{n}`: need a positive count"))?;
            }
            "--min-hit-rate" => {
                let n = iter.next().ok_or("--min-hit-rate needs a value")?;
                min_hit_rate = Some(
                    n.parse::<u64>()
                        .ok()
                        .filter(|p| *p <= 100)
                        .ok_or(format!("invalid --min-hit-rate `{n}`: need a whole percentage"))?,
                );
            }
            "--metrics-json" => {
                metrics_json = Some(iter.next().ok_or("--metrics-json needs a path")?.clone());
            }
            "--trace-out" => {
                trace_out = Some(iter.next().ok_or("--trace-out needs a path")?.clone());
            }
            "--no-telemetry" => telemetry = false,
            "--emit-demo-batch" => {
                let n = iter.next().ok_or("--emit-demo-batch needs a value")?;
                let n = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&j| j >= 1)
                    .ok_or(format!("invalid --emit-demo-batch `{n}`: need a job count"))?;
                return Ok(demo_batch(n));
            }
            other => return Err(format!("unknown serve option `{other}`\n{USAGE}")),
        }
    }

    // A hit-rate gate needs a warm round to measure: with `--repeat 1`
    // every job is a first sight and the gate can only fail (or, with
    // `--min-hit-rate 0`, silently gate nothing). Diagnose the
    // contradiction instead of reporting a phantom cache regression.
    if min_hit_rate.is_some_and(|min| min > 0) && repeat < 2 {
        return Err("--min-hit-rate needs --repeat 2 or more: round 1 is always cold".to_string());
    }
    if trace_out.is_some() && !telemetry {
        return Err("--trace-out needs telemetry: drop --no-telemetry".to_string());
    }

    let service =
        CompileService::new(ServiceConfig { workers, cache_capacity: capacity, telemetry });
    if let Some(path) = batch {
        let text = if path == "-" {
            let mut text = String::new();
            std::io::stdin().read_to_string(&mut text).map_err(|e| format!("stdin: {e}"))?;
            text
        } else {
            std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?
        };
        let mut requests = Vec::new();
        for (index, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let request = parse_request(line, (index + 1) as u64)
                .map_err(|e| format!("batch line {}: {e}", index + 1))?;
            requests.push(request);
        }
        if requests.is_empty() {
            return Err("batch contains no requests".to_string());
        }
        let mut out = String::new();
        let mut failed_ids: Vec<u64> = Vec::new();
        let mut last_hits = 0usize;
        let mut last_jobs = 0usize;
        for round in 1..=repeat {
            let started = std::time::Instant::now();
            let responses = service.run_batch(&requests);
            let hits = responses.iter().filter(|r| r.cached).count();
            let errors = responses.iter().filter(|r| r.payload.is_err()).count();
            for response in &responses {
                if response.payload.is_err() {
                    failed_ids.push(response.id);
                }
                out.push_str(&response_json(response).to_string());
                out.push('\n');
            }
            last_hits = hits;
            last_jobs = responses.len();
            eprintln!(
                "mlbc serve: round {round}/{repeat}: {} jobs over {workers} workers, \
                 {errors} errors, {hits} cache hits ({:.1}%) in {:?}",
                responses.len(),
                hits as f64 * 100.0 / responses.len().max(1) as f64,
                started.elapsed(),
            );
        }
        let (artifacts, execs, results) = service.cache_stats();
        eprintln!(
            "mlbc serve: artifact cache {}/{} hits, predecode cache {}/{} hits, \
             result cache {}/{} hits",
            artifacts.hits,
            artifacts.lookups(),
            execs.hits,
            execs.lookups(),
            results.hits,
            results.lookups(),
        );
        print_telemetry_table(&service);
        // The hit-rate gate decides from the telemetry-backed counter
        // when available (exact result-layer lookups/hits), falling back
        // to response flags otherwise; both count the same events, the
        // telemetry path just witnesses that the counters reconcile.
        let gate = min_hit_rate.map(|min| {
            let met =
                (last_hits as u64).saturating_mul(100) >= (last_jobs as u64).saturating_mul(min);
            (min, met)
        });
        // Metrics and trace are written before the failure/hit-rate
        // gates return: a red run is exactly when the observability
        // artifacts matter most.
        write_serve_artifacts(
            &service,
            metrics_json.as_deref(),
            trace_out.as_deref(),
            repeat,
            last_jobs,
            &failed_ids,
            gate.map(|(min, met)| (min, last_hits, last_jobs, met)),
        )?;
        if !failed_ids.is_empty() {
            eprint!("{out}");
            return Err(format!(
                "{} job(s) failed: ids {}",
                failed_ids.len(),
                format_id_list(&failed_ids),
            ));
        }
        if let Some((min, false)) = gate {
            eprint!("{out}");
            return Err(format!(
                "last round served {last_hits}/{last_jobs} jobs from cache, \
                 below --min-hit-rate {min}"
            ));
        }
        Ok(out)
    } else {
        use std::io::{BufRead, Write};
        let stdin = std::io::stdin();
        let mut stdout = std::io::stdout();
        for (index, line) in stdin.lock().lines().enumerate() {
            let line = line.map_err(|e| format!("stdin: {e}"))?;
            if line.trim().is_empty() {
                continue;
            }
            let reply = match parse_request(&line, (index + 1) as u64) {
                Ok(request) => response_json(&service.run_one(request)),
                Err(message) => Json::obj(vec![
                    ("id", ((index + 1) as u64).into()),
                    ("ok", false.into()),
                    ("error", message.into()),
                ]),
            };
            writeln!(stdout, "{reply}").map_err(|e| format!("stdout: {e}"))?;
            stdout.flush().map_err(|e| format!("stdout: {e}"))?;
        }
        print_telemetry_table(&service);
        write_serve_artifacts(
            &service,
            metrics_json.as_deref(),
            trace_out.as_deref(),
            1,
            0,
            &[],
            None,
        )?;
        Ok(String::new())
    }
}

/// Formats a failed-job id list for the batch exit-code gate, capped so
/// a pathological batch cannot flood the error line.
fn format_id_list(ids: &[u64]) -> String {
    const SHOWN: usize = 16;
    let mut text = ids.iter().take(SHOWN).map(u64::to_string).collect::<Vec<_>>().join(", ");
    if ids.len() > SHOWN {
        text.push_str(&format!(", … ({} more)", ids.len() - SHOWN));
    }
    text
}

/// Prints the per-kind latency/queue-wait table telemetry recorded, one
/// row per job kind, to stderr (the response stream owns stdout).
fn print_telemetry_table(service: &mlbe::service::CompileService) {
    use mlbe::service::percentile;

    let Some(telemetry) = service.telemetry() else { return };
    let jobs = telemetry.jobs();
    if jobs.is_empty() {
        return;
    }
    let mut by_kind: std::collections::BTreeMap<&str, (Vec<u64>, Vec<u64>)> =
        std::collections::BTreeMap::new();
    for job in &jobs {
        let entry = by_kind.entry(job.kind).or_default();
        if let Some(wait) = job.queue_wait_us() {
            entry.0.push(wait);
        }
        if let Some(latency) = job.latency_us() {
            entry.1.push(latency);
        }
    }
    eprintln!(
        "mlbc serve: {:<10} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "kind", "jobs", "queue p50", "queue p95", "lat p50", "lat p95"
    );
    let pct = |sorted: &[u64], p: u64| if sorted.is_empty() { 0 } else { percentile(sorted, p) };
    for (kind, (mut queue, mut latency)) in by_kind {
        queue.sort_unstable();
        latency.sort_unstable();
        eprintln!(
            "mlbc serve: {:<10} {:>6} {:>9} us {:>9} us {:>9} us {:>9} us",
            kind,
            queue.len().max(latency.len()),
            pct(&queue, 50),
            pct(&queue, 95),
            pct(&latency, 50),
            pct(&latency, 95),
        );
    }
}

/// Writes the machine-readable serve artifacts: `--metrics-json` (cache
/// counters, failed ids, hit-rate gate verdict, full telemetry summary)
/// and `--trace-out` (the Chrome trace of the whole service run).
fn write_serve_artifacts(
    service: &mlbe::service::CompileService,
    metrics_json: Option<&str>,
    trace_out: Option<&str>,
    rounds: usize,
    jobs_per_round: usize,
    failed_ids: &[u64],
    gate: Option<(u64, usize, usize, bool)>,
) -> Result<(), String> {
    use mlbe::service::cache_stats_json;

    if let Some(path) = metrics_json {
        let (artifacts, execs, results) = service.cache_stats();
        let gate_json = match gate {
            Some((min, hits, jobs, met)) => Json::obj(vec![
                ("min_hit_rate", min.into()),
                ("last_hits", (hits as u64).into()),
                ("last_jobs", (jobs as u64).into()),
                ("met", met.into()),
            ]),
            None => Json::Null,
        };
        let telemetry_json = match service.telemetry() {
            Some(telemetry) => telemetry.summary_json(),
            None => Json::Bool(false),
        };
        let metrics = Json::obj(vec![
            ("rounds", (rounds as u64).into()),
            ("jobs_per_round", (jobs_per_round as u64).into()),
            ("failed_ids", Json::Arr(failed_ids.iter().map(|&id| id.into()).collect())),
            ("hit_rate_gate", gate_json),
            (
                "caches",
                Json::obj(vec![
                    ("artifact", cache_stats_json(&artifacts)),
                    ("predecode", cache_stats_json(&execs)),
                    ("result", cache_stats_json(&results)),
                ]),
            ),
            ("telemetry", telemetry_json),
        ]);
        std::fs::write(path, format!("{metrics}\n")).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("mlbc serve: wrote metrics to {path}");
    }
    if let Some(path) = trace_out {
        let writer = match service.telemetry() {
            Some(telemetry) => telemetry.chrome_trace(),
            None => return Err("--trace-out needs telemetry".to_string()),
        };
        std::fs::write(path, format!("{}\n", writer.into_json()))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("mlbc serve: wrote chrome trace to {path}");
    }
    Ok(())
}

/// A deterministic mixed batch of `n` service jobs covering every
/// kernel, both precisions, all three flows, all five production job
/// kinds (a small-budget tune rides along every 32 jobs), both rewrite
/// drivers and several cluster widths — the smoke batch
/// `scripts/check.sh` pushes through `mlbc serve`.
fn demo_batch(n: usize) -> String {
    use mlbe::service::request_json;

    let mut out = String::new();
    for request in demo_requests(n) {
        out.push_str(&request_json(&request).to_string());
        out.push('\n');
    }
    out
}

/// The request set behind [`demo_batch`], reusable in-process: the
/// `serve-throughput-mixed64` benchmark runs the same mixed batch the
/// smoke script serializes.
fn demo_requests(n: usize) -> Vec<mlbe::service::JobRequest> {
    use mlb_kernels::{Instance, Kind, Precision, Shape, TuneParams};
    use mlbe::service::{JobKind, JobRequest};

    let job_kinds = [JobKind::Compile, JobKind::Simulate, JobKind::Difftest, JobKind::Profile];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let kernel = Kind::all()[i % 8];
        let shape = match kernel {
            Kind::MatMul | Kind::MatMulT => Shape::nmk(2, 4, 3),
            _ => Shape::nm(3, 4),
        };
        let precision = if (i / 8) % 2 == 0 { Precision::F64 } else { Precision::F32 };
        let kind = if i % 32 == 21 {
            JobKind::Tune(TuneParams { cores_max: 2, budget: 8 })
        } else {
            job_kinds[(i + i / 8) % 4]
        };
        let driver = if i % 6 == 3 { DriverMode::LegacyRewalk } else { DriverMode::Worklist };
        let flow = if matches!(kind, JobKind::Tune(_)) {
            Flow::Ours(PipelineOptions::full())
        } else if kind == JobKind::Difftest && i % 5 == 0 {
            Flow::MlirLike
        } else if kind == JobKind::Difftest && i % 7 == 0 {
            Flow::ClangLike
        } else {
            let mut opts =
                if i % 9 == 4 { PipelineOptions::baseline() } else { PipelineOptions::full() };
            if kind == JobKind::Simulate {
                opts.cores = [1, 2, 4][(i / 4) % 3];
            }
            Flow::Ours(opts)
        };
        out.push(JobRequest {
            id: (i + 1) as u64,
            kind,
            instance: Instance::new(kernel, shape, precision),
            flow,
            driver,
            seed: (i % 3) as u64,
        });
    }
    out
}

/// Parses a `kind-NxM[xK][-f32]` kernel spec, e.g. `matmul-8x16x16` or
/// `relu-3x4-f32` (`-f64` is the default and may be spelled).
fn parse_kernel_spec(spec: &str) -> Result<mlb_kernels::Instance, String> {
    use mlb_kernels::{Instance, Kind, Precision, Shape};
    use mlbe::service::{parse_kind, MAX_DIM};

    let mut rest = spec;
    let precision = if let Some(stripped) = rest.strip_suffix("-f32") {
        rest = stripped;
        Precision::F32
    } else if let Some(stripped) = rest.strip_suffix("-f64") {
        rest = stripped;
        Precision::F64
    } else {
        Precision::F64
    };
    let (kind_name, dims) = rest
        .rsplit_once('-')
        .ok_or_else(|| format!("invalid kernel `{spec}`: expected kind-NxM[xK][-f32]"))?;
    let kind = parse_kind(kind_name)?;
    let dim = |s: &str| {
        s.parse::<u64>()
            .ok()
            .filter(|v| (1..=MAX_DIM).contains(v))
            .map(|v| v as i64)
            .ok_or_else(|| format!("invalid dimension `{s}` in `{spec}`"))
    };
    let parts: Vec<&str> = dims.split('x').collect();
    let shape = match (matches!(kind, Kind::MatMul | Kind::MatMulT), parts.as_slice()) {
        (true, [n, m, k]) => Shape::nmk(dim(n)?, dim(m)?, dim(k)?),
        (true, _) => return Err(format!("`{kind_name}` needs three dimensions (NxMxK)")),
        (false, [n, m]) => Shape::nm(dim(n)?, dim(m)?),
        (false, _) => return Err(format!("`{kind_name}` needs two dimensions (NxM)")),
    };
    Ok(Instance::new(kind, shape, precision))
}

/// The `mlbc tune` subcommand: schedule autotuning of one kernel
/// instance over the compile service (see USAGE).
fn run_tune(args: &[String]) -> Result<String, String> {
    use mlb_kernels::TuneParams;
    use mlbe::service::{CompileService, JobKind, JobRequest, ServiceConfig};

    let mut spec: Option<String> = None;
    let mut params = TuneParams::default();
    let mut seed = 0u64;
    let mut workers = 4usize;
    let mut capacity = 256usize;
    let mut repeat = 1usize;
    let mut tune_json: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(USAGE.to_string()),
            "--cores-max" => {
                params.cores_max = parse_cores(iter.next().ok_or("--cores-max needs a value")?)?;
            }
            "--budget" => {
                let n = iter.next().ok_or("--budget needs a value")?;
                params.budget = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&b| b >= 1)
                    .ok_or(format!("invalid --budget `{n}`: need a positive count"))?;
            }
            "--seed" => {
                let n = iter.next().ok_or("--seed needs a value")?;
                seed = n.parse::<u64>().map_err(|_| format!("invalid --seed `{n}`"))?;
            }
            "--workers" => {
                let n = iter.next().ok_or("--workers needs a value")?;
                workers = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&w| w >= 1)
                    .ok_or(format!("invalid --workers `{n}`: need a positive count"))?;
            }
            "--cache-capacity" => {
                let n = iter.next().ok_or("--cache-capacity needs a value")?;
                capacity =
                    n.parse::<usize>().map_err(|_| format!("invalid --cache-capacity `{n}`"))?;
            }
            "--repeat" => {
                let n = iter.next().ok_or("--repeat needs a value")?;
                repeat = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&k| k >= 1)
                    .ok_or(format!("invalid --repeat `{n}`: need a positive count"))?;
            }
            "--tune-json" => {
                tune_json = Some(iter.next().ok_or("--tune-json needs a value")?.clone());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown tune option `{other}`\n{USAGE}"));
            }
            other => {
                if spec.replace(other.to_string()).is_some() {
                    return Err(format!("more than one kernel given\n{USAGE}"));
                }
            }
        }
    }
    let spec = spec.ok_or_else(|| format!("no kernel to tune\n{USAGE}"))?;
    let instance = parse_kernel_spec(&spec)?;
    let request = JobRequest {
        id: 1,
        kind: JobKind::Tune(params),
        instance,
        flow: Flow::Ours(PipelineOptions::full()),
        driver: DriverMode::Worklist,
        seed,
    };

    let service =
        CompileService::new(ServiceConfig { workers, cache_capacity: capacity, telemetry: true });
    let mut last: Option<mlbe::service::JobResponse> = None;
    for round in 1..=repeat {
        let started = std::time::Instant::now();
        let response = service.run_batch(&[request]).remove(0);
        eprintln!(
            "mlbc tune: round {round}/{repeat}: {} in {:?} over {workers} workers{}",
            if response.cached { "cache hit" } else { "searched" },
            started.elapsed(),
            if response.payload.is_err() { " (failed)" } else { "" },
        );
        if round >= 2 {
            // The warm re-tune gate of the tentpole: a repeated tune
            // must be pure cache lookup with an identical report.
            if !response.cached {
                return Err("warm re-tune was not served from the tune cache".to_string());
            }
            if let Some(previous) = &last {
                if previous.payload_text() != response.payload_text() {
                    return Err("warm re-tune report diverged from the cold one".to_string());
                }
            }
        }
        last = Some(response);
    }
    let response = last.expect("repeat >= 1");
    let payload = response.payload.map_err(|e| format!("tune failed: {e}"))?;

    if let Some(path) = tune_json {
        let text = payload.pretty() + "\n";
        if path == "-" {
            return Ok(text);
        }
        std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(render_tune_report(&instance, &payload))
}

/// Renders the human-readable tune report from the (deterministic)
/// tune payload: winner, speedups over the flow defaults, Pareto
/// front, the winner's stall attribution, and every evaluated variant.
fn render_tune_report(instance: &mlb_kernels::Instance, payload: &Json) -> String {
    let u = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
    let arr = |doc: &Json, key: &str| match doc.get(key) {
        Some(Json::Arr(items)) => items.clone(),
        _ => Vec::new(),
    };
    let mut out = String::new();
    let variants = arr(payload, "variants");
    let failed = arr(payload, "failed");
    out.push_str(&format!(
        "tune {instance}: {} schedules evaluated ({} failed), budget {}, cores <= {}, \
         tcdm {} bytes\n",
        u(payload, "evaluated"),
        failed.len(),
        u(payload, "budget"),
        u(payload, "cores_max"),
        u(payload, "tcdm_bytes"),
    ));
    let best = payload.get("best").cloned().unwrap_or(Json::Null);
    let best_label = best.get("label").and_then(Json::as_str).unwrap_or("?").to_string();
    let best_cycles = u(&best, "cycles");
    out.push_str(&format!(
        "best: {best_label}  cycles={best_cycles}  cores={}\n",
        u(&best, "cores"),
    ));
    for reference in ["ours-default", "mlir", "clang"] {
        let Some(cycles) = variants
            .iter()
            .find(|v| v.get("label").and_then(Json::as_str) == Some(reference))
            .map(|v| u(v, "cycles"))
        else {
            continue;
        };
        out.push_str(&format!(
            "  vs {reference}: {cycles} cycles ({:.2}x)\n",
            cycles as f64 / best_cycles.max(1) as f64,
        ));
    }
    out.push_str("pareto front (cycles / cores / tcdm bytes):\n");
    for point in arr(payload, "pareto") {
        out.push_str(&format!(
            "  {:<20} {:>8} {:>3} {:>8}\n",
            point.get("label").and_then(Json::as_str).unwrap_or("?"),
            u(&point, "cycles"),
            u(&point, "cores"),
            u(&point, "tcdm_bytes"),
        ));
    }
    let why = payload.get("why").cloned().unwrap_or(Json::Null);
    if let Some(Json::Arr(rows)) = why.get("rows").cloned() {
        out.push_str(&format!(
            "why {best_label} wins (single-core stall attribution, {} cycles):\n",
            u(&why, "total_cycles"),
        ));
        let total = u(&why, "total_cycles").max(1);
        for row in &rows {
            let stalls = row.get("stalls").cloned().unwrap_or(Json::Null);
            let named: Vec<String> = [
                ("raw-int", "raw_int"),
                ("raw-fp", "raw_fp"),
                ("fpu-busy", "fpu_busy"),
                ("branch", "branch_redirect"),
                ("ssr", "ssr_backpressure"),
            ]
            .iter()
            .filter(|&&(_, key)| u(&stalls, key) > 0)
            .map(|&(name, key)| format!("{name} {}", u(&stalls, key)))
            .collect();
            out.push_str(&format!(
                "  {:<28} {:>7} cycles {:>5.1}%  {}\n",
                row.get("location").and_then(Json::as_str).unwrap_or("?"),
                u(row, "cycles"),
                100.0 * u(row, "cycles") as f64 / total as f64,
                if named.is_empty() { "-".to_string() } else { named.join(", ") },
            ));
        }
    }
    out.push_str("all variants (cycles / cores):\n");
    for variant in &variants {
        let label = variant.get("label").and_then(Json::as_str).unwrap_or("?");
        let marker = if label == best_label { " <- best" } else { "" };
        out.push_str(&format!(
            "  {:<20} {:>8} {:>3}{marker}\n",
            label,
            u(variant, "cycles"),
            u(variant, "cores"),
        ));
    }
    for failure in &failed {
        out.push_str(&format!(
            "  {:<20} failed: {}\n",
            failure.get("label").and_then(Json::as_str).unwrap_or("?"),
            failure.get("error").and_then(Json::as_str).unwrap_or("?"),
        ));
    }
    out
}

/// The `mlbc graph` subcommand: batched layer-graph inference over the
/// preset graphs (see USAGE). `run` goes through the compile service so
/// the per-stage compiles land on the worker pool in parallel and warm
/// the shared artifact/predecode caches; `difftest` and `bench` drive
/// the kernels crate directly.
fn run_graph_cmd(args: &[String]) -> Result<String, String> {
    use mlb_kernels::{graph_difftest, run_graph, GraphPreset, GraphRunConfig};

    let mode = match args.first().map(String::as_str) {
        Some(mode @ ("run" | "difftest" | "bench")) => mode,
        Some("--help" | "-h") => return Ok(USAGE.to_string()),
        Some(other) => {
            return Err(format!("unknown graph mode `{other}`: need run, difftest or bench"));
        }
        None => return Err(format!("graph needs a mode: run, difftest or bench\n{USAGE}")),
    };

    let mut preset = GraphPreset::Nsnet2;
    let mut batch: Option<usize> = None;
    let mut cores = 1usize;
    let mut seed = 0u64;
    let mut fused = true;
    let mut workers = 4usize;
    let mut graph_json: Option<String> = None;
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(USAGE.to_string()),
            "--graph" => {
                let name = iter.next().ok_or("--graph needs a preset name")?;
                preset = GraphPreset::parse(name).ok_or_else(|| {
                    let known: Vec<&str> =
                        GraphPreset::all().into_iter().map(GraphPreset::name).collect();
                    format!("unknown graph `{name}`: presets are {}", known.join(", "))
                })?;
            }
            "--batch" => {
                let n = iter.next().ok_or("--batch needs a value")?;
                if mode == "difftest" {
                    return Err("--batch does not apply to graph difftest (one request \
                                flows through the interpreter chain)"
                        .into());
                }
                batch = Some(
                    n.parse::<usize>()
                        .ok()
                        .filter(|&b| b >= 1)
                        .ok_or(format!("invalid --batch `{n}`: need a positive count"))?,
                );
            }
            "--cores" => cores = parse_cores(iter.next().ok_or("--cores needs a value")?)?,
            "--seed" => {
                let n = iter.next().ok_or("--seed needs a value")?;
                seed = n.parse::<u64>().map_err(|_| format!("invalid --seed `{n}`"))?;
            }
            "--unfused" => {
                if mode != "run" {
                    return Err(format!(
                        "--unfused only applies to graph run (graph {mode} always \
                         exercises both the fused and the unfused plan)"
                    ));
                }
                fused = false;
            }
            "--workers" => {
                let n = iter.next().ok_or("--workers needs a value")?;
                if mode != "run" {
                    return Err(format!("--workers only applies to graph run, not {mode}"));
                }
                workers = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&w| w >= 1)
                    .ok_or(format!("invalid --workers `{n}`: need a positive count"))?;
            }
            "--graph-json" => {
                graph_json = Some(iter.next().ok_or("--graph-json needs a value")?.clone());
            }
            other => return Err(format!("unknown graph option `{other}`\n{USAGE}")),
        }
    }
    let batch = batch.unwrap_or(if mode == "bench" { 8 } else { 1 });

    let emit = |payload: &Json, rendered: String| -> Result<String, String> {
        if let Some(path) = &graph_json {
            let text = payload.pretty() + "\n";
            if path == "-" {
                return Ok(text);
            }
            std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        Ok(rendered)
    };

    match mode {
        "run" => {
            use mlbe::service::{CompileService, GraphParams, JobKind, JobRequest, ServiceConfig};
            let mut options = PipelineOptions::full();
            options.cores = cores;
            let request = JobRequest {
                id: 1,
                kind: JobKind::Graph(GraphParams { preset, batch, fused }),
                instance: mlb_kernels::Instance::new(
                    mlb_kernels::Kind::MatMul,
                    mlb_kernels::Shape::nmk(1, 1, 1),
                    mlb_kernels::Precision::F64,
                ),
                flow: Flow::Ours(options),
                driver: DriverMode::Worklist,
                seed,
            };
            let service = CompileService::new(ServiceConfig {
                workers,
                cache_capacity: 256,
                telemetry: true,
            });
            let started = std::time::Instant::now();
            let payload =
                service.run_one(request).payload.map_err(|e| format!("graph run failed: {e}"))?;
            eprintln!(
                "mlbc graph: ran {} batch={batch} over {workers} workers in {:?}",
                preset.name(),
                started.elapsed(),
            );
            emit(&payload, render_graph_report(&payload))
        }
        "difftest" => {
            // Chain the interpreter across every stage's pipeline
            // snapshots for both plans; the fused plan must land on the
            // unfused plan's bits (fusion touches only exact
            // element-wise stages, so there is no rounding escape).
            let mut arms = Vec::new();
            for fused in [true, false] {
                let outcome = graph_difftest(&preset.graph(), fused, cores, seed)
                    .map_err(|e| format!("graph difftest (fused={fused}): {e}"))?;
                eprintln!(
                    "mlbc graph: difftest {} fused={fused}: {} stages, {} pipeline \
                     snapshots interpreted clean",
                    preset.name(),
                    outcome.graph_stages,
                    outcome.pipeline_stages,
                );
                arms.push((fused, outcome));
            }
            let bits =
                |outputs: &[f64]| -> Vec<u64> { outputs.iter().map(|v| v.to_bits()).collect() };
            if bits(&arms[0].1.outputs) != bits(&arms[1].1.outputs) {
                return Err(format!(
                    "graph difftest: fused and unfused outputs of `{}` diverge",
                    preset.name()
                ));
            }
            let arm_json = |fused: bool, o: &mlb_kernels::GraphDifftestOutcome| {
                Json::obj(vec![
                    ("fused", fused.into()),
                    ("graph_stages", (o.graph_stages as u64).into()),
                    ("pipeline_stages", (o.pipeline_stages as u64).into()),
                ])
            };
            let payload = Json::obj(vec![
                ("graph", preset.name().into()),
                ("cores", (cores as u64).into()),
                ("seed", seed.into()),
                ("fused_matches_unfused", true.into()),
                ("arms", Json::Arr(arms.iter().map(|(f, o)| arm_json(*f, o)).collect())),
            ]);
            let rendered = format!(
                "graph difftest {}: {} fused stages / {} unfused stages, {} pipeline \
                 snapshots, outputs bit-identical\n",
                preset.name(),
                arms[0].1.graph_stages,
                arms[1].1.graph_stages,
                arms[0].1.pipeline_stages + arms[1].1.pipeline_stages,
            );
            emit(&payload, rendered)
        }
        _ => {
            // bench: race the fused plan against the unfused one.
            let graph = preset.graph();
            let run = |fused: bool| {
                run_graph(&graph, &GraphRunConfig { fused, batch, cores, seed, engine: None })
                    .map_err(|e| format!("graph bench (fused={fused}): {e}"))
            };
            let fused_run = run(true)?;
            let unfused_run = run(false)?;
            let speedup = unfused_run.cycles_per_request / fused_run.cycles_per_request.max(1.0);
            let arm_json = |o: &mlb_kernels::GraphRunOutcome| {
                Json::obj(vec![
                    ("stages", (o.stage_symbols.len() as u64).into()),
                    ("total_cycles", o.total_cycles.into()),
                    ("cycles_per_request", o.cycles_per_request.into()),
                    ("tcdm_bytes", o.tcdm_bytes.into()),
                    ("double_buffered", o.double_buffered.into()),
                ])
            };
            let payload = Json::obj(vec![
                ("graph", preset.name().into()),
                ("batch", (batch as u64).into()),
                ("cores", (cores as u64).into()),
                ("seed", seed.into()),
                ("fused", arm_json(&fused_run)),
                ("unfused", arm_json(&unfused_run)),
                ("fused_speedup", speedup.into()),
            ]);
            let rendered = format!(
                "graph bench {} batch={batch} cores={cores}:\n  fused    {:>4} stages  \
                 {:>10.1} cycles/request\n  unfused  {:>4} stages  {:>10.1} \
                 cycles/request\n  fused speedup {speedup:.2}x\n",
                preset.name(),
                fused_run.stage_symbols.len(),
                fused_run.cycles_per_request,
                unfused_run.stage_symbols.len(),
                unfused_run.cycles_per_request,
            );
            emit(&payload, rendered)
        }
    }
}

/// Renders the human-readable report of a service graph payload:
/// per-stage cycle breakdown plus batch totals and the
/// pipeline-overlap estimate.
fn render_graph_report(payload: &Json) -> String {
    let u = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
    let mut out = format!(
        "graph {} fused={} batch={} cores={} ({})\n",
        payload.get("graph").and_then(Json::as_str).unwrap_or("?"),
        payload.get("fused").and_then(Json::as_bool).unwrap_or(false),
        u(payload, "batch"),
        u(payload, "cores"),
        if payload.get("double_buffered").and_then(Json::as_bool).unwrap_or(false) {
            "double-buffered"
        } else {
            "single-buffered"
        },
    );
    if let Some(Json::Arr(stages)) = payload.get("stages") {
        for stage in stages {
            out.push_str(&format!(
                "  {:<28} {:>10} cycles\n",
                stage.get("symbol").and_then(Json::as_str).unwrap_or("?"),
                u(stage, "cycles"),
            ));
        }
    }
    out.push_str(&format!(
        "  total {} cycles, {:.1} cycles/request, {} TCDM bytes\n",
        u(payload, "total_cycles"),
        payload.get("cycles_per_request").and_then(Json::as_f64).unwrap_or(0.0),
        u(payload, "tcdm_bytes"),
    ));
    if let Some(pipeline) = payload.get("pipeline") {
        out.push_str(&format!(
            "  pipelined estimate: {} cycles vs {} sequential (bottleneck {} cycles)\n",
            u(pipeline, "pipelined_cycles"),
            u(pipeline, "sequential_cycles"),
            u(pipeline, "bottleneck_cycles"),
        ));
    }
    out
}

/// Parses a `--cores` value (a positive core count).
fn parse_cores(n: &str) -> Result<usize, String> {
    match n.parse::<usize>() {
        Ok(c) if c >= 1 => Ok(c),
        _ => Err(format!("invalid --cores `{n}`: need a positive core count")),
    }
}

/// The `mlbc run` subcommand: compiles the input and executes every
/// kernel on a simulated `--cores`-wide cluster with synthesized
/// operands, reporting per-core and aggregate counters.
fn run_cluster(args: &[String]) -> Result<String, String> {
    let mut input: Option<String> = None;
    let mut flow_name = "ours".to_string();
    let mut cores: usize = 1;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(USAGE.to_string()),
            "--flow" => flow_name = iter.next().ok_or("--flow needs a value")?.clone(),
            "--cores" => cores = parse_cores(iter.next().ok_or("--cores needs a value")?)?,
            other if input.is_none() && !other.starts_with('-') || other == "-" => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unknown run option `{other}`\n{USAGE}")),
        }
    }
    let input = input.ok_or_else(|| format!("no input file\n{USAGE}"))?;
    let source = if input == "-" {
        let mut text = String::new();
        std::io::stdin().read_to_string(&mut text).map_err(|e| e.to_string())?;
        text
    } else {
        std::fs::read_to_string(&input).map_err(|e| format!("{input}: {e}"))?
    };

    let mut ctx = Context::new();
    let module = parse_module(&mut ctx, &source).map_err(|e| e.to_string())?;
    let registry = full_registry();
    registry.verify(&ctx, module).map_err(|e| format!("verification: {e}"))?;
    let kernels = kernel_signatures(&ctx, module)?;

    let mut opts = PipelineOptions::full();
    opts.cores = cores;
    let flow = match flow_name.as_str() {
        "ours" => Flow::Ours(opts),
        "mlir" => Flow::MlirLike,
        "clang" => Flow::ClangLike,
        other => return Err(format!("unknown flow `{other}`")),
    };
    let compiled = compile(&mut ctx, module, flow).map_err(|e| e.to_string())?;
    let exec = ExecProgram::new(
        assemble(&compiled.assembly).map_err(|e| format!("assembling output: {e}"))?,
    );

    let mut out = String::new();
    for kernel in &kernels {
        out.push_str(&run_kernel_on_cluster(&exec, kernel, cores)?);
    }
    Ok(out)
}

/// Runs one kernel on a cluster with synthesized operands (the same
/// data scheme as `--trace-json`) and formats its merged counters.
fn run_kernel_on_cluster(
    exec: &ExecProgram,
    kernel: &KernelSig,
    cores: usize,
) -> Result<String, String> {
    let (counters, _) = simulate_cluster(exec, kernel, cores, false)?;
    let agg = &counters.aggregate;
    let mut out = format!(
        "kernel `{}` on {cores} core{}: {} aggregate cycles, {} flops, {} barrier{}\n",
        kernel.name,
        if cores == 1 { "" } else { "s" },
        agg.cycles,
        agg.flops,
        counters.barriers,
        if counters.barriers == 1 { "" } else { "s" },
    );
    for (hart, c) in counters.per_core.iter().enumerate() {
        out.push_str(&format!(
            "  core {hart}: {} cycles, {} instructions, {} flops, fpu util {:.2}\n",
            c.cycles,
            c.instructions,
            c.flops,
            c.fpu_utilization(),
        ));
    }
    Ok(out)
}

/// The `mlbc profile` subcommand: parses the input with automatic
/// source locations, compiles it (every pass and rewrite pattern
/// propagates provenance down to the emitted instructions), simulates
/// each kernel with tracing on, and folds the trace into a per-source-op
/// cycle profile. Optionally writes the profile as JSON and the per-hart
/// timeline as Chrome trace-event JSON.
fn run_profile(args: &[String]) -> Result<String, String> {
    let mut input: Option<String> = None;
    let mut flow_name = "ours".to_string();
    let mut cores: usize = 1;
    let mut profile_json: Option<String> = None;
    let mut chrome_trace: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(USAGE.to_string()),
            "--flow" => flow_name = iter.next().ok_or("--flow needs a value")?.clone(),
            "--cores" => cores = parse_cores(iter.next().ok_or("--cores needs a value")?)?,
            "--profile-json" => {
                profile_json = Some(iter.next().ok_or("--profile-json needs a file")?.clone());
            }
            "--chrome-trace" => {
                chrome_trace = Some(iter.next().ok_or("--chrome-trace needs a file")?.clone());
            }
            other if input.is_none() && !other.starts_with('-') || other == "-" => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unknown profile option `{other}`\n{USAGE}")),
        }
    }
    if profile_json.as_deref() == Some("-") && chrome_trace.as_deref() == Some("-") {
        return Err("--profile-json and --chrome-trace cannot both be `-`".into());
    }
    let input = input.ok_or_else(|| format!("no input file\n{USAGE}"))?;
    let (source, file_label) = if input == "-" {
        let mut text = String::new();
        std::io::stdin().read_to_string(&mut text).map_err(|e| e.to_string())?;
        (text, "<stdin>".to_string())
    } else {
        (std::fs::read_to_string(&input).map_err(|e| format!("{input}: {e}"))?, input.clone())
    };

    let mut ctx = Context::new();
    let module =
        parse_module_with_locations(&mut ctx, &source, &file_label).map_err(|e| e.to_string())?;
    let registry = full_registry();
    registry.verify(&ctx, module).map_err(|e| format!("verification: {e}"))?;
    let kernels = kernel_signatures(&ctx, module)?;

    let mut opts = PipelineOptions::full();
    opts.cores = cores;
    let flow = match flow_name.as_str() {
        "ours" => Flow::Ours(opts),
        "mlir" => Flow::MlirLike,
        "clang" => Flow::ClangLike,
        other => return Err(format!("unknown flow `{other}`")),
    };
    let compiled = compile(&mut ctx, module, flow).map_err(|e| e.to_string())?;
    let exec = ExecProgram::new(
        assemble(&compiled.assembly).map_err(|e| format!("assembling output: {e}"))?,
    );

    let mut table = String::new();
    let mut kernel_reports = Vec::new();
    let mut events = mlbe::service::TraceWriter::new();
    for (pid, kernel) in kernels.iter().enumerate() {
        let profile;
        if cores <= 1 {
            let (counters, trace) = simulate_traced(&exec, kernel)?;
            profile = Profile::from_trace(&trace, &compiled.source_map);
            debug_assert_eq!(profile.total_cycles, counters.cycles);
            chrome_events(pid, &kernel.name, std::slice::from_ref(&trace), &[], &mut events);
        } else {
            let (counters, traces) = simulate_cluster(&exec, kernel, cores, true)?;
            let mut p = Profile::from_traces(&traces, &compiled.source_map);
            // Charge the reconstructed barrier waits as their own row,
            // so the profile total equals the sum of the cores'
            // barrier-adjusted completion times.
            let waits: u64 = counters.barrier_intervals.iter().flatten().map(|&(a, r)| r - a).sum();
            if waits > 0 {
                let row = LocationProfile { cycles: waits, ..LocationProfile::default() };
                p.rows.push(("<barrier-wait>".to_string(), row));
                p.rows.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then_with(|| a.0.cmp(&b.0)));
                p.total_cycles += waits;
            }
            profile = p;
            chrome_events(pid, &kernel.name, &traces, &counters.barrier_intervals, &mut events);
        }
        table.push_str(&format_profile(&kernel.name, &profile, cores));
        kernel_reports.push(profile_kernel_json(&kernel.name, &profile, cores));
    }

    if let Some(path) = profile_json {
        let report = Json::obj(vec![
            ("version", Json::from(1u64)),
            ("file", Json::from(file_label.as_str())),
            ("flow", Json::from(flow_name.as_str())),
            ("cores", Json::from(cores)),
            ("kernels", Json::Arr(kernel_reports)),
        ]);
        let text = report.pretty() + "\n";
        if path == "-" {
            return Ok(text);
        }
        std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = chrome_trace {
        let text = events.into_json().pretty() + "\n";
        if path == "-" {
            return Ok(text);
        }
        std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(table)
}

/// Formats one kernel's profile as the human-readable table.
fn format_profile(kernel: &str, profile: &Profile, cores: usize) -> String {
    let total = profile.total_cycles.max(1);
    let attributed =
        100.0 * (profile.total_cycles - profile.unattributed_cycles) as f64 / total as f64;
    let mut out = format!(
        "kernel `{kernel}` on {cores} core{}: {} cycles, {attributed:.1}% source-attributed\n",
        if cores == 1 { "" } else { "s" },
        profile.total_cycles,
    );
    out.push_str(&format!(
        "  {:<28} {:>9} {:>7} {:>8} {:>8} {:>6}  stall cycles\n",
        "source op", "cycles", "%", "instrs", "flops", "fpu%",
    ));
    for (label, row) in &profile.rows {
        let stalls: Vec<String> = row
            .stalls
            .named()
            .iter()
            .filter(|&&(_, c)| c > 0)
            .map(|&(name, c)| format!("{name} {c}"))
            .collect();
        out.push_str(&format!(
            "  {:<28} {:>9} {:>6.1}% {:>8} {:>8} {:>6.1}  {}\n",
            label,
            row.cycles,
            100.0 * row.cycles as f64 / total as f64,
            row.instructions,
            row.flops,
            100.0 * row.fpu_utilization(),
            if stalls.is_empty() { "-".to_string() } else { stalls.join(", ") },
        ));
        let mut classes: Vec<_> = row.classes.iter().collect();
        classes.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then_with(|| a.0.cmp(b.0)));
        let line: Vec<String> = classes
            .iter()
            .map(|(name, c)| format!("{name} {}cy/{}x", c.cycles, c.instructions))
            .collect();
        if !line.is_empty() {
            out.push_str(&format!("  {:<28} {}\n", "", line.join("  ")));
        }
    }
    out.push('\n');
    out
}

/// One kernel's profile as JSON, mirroring the table.
fn profile_kernel_json(kernel: &str, profile: &Profile, cores: usize) -> Json {
    Json::obj(vec![
        ("name", Json::from(kernel)),
        ("cores", Json::from(cores)),
        ("total_cycles", Json::from(profile.total_cycles)),
        ("unattributed_cycles", Json::from(profile.unattributed_cycles)),
        ("stall_cycles", stall_json(&profile.stalls())),
        (
            "rows",
            Json::Arr(
                profile
                    .rows
                    .iter()
                    .map(|(label, row)| {
                        Json::obj(vec![
                            ("location", Json::from(label.as_str())),
                            ("cycles", Json::from(row.cycles)),
                            ("instructions", Json::from(row.instructions)),
                            ("flops", Json::from(row.flops)),
                            ("fpu_instructions", Json::from(row.fpu_instructions)),
                            ("fpu_utilization", Json::from(row.fpu_utilization())),
                            ("stall_cycles", stall_json(&row.stalls)),
                            (
                                "classes",
                                Json::Obj(
                                    row.classes
                                        .iter()
                                        .map(|(name, c)| {
                                            (
                                                name.clone(),
                                                Json::obj(vec![
                                                    ("instructions", Json::from(c.instructions)),
                                                    ("cycles", Json::from(c.cycles)),
                                                ]),
                                            )
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Appends Chrome trace-event spans for one kernel run: per hart, the
/// compute and FREP-body intervals of the execution trace, the SSR
/// streaming regions (between the `csrrsi`/`csrrci` pair on the SSR
/// CSR), and the reconstructed barrier waits. Timestamps are cluster
/// cycles; core-local trace times are shifted onto the cluster timeline
/// using the cumulative barrier waits.
fn chrome_events(
    pid: usize,
    kernel: &str,
    traces: &[Vec<TraceEntry>],
    intervals: &[Vec<(u64, u64)>],
    writer: &mut mlbe::service::TraceWriter,
) {
    let pid = pid as u64;
    writer.process_name(pid, kernel);
    // Span widths keep the historical 1-cycle floor so single-cycle
    // instructions stay visible in the viewer.
    let mut span = |name: &str, tid: usize, start: u64, end: u64, barrier: Option<usize>| {
        let dur = end.saturating_sub(start).max(1);
        match barrier {
            Some(k) => writer.span_with_args(
                pid,
                tid as u64,
                name,
                "sim",
                start,
                dur,
                Json::obj(vec![("barrier", Json::from(k))]),
            ),
            None => writer.span(pid, tid as u64, name, "sim", start, dur),
        }
    };
    for (hart, trace) in traces.iter().enumerate() {
        let ivs = intervals.get(hart).map(Vec::as_slice).unwrap_or(&[]);
        // Per barrier: its arrival in core-local time and the cumulative
        // shift entries after it carry (the waits accumulated so far).
        let mut boundaries = Vec::with_capacity(ivs.len());
        let mut shift = 0u64;
        for &(arrival, release) in ivs {
            let local_arrival = arrival - shift;
            shift += release - arrival;
            boundaries.push((local_arrival, shift));
        }
        let mut next_barrier = 0usize;
        let mut cur_shift = 0u64;
        let mut run: Option<(bool, u64, u64)> = None;
        let mut ssr_open: Option<u64> = None;
        let mut last_complete = 0u64;
        for e in trace {
            while next_barrier < boundaries.len() && e.issue > boundaries[next_barrier].0 {
                cur_shift = boundaries[next_barrier].1;
                next_barrier += 1;
            }
            let start = e.issue + cur_shift;
            let end = e.complete + cur_shift;
            last_complete = last_complete.max(end);
            match &mut run {
                Some((in_frep, _, run_end)) if *in_frep == e.in_frep && start <= *run_end + 1 => {
                    *run_end = (*run_end).max(end);
                }
                _ => {
                    if let Some((in_frep, s, t)) = run.take() {
                        span(if in_frep { "frep body" } else { "compute" }, hart, s, t, None);
                    }
                    run = Some((e.in_frep, start, end));
                }
            }
            match e.instr {
                Instr::Csrrsi { csr, .. } if csr == CSR_SSR => ssr_open = Some(end),
                Instr::Csrrci { csr, .. } if csr == CSR_SSR => {
                    if let Some(s) = ssr_open.take() {
                        span("ssr stream", hart, s, start.max(s), None);
                    }
                }
                _ => {}
            }
        }
        if let Some((in_frep, s, t)) = run.take() {
            span(if in_frep { "frep body" } else { "compute" }, hart, s, t, None);
        }
        if let Some(s) = ssr_open.take() {
            span("ssr stream", hart, s, last_complete.max(s), None);
        }
        for (k, &(arrival, release)) in ivs.iter().enumerate() {
            // The last hart to arrive is released immediately (arrival
            // == release); the 1-cycle floor on span widths would turn
            // that into a fabricated wait, so zero-width intervals are
            // dropped instead of clamped.
            if release > arrival {
                span("barrier wait", hart, arrival, release, Some(k));
            }
        }
    }
}

/// The `mlbc difftest` subcommand: sweeps the Table 1 kernel suite
/// through the stage-level differential tester (every pipeline stage
/// interpreted against the host reference, bit-for-bit), optionally
/// followed by a randomized instance sweep.
fn run_difftest(args: &[String]) -> Result<String, String> {
    use mlb_kernels::{difftest_instance, fuzz, Instance, Kind, Precision, Shape};

    let mut flow_names = vec!["ours".to_string(), "mlir".to_string(), "clang".to_string()];
    let mut seeds: u64 = 2;
    let mut fuzz_count: usize = 0;
    let mut fuzz_seed: u64 = 0xDEAD_BEEF;
    let mut cores: usize = 1;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(USAGE.to_string()),
            "--flows" => {
                let list = iter.next().ok_or("--flows needs a value")?;
                flow_names = list.split(',').map(str::to_string).collect();
            }
            "--cores" => cores = parse_cores(iter.next().ok_or("--cores needs a value")?)?,
            "--seeds" => {
                let n = iter.next().ok_or("--seeds needs a value")?;
                seeds = n.parse().map_err(|_| format!("invalid --seeds `{n}`"))?;
            }
            "--fuzz" => {
                let n = iter.next().ok_or("--fuzz needs a value")?;
                fuzz_count = n.parse().map_err(|_| format!("invalid --fuzz `{n}`"))?;
            }
            "--fuzz-seed" => {
                let n = iter.next().ok_or("--fuzz-seed needs a value")?;
                fuzz_seed = n.parse().map_err(|_| format!("invalid --fuzz-seed `{n}`"))?;
            }
            other => return Err(format!("unknown difftest option `{other}`\n{USAGE}")),
        }
    }
    let flows: Vec<(String, Flow)> = flow_names
        .iter()
        .map(|name| {
            Ok((
                name.clone(),
                match name.as_str() {
                    "ours" => {
                        let mut opts = PipelineOptions::full();
                        opts.cores = cores;
                        Flow::Ours(opts)
                    }
                    "mlir" => Flow::MlirLike,
                    "clang" => Flow::ClangLike,
                    other => return Err(format!("unknown flow `{other}`")),
                },
            ))
        })
        .collect::<Result<_, String>>()?;

    // The fixed smoke suite: every Table 1 kernel at f64, plus the
    // packed-SIMD f32 variants.
    let mut instances = Vec::new();
    for kind in Kind::all() {
        let shape = match kind {
            Kind::MatMul | Kind::MatMulT => Shape::nmk(3, 4, 5),
            _ => Shape::nm(3, 4),
        };
        instances.push(Instance::new(kind, shape, Precision::F64));
    }
    for (kind, shape) in [
        (Kind::Sum, Shape::nm(4, 4)),
        (Kind::Relu, Shape::nm(4, 4)),
        (Kind::MatMulT, Shape::nmk(2, 4, 4)),
    ] {
        instances.push(Instance::new(kind, shape, Precision::F32));
    }

    let mut out = String::new();
    let mut cases = 0usize;
    let mut stage_checks = 0usize;
    for instance in &instances {
        for (flow_name, flow) in &flows {
            for seed in 0..seeds {
                let outcome = difftest_instance(instance, *flow, seed)
                    .map_err(|e| format!("difftest: {instance} under {flow_name}: {e}"))?;
                cases += 1;
                stage_checks += outcome.stages.len();
                out.push_str(&format!(
                    "ok  {instance:<18} {flow_name:<5} seed {seed}  ({} stages)\n",
                    outcome.stages.len()
                ));
            }
        }
    }
    out.push_str(&format!(
        "difftest: {cases} cases, {stage_checks} interpreted stages, all \
         bit-identical to the host reference\n"
    ));
    if fuzz_count > 0 {
        let ran = fuzz(fuzz_seed, fuzz_count).map_err(|failure| format!("difftest: {failure}"))?;
        out.push_str(&format!("fuzz: {ran} randomized instances clean (seed {fuzz_seed})\n"));
    }
    Ok(out)
}

/// The `mlbc bench-json` subcommand: the compiler and simulator
/// micro-benchmarks behind the repo's tracked perf trajectory.
///
/// Five scenarios: `compile-matmul/full-pipeline` run under both
/// rewrite-driver modes (worklist vs legacy re-walk) mirroring the
/// criterion benches in `crates/bench`, `sim-throughput-matmul-1x5x200`
/// and `sim-throughput-cluster-8x16x16` racing the superblock execution
/// engine against the checked stepper (simulated instructions per wall
/// second, byte-identical counters asserted, >= 1.5x speedup enforced),
/// `cluster-matmul-8x16x16` sharded over the simulated cluster, and
/// `tune-matmul-8x16x16` racing a small-budget schedule search against
/// the hand-written default (with its end-to-end wall time).
/// Deterministic work counters carry the regression guard; wall times
/// (min over a few repetitions) record the trajectory but are
/// machine-dependent, so `--check` ignores them.
fn run_bench_json(args: &[String]) -> Result<String, String> {
    use mlb_ir::{DriverMode, RewriteStats};
    use mlb_kernels::{Instance, Kind, Precision, Shape};
    use std::time::Instant;

    let mut out_path = "BENCH_compiler_perf.json".to_string();
    let mut check_path: Option<String> = None;
    let mut cluster_cores: usize = 4;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(USAGE.to_string()),
            "--out" => out_path = iter.next().ok_or("--out needs a file")?.clone(),
            "--check" => check_path = Some(iter.next().ok_or("--check needs a file")?.clone()),
            "--cores" => {
                cluster_cores = parse_cores(iter.next().ok_or("--cores needs a value")?)?;
            }
            other => return Err(format!("unknown bench-json option `{other}`\n{USAGE}")),
        }
    }

    let instance = Instance::new(Kind::MatMul, Shape::nmk(1, 5, 200), Precision::F64);

    // Compiler scenario: deterministic rewrite work plus wall time.
    let compile_mode = |mode: DriverMode| -> Result<(RewriteStats, u64, String), String> {
        let mut stats = RewriteStats::default();
        let mut assembly = String::new();
        let mut wall = u64::MAX;
        for _ in 0..3 {
            let mut ctx = Context::new();
            ctx.set_driver_mode(mode);
            let module = instance.build_module(&mut ctx);
            let start = Instant::now();
            let compiled = compile(&mut ctx, module, Flow::Ours(PipelineOptions::full()))
                .map_err(|e| e.to_string())?;
            wall = wall.min(start.elapsed().as_nanos() as u64);
            stats = ctx.rewrite_stats();
            assembly = compiled.assembly;
        }
        Ok((stats, wall, assembly))
    };
    let (wl, wl_nanos, assembly) = compile_mode(DriverMode::Worklist)?;
    let (lg, lg_nanos, legacy_assembly) = compile_mode(DriverMode::LegacyRewalk)?;
    if assembly != legacy_assembly {
        return Err("bench-json: worklist and legacy drivers emitted different assembly".into());
    }
    let work = |s: &RewriteStats| s.ops_visited + s.match_attempts;
    let work_drop = work(&lg) as f64 / work(&wl).max(1) as f64;

    // Simulator throughput scenario: the compiled matmul predecoded
    // once, then executed by the superblock engine and the checked
    // stepper; wall time covers only the simulator call.
    let exec =
        ExecProgram::new(assemble(&assembly).map_err(|e| format!("assembling output: {e}"))?);
    let sim_args = [TCDM_BASE, TCDM_BASE + 2048, TCDM_BASE + 16384];
    let simulate = |engine: Engine| -> Result<(PerfCounters, u64), String> {
        let mut wall = u64::MAX;
        let mut counters = PerfCounters::default();
        for _ in 0..20 {
            let mut machine = Machine::new();
            machine.set_engine(engine);
            machine.write_f64_slice(TCDM_BASE, &[1.0; 256]).map_err(|e| e.to_string())?;
            let start = Instant::now();
            counters = machine
                .call_predecoded(&exec, "matmul", &sim_args)
                .map_err(|e| format!("simulating matmul: {e}"))?;
            wall = wall.min(start.elapsed().as_nanos() as u64);
        }
        Ok((counters, wall))
    };
    let (sb_counters, sb_nanos) = simulate(Engine::Superblock)?;
    let (ck_counters, ck_nanos) = simulate(Engine::Checked)?;
    if sb_counters != ck_counters {
        return Err("bench-json: superblock counters diverge from the checked engine".into());
    }
    let wall_speedup = ck_nanos as f64 / sb_nanos.max(1) as f64;
    if wall_speedup < 1.5 {
        return Err(format!(
            "bench-json: superblock engine is only {wall_speedup:.2}x over the checked \
             stepper on matmul-1x5x200 (contract: >= 1.5x)"
        ));
    }
    let instrs_per_sec = |instrs: u64, nanos: u64| instrs as f64 * 1e9 / nanos.max(1) as f64;

    // Stall histogram from one traced run (tracing uses the exact
    // generic loop, so the per-reason stall cycles are cycle-accurate;
    // the fast/generic counter-equality check above stays untouched).
    let stalls = {
        let mut machine = Machine::new();
        machine.enable_trace();
        machine.write_f64_slice(TCDM_BASE, &[1.0; 256]).map_err(|e| e.to_string())?;
        machine
            .call_predecoded(&exec, "matmul", &sim_args)
            .map_err(|e| format!("simulating matmul: {e}"))?;
        StallHistogram::from_trace(&machine.take_trace().unwrap_or_default())
    };

    // Cluster scenario: a matmul whose row dimension shards evenly,
    // compiled with `distribute-to-cores` and run on the multi-core
    // cluster; the harness verifies the output bit-for-bit against the
    // host reference on the way.
    let cluster_instance = Instance::new(Kind::MatMul, Shape::nmk(8, 16, 16), Precision::F64);
    let run_cluster = |cores: usize| {
        mlb_kernels::compile_and_run_on_cluster(
            &cluster_instance,
            PipelineOptions::full(),
            1,
            cores,
        )
        .map_err(|e| format!("bench-json: cluster matmul on {cores} cores: {e}"))
    };
    let cluster_single = run_cluster(1)?;
    let cluster_multi = run_cluster(cluster_cores)?;
    let cycle_speedup = cluster_single.counters.aggregate.cycles as f64
        / cluster_multi.counters.aggregate.cycles.max(1) as f64;

    // Cluster throughput scenario: the multi-core compilation predecoded
    // once, both engines racing over identical TCDM images; wall time
    // covers only the cluster call, like the single-core scenario.
    let cluster_exec = mlb_kernels::predecode(&cluster_multi.compilation)
        .map_err(|e| format!("bench-json: predecode cluster matmul: {e}"))?;
    let cluster_sizes = cluster_instance.buffer_sizes();
    let cluster_addrs = mlb_kernels::harness::place_buffers(&cluster_sizes, 8)
        .map_err(|e| format!("bench-json: place cluster operands: {e}"))?;
    let cluster_inputs =
        mlb_kernels::harness::random_inputs_f64(&cluster_sizes[..cluster_sizes.len() - 1], 1);
    let cluster_symbol = cluster_instance.symbol();
    let time_cluster = |engine: Engine| -> Result<(ClusterCounters, u64), String> {
        let mut wall = u64::MAX;
        let mut counters = None;
        for _ in 0..10 {
            let mut cluster = Cluster::new(cluster_cores);
            cluster.set_engine(engine);
            for (input, &addr) in cluster_inputs.iter().zip(&cluster_addrs) {
                cluster.write_f64_slice(addr, input).map_err(|e| e.to_string())?;
            }
            let start = Instant::now();
            counters = Some(
                cluster
                    .call_predecoded(&cluster_exec, &cluster_symbol, &cluster_addrs)
                    .map_err(|e| format!("simulating cluster matmul: {e}"))?,
            );
            wall = wall.min(start.elapsed().as_nanos() as u64);
        }
        Ok((counters.expect("ten repetitions ran"), wall))
    };
    let (cl_sb_counters, cl_sb_nanos) = time_cluster(Engine::Superblock)?;
    let (cl_ck_counters, cl_ck_nanos) = time_cluster(Engine::Checked)?;
    if cl_sb_counters != cl_ck_counters {
        return Err(
            "bench-json: cluster superblock counters diverge from the checked engine".into()
        );
    }
    let cluster_wall_speedup = cl_ck_nanos as f64 / cl_sb_nanos.max(1) as f64;
    if cluster_wall_speedup < 1.5 {
        return Err(format!(
            "bench-json: superblock engine is only {cluster_wall_speedup:.2}x over the \
             checked stepper on cluster-matmul-8x16x16 (contract: >= 1.5x)"
        ));
    }

    // Tuned-vs-default scenario: a small-budget schedule search over the
    // compile service on the same cluster matmul. The search space opens
    // with the flow defaults, so the tuned best can only match or beat
    // the hand-written default schedule; the report records by how much.
    let (tune_best, tune_best_label, tune_default, tune_evaluated, tune_wall_nanos) = {
        use mlb_kernels::TuneParams;
        use mlbe::service::{CompileService, JobKind, JobRequest, ServiceConfig};
        let service =
            CompileService::new(ServiceConfig { workers: 2, cache_capacity: 64, telemetry: true });
        let request = JobRequest {
            id: 1,
            kind: JobKind::Tune(TuneParams { cores_max: cluster_cores.min(4), budget: 16 }),
            instance: cluster_instance,
            flow: Flow::Ours(PipelineOptions::full()),
            driver: DriverMode::Worklist,
            seed: 0,
        };
        let started = Instant::now();
        let payload = service
            .run_one(request)
            .payload
            .map_err(|e| format!("bench-json: tune matmul-8x16x16: {e}"))?;
        let tune_wall_nanos = started.elapsed().as_nanos() as u64;
        let best = payload.get("best").cloned().unwrap_or(Json::Null);
        let cycles = |label: &str| {
            if let Some(Json::Arr(variants)) = payload.get("variants") {
                variants
                    .iter()
                    .find(|v| v.get("label").and_then(Json::as_str) == Some(label))
                    .and_then(|v| v.get("cycles"))
                    .and_then(Json::as_u64)
            } else {
                None
            }
        };
        (
            best.get("cycles").and_then(Json::as_u64).unwrap_or(0),
            best.get("label").and_then(Json::as_str).unwrap_or("?").to_string(),
            cycles("ours-default")
                .ok_or("bench-json: tune did not evaluate the default schedule")?,
            payload.get("evaluated").and_then(Json::as_u64).unwrap_or(0),
            tune_wall_nanos,
        )
    };
    if tune_best > tune_default {
        return Err(format!(
            "bench-json: tuned schedule ({tune_best} cycles) is slower than the \
             hand-written default ({tune_default} cycles)"
        ));
    }
    let tune_speedup = tune_default as f64 / tune_best.max(1) as f64;

    // Batched layer-graph scenarios: fused vs unfused inference of the
    // preset graphs at batch 8 on a 2-core cluster (so double-buffering
    // is live). Counters are deterministic; both engines must agree,
    // and the fused plan must beat the unfused one per request.
    let graph_scenario = |preset: mlb_kernels::GraphPreset| -> Result<Json, String> {
        use mlb_kernels::{run_graph, GraphRunConfig};
        let graph = preset.graph();
        let run = |fused: bool,
                   engine: Engine|
         -> Result<(mlb_kernels::GraphRunOutcome, u64), String> {
            let cfg = GraphRunConfig { fused, batch: 8, cores: 2, seed: 1, engine: Some(engine) };
            let start = Instant::now();
            let outcome = run_graph(&graph, &cfg)
                .map_err(|e| format!("bench-json: graph {} fused={fused}: {e}", preset.name()))?;
            Ok((outcome, start.elapsed().as_nanos() as u64))
        };
        let (fused, fused_nanos) = run(true, Engine::Superblock)?;
        let (fused_checked, _) = run(true, Engine::Checked)?;
        if fused.total_cycles != fused_checked.total_cycles {
            return Err(format!(
                "bench-json: graph {} superblock cycles diverge from the checked engine",
                preset.name()
            ));
        }
        let (unfused, _) = run(false, Engine::Superblock)?;
        if fused.cycles_per_request >= unfused.cycles_per_request {
            return Err(format!(
                "bench-json: fused graph {} ({:.1} cycles/request) does not beat the \
                 unfused plan ({:.1} cycles/request)",
                preset.name(),
                fused.cycles_per_request,
                unfused.cycles_per_request,
            ));
        }
        let fused_speedup = unfused.cycles_per_request / fused.cycles_per_request.max(1.0);
        eprintln!(
            "bench graph-{}-batch8: {:.1} cycles/request fused ({} stages) vs {:.1} \
             unfused ({} stages), speedup {fused_speedup:.2}x",
            preset.name(),
            fused.cycles_per_request,
            fused.stage_symbols.len(),
            unfused.cycles_per_request,
            unfused.stage_symbols.len(),
        );
        let arm = |o: &mlb_kernels::GraphRunOutcome| {
            Json::obj(vec![
                ("stages", Json::from(o.stage_symbols.len() as u64)),
                ("total_cycles", Json::from(o.total_cycles)),
                ("cycles_per_request", Json::from(o.cycles_per_request)),
                ("tcdm_bytes", Json::from(o.tcdm_bytes)),
            ])
        };
        Ok(Json::obj(vec![
            ("batch", Json::from(8u64)),
            ("cores", Json::from(2u64)),
            ("wall_nanos", Json::from(fused_nanos)),
            ("double_buffered", Json::from(fused.double_buffered)),
            ("fused", arm(&fused)),
            ("unfused", arm(&unfused)),
            ("fused_speedup", Json::from(fused_speedup)),
        ]))
    };
    let graph_nsnet2 = graph_scenario(mlb_kernels::GraphPreset::Nsnet2)?;
    let graph_eltwise = graph_scenario(mlb_kernels::GraphPreset::EltwiseChain)?;

    // Service throughput scenario: the 64-job mixed demo batch (the
    // scripts/check.sh smoke set) through a cold 4-worker service, with
    // the telemetry recorder off and on. Payloads must be byte-identical
    // either way — telemetry never touches responses — and the wall
    // ratio records the recorder's overhead (budgeted at ≤2% in
    // DESIGN.md; only the byte-identity check hard-fails here, wall
    // clocks are too noisy for a CI gate).
    let serve_mixed = {
        use mlbe::service::{percentile, response_json, CompileService, ServiceConfig};
        let requests = demo_requests(64);
        // Min-of-3 cold services per arm: each run pays the full
        // compile fan-out, so the minimum is the least-noisy sample.
        let run = |telemetry: bool| -> (Vec<String>, u64, u64) {
            let mut best_nanos = u64::MAX;
            let mut lines = Vec::new();
            let mut p95_latency_us = 0u64;
            for _ in 0..3 {
                let service = CompileService::new(ServiceConfig {
                    workers: 4,
                    cache_capacity: 256,
                    telemetry,
                });
                let started = Instant::now();
                let responses = service.run_batch(&requests);
                let nanos = started.elapsed().as_nanos() as u64;
                if nanos < best_nanos {
                    best_nanos = nanos;
                    lines = responses.iter().map(|r| response_json(r).to_string()).collect();
                    p95_latency_us = service
                        .telemetry()
                        .map(|t| {
                            let mut latencies: Vec<u64> =
                                t.jobs().iter().filter_map(|j| j.latency_us()).collect();
                            latencies.sort_unstable();
                            if latencies.is_empty() {
                                0
                            } else {
                                percentile(&latencies, 95)
                            }
                        })
                        .unwrap_or(0);
                }
            }
            (lines, best_nanos, p95_latency_us)
        };
        let (off_lines, off_nanos, _) = run(false);
        let (on_lines, on_nanos, p95_latency_us) = run(true);
        if off_lines != on_lines {
            return Err("bench-json: serve-throughput-mixed64 responses differ with telemetry on"
                .to_string());
        }
        let jobs_per_sec = 64.0 * 1e9 / on_nanos.max(1) as f64;
        let overhead = on_nanos as f64 / off_nanos.max(1) as f64;
        eprintln!(
            "bench serve-throughput-mixed64: {jobs_per_sec:.1} jobs/s over 4 workers, \
             p95 latency {:.1}ms, telemetry overhead {:.3}x",
            p95_latency_us as f64 / 1e3,
            overhead,
        );
        Json::obj(vec![
            ("workers", Json::from(4u64)),
            ("jobs", Json::from(64u64)),
            ("wall_nanos", Json::from(on_nanos)),
            ("jobs_per_sec", Json::from(jobs_per_sec)),
            ("p95_latency_us", Json::from(p95_latency_us)),
            ("telemetry_off_wall_nanos", Json::from(off_nanos)),
            ("telemetry_overhead", Json::from(overhead)),
            ("responses_identical", Json::from(true)),
        ])
    };

    let mode_json = |s: &RewriteStats, nanos: u64| {
        Json::obj(vec![
            ("wall_nanos", Json::from(nanos)),
            ("ops_visited", Json::from(s.ops_visited)),
            ("match_attempts", Json::from(s.match_attempts)),
            ("requeued", Json::from(s.requeued)),
            ("pattern_applications", Json::from(s.pattern_applications)),
            ("dce_erased", Json::from(s.dce_erased)),
            ("work", Json::from(work(s))),
        ])
    };
    let sim_json = |c: &PerfCounters, nanos: u64| {
        Json::obj(vec![
            ("wall_nanos", Json::from(nanos)),
            ("instrs_per_sec", Json::from(instrs_per_sec(c.instructions, nanos))),
            ("cycles", Json::from(c.cycles)),
            ("instructions", Json::from(c.instructions)),
            ("fpu_instrs", Json::from(c.fpu_instrs)),
            ("ssr_reads", Json::from(c.ssr_reads)),
            ("ssr_writes", Json::from(c.ssr_writes)),
        ])
    };
    let cluster_engine_json = |c: &ClusterCounters, nanos: u64| {
        Json::obj(vec![
            ("wall_nanos", Json::from(nanos)),
            ("instrs_per_sec", Json::from(instrs_per_sec(c.aggregate.instructions, nanos))),
            ("instructions", Json::from(c.aggregate.instructions)),
            ("cycles", Json::from(c.aggregate.cycles)),
        ])
    };
    let report = Json::obj(vec![
        ("version", Json::from(1u64)),
        (
            "compile-matmul/full-pipeline",
            Json::obj(vec![
                ("worklist", mode_json(&wl, wl_nanos)),
                ("legacy-rewalk", mode_json(&lg, lg_nanos)),
                ("work_drop", Json::from(work_drop)),
            ]),
        ),
        (
            "sim-throughput-matmul-1x5x200",
            Json::obj(vec![
                ("superblock", sim_json(&sb_counters, sb_nanos)),
                ("checked", sim_json(&ck_counters, ck_nanos)),
                ("wall_speedup", Json::from(wall_speedup)),
                ("stall_cycles", stall_json(&stalls)),
            ]),
        ),
        (
            "sim-throughput-cluster-8x16x16",
            Json::obj(vec![
                ("cores", Json::from(cluster_cores as u64)),
                ("superblock", cluster_engine_json(&cl_sb_counters, cl_sb_nanos)),
                ("checked", cluster_engine_json(&cl_ck_counters, cl_ck_nanos)),
                ("wall_speedup", Json::from(cluster_wall_speedup)),
            ]),
        ),
        (
            "cluster-matmul-8x16x16",
            Json::obj(vec![
                ("cores", Json::from(cluster_cores as u64)),
                ("barriers", Json::from(cluster_multi.counters.barriers as u64)),
                ("aggregate_cycles_1core", Json::from(cluster_single.counters.aggregate.cycles)),
                ("aggregate_cycles", Json::from(cluster_multi.counters.aggregate.cycles)),
                ("cycle_speedup", Json::from(cycle_speedup)),
                (
                    "per_core",
                    Json::Arr(
                        cluster_multi
                            .counters
                            .per_core
                            .iter()
                            .map(|c| {
                                Json::obj(vec![
                                    ("cycles", Json::from(c.cycles)),
                                    ("instructions", Json::from(c.instructions)),
                                    ("flops", Json::from(c.flops)),
                                    ("fpu_busy_cycles", Json::from(c.fpu_busy_cycles)),
                                    ("ssr_reads", Json::from(c.ssr_reads)),
                                    ("ssr_writes", Json::from(c.ssr_writes)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "tune-matmul-8x16x16",
            Json::obj(vec![
                ("wall_nanos", Json::from(tune_wall_nanos)),
                ("evaluated", Json::from(tune_evaluated)),
                ("best_label", Json::from(tune_best_label.as_str())),
                ("best_cycles", Json::from(tune_best)),
                ("default_cycles", Json::from(tune_default)),
                ("tune_speedup", Json::from(tune_speedup)),
            ]),
        ),
        ("graph-nsnet2-batch8", graph_nsnet2),
        ("graph-eltwise-chain-batch8", graph_eltwise),
        ("serve-throughput-mixed64", serve_mixed),
    ]);

    // Human-readable progress goes to stderr: stdout is reserved for the
    // JSON report when `--out -` (same contract as `--trace-json -`).
    eprintln!(
        "bench compile-matmul/full-pipeline: work {} (worklist) vs {} (legacy), drop {:.1}x",
        work(&wl),
        work(&lg),
        work_drop,
    );
    eprintln!(
        "bench sim-throughput-matmul-1x5x200: {:.1}us (superblock, {:.1}M instrs/s) vs \
         {:.1}us (checked), speedup {:.2}x",
        sb_nanos as f64 / 1e3,
        instrs_per_sec(sb_counters.instructions, sb_nanos) / 1e6,
        ck_nanos as f64 / 1e3,
        wall_speedup,
    );
    eprintln!(
        "bench sim-throughput-cluster-8x16x16: {:.1}us (superblock, {:.1}M instrs/s) vs \
         {:.1}us (checked), speedup {:.2}x",
        cl_sb_nanos as f64 / 1e3,
        instrs_per_sec(cl_sb_counters.aggregate.instructions, cl_sb_nanos) / 1e6,
        cl_ck_nanos as f64 / 1e3,
        cluster_wall_speedup,
    );
    eprintln!(
        "bench cluster-matmul-8x16x16: {} cycles (1 core) vs {} cycles ({} cores), \
         speedup {:.2}x",
        cluster_single.counters.aggregate.cycles,
        cluster_multi.counters.aggregate.cycles,
        cluster_cores,
        cycle_speedup,
    );
    eprintln!(
        "bench tune-matmul-8x16x16: {tune_best} cycles ({tune_best_label}) vs {tune_default} \
         cycles (ours-default) over {tune_evaluated} schedules, speedup {tune_speedup:.2}x, \
         wall {:.1}ms",
        tune_wall_nanos as f64 / 1e6,
    );
    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let baseline = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        for (key, current) in
            [("ops_visited", wl.ops_visited), ("match_attempts", wl.match_attempts)]
        {
            let base = baseline
                .get("compile-matmul/full-pipeline")
                .and_then(|b| b.get("worklist"))
                .and_then(|b| b.get(key))
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}: missing worklist `{key}` in baseline"))?;
            let limit = base + base / 10;
            if current > limit {
                return Err(format!(
                    "bench-json: worklist {key} regressed >10%: {current} vs baseline {base} \
                     (limit {limit})"
                ));
            }
            eprintln!("check {key}: {current} within 10% of baseline {base}");
        }
        // Graph scenarios gate on the fused batch's cycle counters:
        // deterministic simulation, so anything past 10% is a real
        // fusion/placement regression, not noise.
        let graph_cycles = |scenario: &Json| {
            scenario
                .get("fused")
                .and_then(|f| f.get("total_cycles"))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        for (name, scenario) in [
            ("graph-nsnet2-batch8", report.get("graph-nsnet2-batch8")),
            ("graph-eltwise-chain-batch8", report.get("graph-eltwise-chain-batch8")),
        ] {
            let current = graph_cycles(scenario.ok_or("graph scenario missing from report")?);
            let base = baseline
                .get(name)
                .and_then(|b| b.get("fused"))
                .and_then(|b| b.get("total_cycles"))
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}: missing `{name}` fused cycles in baseline"))?;
            let limit = base + base / 10;
            if current > limit {
                return Err(format!(
                    "bench-json: {name} fused cycles regressed >10%: {current} vs \
                     baseline {base} (limit {limit})"
                ));
            }
            eprintln!("check {name}: {current} fused cycles within 10% of baseline {base}");
        }
    }
    let text = report.pretty() + "\n";
    if out_path == "-" {
        Ok(text)
    } else {
        std::fs::write(&out_path, text).map_err(|e| format!("{out_path}: {e}"))?;
        eprintln!("wrote {out_path}");
        Ok(String::new())
    }
}

/// A kernel signature the simulator driver can synthesize operands for.
struct KernelSig {
    name: String,
    args: Vec<Type>,
}

fn kernel_signatures(ctx: &Context, module: mlb_ir::OpId) -> Result<Vec<KernelSig>, String> {
    let mut kernels = Vec::new();
    for func in ctx.walk_named(module, mlb_dialects::func::FUNC) {
        let name = mlb_dialects::func::symbol_name(ctx, func)
            .ok_or("func.func without a symbol name")?
            .to_string();
        let Some(mlb_ir::Attribute::Type(Type::Function(sig))) = ctx.op(func).attr("function_type")
        else {
            return Err(format!("function `{name}` has no function_type"));
        };
        kernels.push(KernelSig { name, args: sig.inputs.clone() });
    }
    Ok(kernels)
}

fn dump_ir_snapshots(events: &[PassEvent], sink: &IrDumpSink) -> Result<(), String> {
    if let IrDumpSink::Dir(dir) = sink {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    }
    for (n, event) in events.iter().enumerate() {
        let Some(ir) = &event.ir_after else { continue };
        match sink {
            IrDumpSink::Stderr => {
                eprintln!("// -----// IR after {} //----- //\n{ir}", event.pass);
            }
            IrDumpSink::Dir(dir) => {
                let path = format!("{dir}/{n:02}-{}.mlir", event.pass);
                std::fs::write(&path, ir).map_err(|e| format!("{path}: {e}"))?;
            }
        }
    }
    Ok(())
}

fn print_pass_timing(recorder: &PipelineRecorder) {
    let total = recorder.total_nanos().max(1);
    eprintln!("===-------------------------------------------------------------===");
    eprintln!("                      ... Pass execution timing ...");
    eprintln!("  total: {:.3} ms", recorder.total_nanos() as f64 / 1e6);
    eprintln!("===-------------------------------------------------------------===");
    eprintln!("{:>10}  {:>6}  {:>11}  {:>9}  pass", "wall (us)", "%", "ops", "rewrites");
    for event in &recorder.events {
        eprintln!(
            "{:>10.1}  {:>5.1}%  {:>5}->{:<5}  {:>9}  {}",
            event.nanos as f64 / 1e3,
            event.nanos as f64 * 100.0 / total as f64,
            event.ops_before,
            event.ops_after,
            event.rewrites.pattern_applications,
            event.pass,
        );
    }
}

fn pass_event_json(event: &PassEvent) -> Json {
    let mut pairs = vec![
        ("index", Json::from(event.index)),
        ("pass", Json::from(event.pass)),
        ("nanos", Json::from(event.nanos)),
        ("ops_before", Json::from(event.ops_before)),
        ("ops_after", Json::from(event.ops_after)),
        ("blocks_before", Json::from(event.blocks_before)),
        ("blocks_after", Json::from(event.blocks_after)),
        ("pattern_applications", Json::from(event.rewrites.pattern_applications)),
        ("dce_erased", Json::from(event.rewrites.dce_erased)),
        ("ops_visited", Json::from(event.rewrites.ops_visited)),
        ("match_attempts", Json::from(event.rewrites.match_attempts)),
        ("requeued", Json::from(event.rewrites.requeued)),
    ];
    if let Some(changed) = event.changed {
        pairs.push(("changed", Json::from(changed)));
    }
    Json::obj(pairs)
}

fn trace_report(
    flow: &str,
    recorder: &PipelineRecorder,
    assembly: &str,
    kernels: &[KernelSig],
    cores: usize,
) -> Result<Json, String> {
    // Predecode once: every kernel entry point runs over the same
    // execution artifact instead of re-scanning the program per call.
    let exec = ExecProgram::new(assemble(assembly).map_err(|e| format!("assembling output: {e}"))?);
    let mut kernel_reports = Vec::new();
    for kernel in kernels {
        kernel_reports.push(if cores <= 1 {
            run_kernel(&exec, kernel)?
        } else {
            cluster_kernel_json(&exec, kernel, cores)?
        });
    }
    Ok(Json::obj(vec![
        ("version", Json::from(1u64)),
        ("flow", Json::from(flow)),
        ("cores", Json::from(cores)),
        ("total_pass_nanos", Json::from(recorder.total_nanos())),
        ("passes", Json::Arr(recorder.events.iter().map(pass_event_json).collect())),
        ("kernels", Json::Arr(kernel_reports)),
    ]))
}

/// Synthesized operand data for one kernel call: deterministic buffer
/// contents per memref argument, the integer (address) arguments, and
/// NaN-boxed scalar FP argument register values.
enum BufData {
    F64(Vec<f64>),
    F32(Vec<f32>),
}

struct SynthOperands {
    buffers: Vec<(u32, BufData)>,
    int_args: Vec<u32>,
    fp_args: Vec<(FpReg, u64)>,
}

fn synthesize_operands(kernel: &KernelSig) -> Result<SynthOperands, String> {
    let mut ops = SynthOperands { buffers: Vec::new(), int_args: Vec::new(), fp_args: Vec::new() };
    let mut cursor = TCDM_BASE;
    let mut scalar_fp = 0u8;
    for (i, arg) in kernel.args.iter().enumerate() {
        match arg {
            Type::MemRef(m) => {
                let n = m.num_elements() as usize;
                // Deterministic, mildly varied operand data.
                let data: Vec<f64> =
                    (0..n).map(|j| (j % 17) as f64 * 0.25 - 2.0 + i as f64).collect();
                let data = match m.element.as_ref() {
                    Type::F64 => BufData::F64(data),
                    Type::F32 => BufData::F32(data.iter().map(|&v| v as f32).collect()),
                    other => {
                        return Err(format!(
                            "kernel `{}`: unsupported memref element type {other} for simulation",
                            kernel.name
                        ))
                    }
                };
                ops.buffers.push((cursor, data));
                ops.int_args.push(cursor);
                cursor += (m.size_in_bytes() as u32).next_multiple_of(8);
            }
            Type::F64 => {
                ops.fp_args.push((FpReg::fa(scalar_fp), (1.5 + i as f64).to_bits()));
                scalar_fp += 1;
            }
            Type::F32 => {
                let bits = (1.5f32 + i as f32).to_bits() as u64 | 0xFFFF_FFFF_0000_0000;
                ops.fp_args.push((FpReg::fa(scalar_fp), bits));
                scalar_fp += 1;
            }
            other => {
                return Err(format!(
                    "kernel `{}`: unsupported argument type {other} for simulation",
                    kernel.name
                ))
            }
        }
    }
    Ok(ops)
}

/// Runs one kernel on a single traced machine with synthesized
/// operands, returning its counters and execution trace.
fn simulate_traced(
    exec: &ExecProgram,
    kernel: &KernelSig,
) -> Result<(PerfCounters, Vec<TraceEntry>), String> {
    let mut machine = Machine::new();
    machine.enable_trace();
    let ops = synthesize_operands(kernel)?;
    for (i, (addr, data)) in ops.buffers.iter().enumerate() {
        match data {
            BufData::F64(v) => machine.write_f64_slice(*addr, v),
            BufData::F32(v) => machine.write_f32_slice(*addr, v),
        }
        .map_err(|e| format!("kernel `{}`: placing operand {i}: {e}", kernel.name))?;
    }
    for &(r, bits) in &ops.fp_args {
        machine.set_f_bits(r, bits);
    }
    let counters = machine
        .call_predecoded(exec, &kernel.name, &ops.int_args)
        .map_err(|e| format!("simulating `{}`: {e}", kernel.name))?;
    Ok((counters, machine.take_trace().unwrap_or_default()))
}

/// Runs one kernel on a `cores`-wide cluster with synthesized operands,
/// optionally tracing every core.
fn simulate_cluster(
    exec: &ExecProgram,
    kernel: &KernelSig,
    cores: usize,
    traced: bool,
) -> Result<(ClusterCounters, Vec<Vec<TraceEntry>>), String> {
    let mut cluster = Cluster::new(cores);
    if traced {
        cluster.enable_trace();
    }
    let ops = synthesize_operands(kernel)?;
    for (i, (addr, data)) in ops.buffers.iter().enumerate() {
        match data {
            BufData::F64(v) => cluster.write_f64_slice(*addr, v),
            BufData::F32(v) => cluster.write_f32_slice(*addr, v),
        }
        .map_err(|e| format!("kernel `{}`: placing operand {i}: {e}", kernel.name))?;
    }
    for &(r, bits) in &ops.fp_args {
        cluster.broadcast_f_bits(r, bits);
    }
    let counters = cluster
        .call_predecoded(exec, &kernel.name, &ops.int_args)
        .map_err(|e| format!("simulating `{}`: {e}", kernel.name))?;
    let traces = if traced {
        cluster.take_traces().into_iter().map(Option::unwrap_or_default).collect()
    } else {
        Vec::new()
    };
    Ok((counters, traces))
}

fn stall_json(h: &StallHistogram) -> Json {
    Json::Obj(
        h.named().iter().map(|&(name, cycles)| (name.to_string(), Json::from(cycles))).collect(),
    )
}

fn occupancy_json(occ: &OccupancySummary) -> Json {
    Json::obj(vec![
        ("fpu_utilization", Json::from(occ.fpu_utilization)),
        ("flops_per_cycle", Json::from(occ.flops_per_cycle)),
        ("frep_coverage", Json::from(occ.frep_coverage)),
        ("ssr_read_density", Json::from(occ.ssr_read_density)),
        ("ssr_write_density", Json::from(occ.ssr_write_density)),
    ])
}

/// Runs one kernel with synthesized operands and reports its counters,
/// occupancy and stall breakdown.
fn run_kernel(exec: &ExecProgram, kernel: &KernelSig) -> Result<Json, String> {
    let (counters, trace) = simulate_traced(exec, kernel)?;
    let occ = counters.occupancy();
    Ok(Json::obj(vec![
        ("name", Json::from(kernel.name.as_str())),
        (
            "counters",
            Json::obj(vec![
                ("cycles", Json::from(counters.cycles)),
                ("instructions", Json::from(counters.instructions)),
                ("fpu_busy_cycles", Json::from(counters.fpu_busy_cycles)),
                ("flops", Json::from(counters.flops)),
                ("int_loads", Json::from(counters.int_loads)),
                ("int_stores", Json::from(counters.int_stores)),
                ("fp_loads", Json::from(counters.fp_loads)),
                ("fp_stores", Json::from(counters.fp_stores)),
                ("fmadd", Json::from(counters.fmadd)),
                ("frep", Json::from(counters.frep)),
                ("taken_branches", Json::from(counters.taken_branches)),
                ("scfgwi", Json::from(counters.scfgwi)),
                ("ssr_reads", Json::from(counters.ssr_reads)),
                ("ssr_writes", Json::from(counters.ssr_writes)),
                ("fpu_instrs", Json::from(counters.fpu_instrs)),
                ("frep_fpu_instrs", Json::from(counters.frep_fpu_instrs)),
            ]),
        ),
        ("occupancy", occupancy_json(&occ)),
        ("trace_length", Json::from(trace.len())),
        ("stall_cycles", stall_json(&StallHistogram::from_trace(&trace))),
    ]))
}

/// Runs one kernel on a traced cluster and reports the aggregate view
/// plus per-core counters, occupancy, stall histograms and the
/// reconstructed barrier-wait intervals.
fn cluster_kernel_json(
    exec: &ExecProgram,
    kernel: &KernelSig,
    cores: usize,
) -> Result<Json, String> {
    let (counters, traces) = simulate_cluster(exec, kernel, cores, true)?;
    let per_core_occ = counters.per_core_occupancy();
    let per_core: Vec<Json> = counters
        .per_core
        .iter()
        .zip(&per_core_occ)
        .zip(&traces)
        .map(|((c, occ), trace)| {
            Json::obj(vec![
                ("cycles", Json::from(c.cycles)),
                ("instructions", Json::from(c.instructions)),
                ("flops", Json::from(c.flops)),
                ("fpu_busy_cycles", Json::from(c.fpu_busy_cycles)),
                ("occupancy", occupancy_json(occ)),
                ("trace_length", Json::from(trace.len())),
                ("stall_cycles", stall_json(&StallHistogram::from_trace(trace))),
            ])
        })
        .collect();
    let agg = &counters.aggregate;
    Ok(Json::obj(vec![
        ("name", Json::from(kernel.name.as_str())),
        ("cores", Json::from(cores)),
        ("barriers", Json::from(counters.barriers)),
        (
            "counters",
            Json::obj(vec![
                ("cycles", Json::from(agg.cycles)),
                ("instructions", Json::from(agg.instructions)),
                ("flops", Json::from(agg.flops)),
                ("fpu_busy_cycles", Json::from(agg.fpu_busy_cycles)),
                ("fpu_instrs", Json::from(agg.fpu_instrs)),
                ("ssr_reads", Json::from(agg.ssr_reads)),
                ("ssr_writes", Json::from(agg.ssr_writes)),
            ]),
        ),
        ("occupancy", occupancy_json(&counters.occupancy())),
        ("per_core", Json::Arr(per_core)),
        (
            "barrier_intervals",
            Json::Arr(
                counters
                    .barrier_intervals
                    .iter()
                    .map(|ivs| {
                        Json::Arr(
                            ivs.iter()
                                .map(|&(arrival, release)| {
                                    Json::Arr(vec![Json::from(arrival), Json::from(release)])
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        ),
    ]))
}
